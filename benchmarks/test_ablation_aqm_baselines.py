"""Ablation A3: the analog AQM against the digital AQM family.

Runs the Figure 8 workload under tail drop, RED, CoDel, PIE and the
pCAM-based AQM, and reports delay statistics, drops and the analog
search energy.  Expected shape: pCAM-AQM controls delay at least as
well as the digital baselines while its match energy stays orders of
magnitude below a digital match-action implementation.
"""

import numpy as np

from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.codel import CoDelAqm
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.aqm.pie import PIEAqm
from repro.netfunc.aqm.red import REDAqm
from repro.simnet.topology import DumbbellExperiment, overload_profile


def run_all():
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=6.0,
        rate_fn=overload_profile(1.5, 5.0, 1.6), seed=3)
    ledger = EnergyLedger()
    algorithms = {
        "tail-drop": TailDropAQM(),
        "RED": REDAqm(min_threshold_packets=40,
                      max_threshold_packets=200,
                      rng=np.random.default_rng(1)),
        "CoDel": CoDelAqm(),
        "PIE": PIEAqm(rng=np.random.default_rng(2)),
        "pCAM-AQM": PCAMAQM(ledger=ledger,
                            rng=np.random.default_rng(3)),
    }
    results = {}
    for name, aqm in algorithms.items():
        summary = experiment.run(aqm).recorder.summary()
        results[name] = summary
    return results, ledger


def test_ablation_aqm_baselines(benchmark):
    results, ledger = benchmark.pedantic(run_all, rounds=1,
                                         iterations=1)

    print("\n=== A3: AQM algorithm comparison (Figure 8 workload) ===")
    print(f"{'algorithm':>10}{'mean [ms]':>11}{'p95 [ms]':>10}"
          f"{'max [ms]':>10}{'drop rate':>11}")
    for name, summary in results.items():
        print(f"{name:>10}{summary.mean_delay_s * 1e3:>11.1f}"
              f"{summary.p95_delay_s * 1e3:>10.1f}"
              f"{summary.max_delay_s * 1e3:>10.1f}"
              f"{summary.drop_rate:>11.2%}")
    print(f"pCAM analog search energy: {ledger.total:.3e} J total")

    pcam = results["pCAM-AQM"]
    tail = results["tail-drop"]
    # The analog AQM explodes neither the delay nor the drop count.
    assert pcam.mean_delay_s < 0.1 * tail.mean_delay_s
    assert pcam.mean_delay_s < 0.030
    # It matches or beats every digital baseline on mean delay here
    # (unresponsive Poisson overload, their hardest case).
    for name in ("RED", "CoDel", "PIE"):
        assert pcam.mean_delay_s < 1.2 * results[name].mean_delay_s, name
    # And the analog match energy for the whole run stays far below
    # even one millisecond of digital TCAM searching.
    assert ledger.total < 1e-9
