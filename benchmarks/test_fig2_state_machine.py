"""Figure 2: the analog state machine of the memristor.

Regenerates the property the figure illustrates: the same analog
input produces a different output per programmed state, and the
reachable state set can be reprogrammed at run time — on both the
ideal algebraic model and the device-realised one.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis.figures import figure2_series


def test_fig2_ideal_state_machine(benchmark):
    series = benchmark.pedantic(figure2_series, rounds=1, iterations=1)
    print_series("Figure 2: output = S * input (ideal)", series)

    inputs = series["inputs"]
    # Distinct programmed states -> distinct transfer lines.
    outputs = [series[key] for key in series if key != "inputs"]
    for i, a in enumerate(outputs):
        for b in outputs[i + 1:]:
            assert not np.allclose(a, b)
    # Each line is exactly S * input.
    np.testing.assert_allclose(series["S_0_0"], 0.2 * inputs)


def test_fig2_device_state_machine(benchmark):
    series = benchmark.pedantic(
        lambda: figure2_series(device_backed=True, seed=5),
        rounds=1, iterations=1)
    print_series("Figure 2: output = S * input (device)", series)

    ideal = figure2_series()
    for key in ("S_0_0", "S_0_2", "S_1_1"):
        np.testing.assert_allclose(series[key], ideal[key],
                                   rtol=0.15, atol=0.05)
