"""Ablation: responsive (AIMD) traffic, with and without ECN.

The Figure 8 workload is open-loop Poisson; real congestion control
closes the loop.  This bench runs AIMD senders through the bottleneck
under tail drop, the pCAM-AQM, and the pCAM-AQM with ECN marking, and
reports the classic trade-off: the unmanaged buffer bloats to a
standing queue, the AQM removes the bloat at a small drop cost, and
ECN removes the bloat with *zero* loss.
"""

import numpy as np

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.engine import Simulator
from repro.simnet.queue_sim import BottleneckQueue
from repro.simnet.responsive import AIMDFlowGenerator, FeedbackRouter

DURATION_S = 8.0
RATE_BPS = 20e6


def run(aqm, ecn_capable):
    sim = Simulator()
    router = FeedbackRouter()
    queue = BottleneckQueue(sim, service_rate_bps=RATE_BPS,
                            capacity_packets=800, aqm=aqm,
                            delivery_listener=router.on_delivery,
                            drop_listener=router.on_drop)
    for index in range(4):
        AIMDFlowGenerator(router, rtt_s=0.04, flow_id=index,
                          ecn_capable=ecn_capable,
                          rng=np.random.default_rng(index)
                          ).attach(sim, queue.enqueue)
    sim.run_until(DURATION_S)
    summary = queue.recorder.summary()
    throughput = summary.delivered * 1000 * 8 / DURATION_S
    return summary, throughput, queue


def run_all():
    results = {}
    results["tail-drop"] = run(TailDropAQM(), False)
    results["pCAM-AQM"] = run(
        PCAMAQM(rng=np.random.default_rng(9)), False)
    ecn_aqm = PCAMAQM(ecn_enabled=True, rng=np.random.default_rng(9))
    results["pCAM+ECN"] = run(ecn_aqm, True)
    return results, ecn_aqm


def test_ablation_responsive_flows(benchmark):
    results, ecn_aqm = benchmark.pedantic(run_all, rounds=1,
                                          iterations=1)

    print("\n=== Responsive (AIMD) traffic ablation ===")
    print(f"{'policy':>10}{'mean [ms]':>11}{'p95 [ms]':>10}"
          f"{'thr [Mb/s]':>12}{'losses':>8}")
    for name, (summary, throughput, _) in results.items():
        print(f"{name:>10}{summary.mean_delay_s * 1e3:>11.1f}"
              f"{summary.p95_delay_s * 1e3:>10.1f}"
              f"{throughput / 1e6:>12.1f}{summary.dropped:>8}")
    print(f"ECN marks delivered in lieu of drops: {ecn_aqm.ecn_marks}")

    bloated = results["tail-drop"][0]
    managed = results["pCAM-AQM"][0]
    ecn = results["pCAM+ECN"][0]
    # Bufferbloat without AQM: a standing queue near the buffer limit.
    assert bloated.mean_delay_s > 0.1
    # The analog AQM removes the bloat while keeping throughput high.
    assert managed.mean_delay_s < 0.2 * bloated.mean_delay_s
    assert results["pCAM-AQM"][1] > 0.75 * RATE_BPS
    # ECN: delay controlled with zero packet loss.
    assert ecn.mean_delay_s < 0.2 * bloated.mean_delay_s
    assert results["pCAM+ECN"][2].aqm_drops == 0
    assert ecn_aqm.ecn_marks > 0
