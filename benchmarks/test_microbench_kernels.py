"""Engineering microbenchmarks of the hot kernels.

Not a paper artifact — these keep the simulator honest: TCAM search,
pCAM cell evaluation, the eight-stage PDP pipeline, device reads and
the event loop, all timed by pytest-benchmark so regressions show up
in the harness.
"""

import numpy as np

from repro.core.pcam_cell import PCAMCell, prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline
from repro.device.memristor import NbSTOMemristor
from repro.device.variability import VariabilityModel
from repro.simnet.engine import Simulator
from repro.simnet.flows import PoissonFlowGenerator
from repro.simnet.queue_sim import BottleneckQueue
from repro.tcam.tcam import TCAM


def test_kernel_tcam_search_1k_entries(benchmark):
    rng = np.random.default_rng(0)
    tcam = TCAM(64)
    for _ in range(1024):
        tcam.add("".join(rng.choice(list("01x"), size=64)))
    key = int(rng.integers(0, 2 ** 63))
    result = benchmark(lambda: tcam.search(key))
    assert result.energy_j > 0.0


def test_kernel_pcam_cell_response(benchmark):
    cell = PCAMCell(prog_pcam(1.5, 2.4, 2.6, 3.5))
    value = benchmark(lambda: cell.response(2.1))
    assert 0.0 < value < 1.0


def test_kernel_pcam_pipeline_8_stages(benchmark):
    params = {f"s{i}": prog_pcam(0.0, 1.0, 2.0, 3.0) for i in range(8)}
    pipeline = PCAMPipeline.from_params(params)
    features = [1.5] * 8
    value = benchmark(lambda: pipeline.evaluate(features))
    assert value == 1.0


def test_kernel_device_read(benchmark):
    device = NbSTOMemristor(state=0.5,
                            variability=VariabilityModel(
                                read_sigma=0.03, device_sigma=0.0),
                            rng=np.random.default_rng(1))
    result = benchmark(lambda: device.read(2.0, 1e-9))
    assert result.energy_j > 0.0


def test_kernel_event_loop_throughput(benchmark):
    """Packets through an uncongested queue per simulated second."""

    def run() -> int:
        sim = Simulator()
        queue = BottleneckQueue(sim, service_rate_bps=1e9)
        PoissonFlowGenerator(rate_pps=10_000.0,
                             rng=np.random.default_rng(2)
                             ).attach(sim, queue.enqueue)
        sim.run_until(1.0)
        return queue.recorder.delivered

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    assert delivered > 9_000


def test_observability_hooks_free_when_unattached():
    """No hub attached => the instrumented entry costs what the raw
    kernel costs.

    The traced/profiled public ``matvec_batch`` goes through one
    ``maybe_span`` truth-test and one ``@profiled`` attribute probe;
    with no tracer and no profiler both must collapse to nothing.
    Pinned at 5% on a batch large enough that the kernel dominates.
    """
    import time as _time

    from repro.crossbar.array import Crossbar
    from repro.crossbar.losses import LineLossModel

    crossbar = Crossbar(64, 64,
                        losses=LineLossModel(
                            wire_resistance_per_cell_ohm=2.0,
                            sneak_conductance_s=1e-9,
                            crosstalk_fraction=0.01),
                        rng=np.random.default_rng(0))
    crossbar.program_normalised(np.random.default_rng(1).random((64, 64)))
    assert crossbar.tracer is None and crossbar.profiler is None
    voltages = np.random.default_rng(2).random((4096, 64))

    def best_of(fn, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            fn()
            best = min(best, _time.perf_counter() - start)
        return best

    instrumented = best_of(
        lambda: crossbar.matvec_batch(voltages, noisy=False))
    raw = best_of(
        lambda: crossbar._matvec_batch_kernel(voltages, 1e-9, False))
    assert instrumented <= raw * 1.05, (
        f"inert observability hooks cost "
        f"{(instrumented / raw - 1) * 100:.1f}% (> 5%) on the batch "
        f"read path")
