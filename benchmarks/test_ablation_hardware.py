"""Ablation: functional pCAM array vs its crossbar realisation.

Compares the ideal policy array against the same policies programmed
into the simulated crossbar (DAC quantization, IR drop, read noise),
plus the self-learning neuromorphic AQM as the future-work endpoint.
"""

import numpy as np

from repro.core.hardware_array import CrossbarPCAMArray
from repro.core.pcam_array import PCAMArray
from repro.core.pcam_cell import prog_pcam
from repro.crossbar.losses import LineLossModel
from repro.device.variability import VariabilityModel
from repro.netfunc.aqm.base import TailDropAQM
from repro.neuro.neuromorphic import NeuromorphicAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile

FIELDS = ("port", "size")
WORDS = [
    {"port": prog_pcam(0.5, 1.0, 1.5, 2.0),
     "size": prog_pcam(2.0, 2.5, 3.0, 3.5)},
    {"port": prog_pcam(2.5, 3.0, 3.5, 3.9),
     "size": prog_pcam(-1.0, -0.5, 0.0, 0.5)},
    {"port": prog_pcam(-1.5, -1.0, -0.5, 0.0),
     "size": prog_pcam(0.5, 1.0, 1.5, 2.0)},
]


def fidelity_sweep():
    functional = PCAMArray(FIELDS)
    hardware = CrossbarPCAMArray(
        FIELDS, max_words=8,
        losses=LineLossModel(wire_resistance_per_cell_ohm=1.0),
        variability=VariabilityModel(read_sigma=0.03, device_sigma=0.0),
        rng=np.random.default_rng(1))
    for word in WORDS:
        functional.add(word)
        hardware.add(word)
    rng = np.random.default_rng(2)
    errors = []
    energies = []
    for _ in range(60):
        query = {"port": float(rng.uniform(-1.8, 3.8)),
                 "size": float(rng.uniform(-1.8, 3.8))}
        ideal = functional.search(query).probabilities
        measured = hardware.search(query)
        errors.append(float(np.max(np.abs(measured.probabilities
                                          - ideal))))
        energies.append(measured.energy_j)
    return np.array(errors), np.array(energies)


def test_ablation_hardware_fidelity(benchmark):
    errors, energies = benchmark.pedantic(fidelity_sweep, rounds=1,
                                          iterations=1)

    print("\n=== Crossbar-realised pCAM array vs functional model ===")
    print(f"max |p_hw - p_ideal|: mean {errors.mean():.4f}, "
          f"p95 {np.percentile(errors, 95):.4f}, "
          f"worst {errors.max():.4f}")
    print(f"per-search energy: mean {energies.mean():.3e} J "
          f"(3 words x 2 fields, one analog cycle)")

    # The realised array stays faithful within the compiler's LOW
    # precision class on this substrate.
    assert np.percentile(errors, 95) < 0.1
    assert errors.mean() < 0.05


def test_neuromorphic_aqm_endpoint(benchmark):
    """The future-work endpoint: a *learned* analog AQM."""
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=8.0,
        rate_fn=overload_profile(2.0, 7.0, 1.6), seed=3)

    def run():
        aqm = NeuromorphicAQM(rng=np.random.default_rng(2))
        summary = experiment.run(aqm).recorder.summary()
        return aqm, summary

    aqm, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    unmanaged = experiment.run(TailDropAQM()).recorder.summary()

    print("\n=== Self-learning neuromorphic AQM (future work) ===")
    print(f"learned mean delay {summary.mean_delay_s * 1e3:.1f} ms "
          f"(tail-drop: {unmanaged.mean_delay_s * 1e3:.1f} ms), "
          f"{aqm.updates} weight updates")
    print(f"learned weights: {np.round(aqm.weights, 2)}")

    assert summary.mean_delay_s < 0.1 * unmanaged.mean_delay_s
    assert aqm.updates > 100
