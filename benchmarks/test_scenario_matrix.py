"""Full-size scenario matrix with behavioural gates + BENCH artifact.

Runs every registered scenario at its default packet count through
the default matrix switch with observability on, asserts the
behavioural invariants the catalogue documents (AQM drop probability
rising under flood with bounded queue delay, flow-cache collapse and
recovery under churn, no degradation trips on benign traffic), and
publishes the per-scenario reports — windowed drop/delay/cache
series, energy ledgers, observability snapshots — as
``BENCH_scenarios.json`` for CI to archive.

Tier-1 runs smaller replicas of these gates (``tests/test_scenarios.py``);
this module is `bench`-marked and runs in its own CI job:

    pytest benchmarks/test_scenario_matrix.py -m bench -q
"""

import json
import resource
from pathlib import Path

import numpy as np
import pytest

from repro.simnet.scenarios import (
    iter_scenarios,
    publish_reports,
    run_scenario,
    scenario,
    scenario_names,
)

pytestmark = pytest.mark.bench

RESULT_PATH = Path(__file__).parent / "BENCH_scenarios.json"


@pytest.fixture(scope="module")
def matrix():
    """Every scenario run once at full size, artifact published."""
    reports = {name: run_scenario(name, seed=0, observe=True)
               for name in scenario_names()}
    publish_reports(reports.values(), RESULT_PATH)
    return reports


class TestMatrixCoverage:
    def test_matrix_covers_the_catalogue(self, matrix):
        assert len(matrix) >= 6
        for report in matrix.values():
            assert report.n_packets \
                == scenario(report.scenario).default_packets
            assert sum(w.offered for w in report.windows) \
                == report.n_packets

    def test_artifact_published_per_scenario(self, matrix):
        document = json.loads(RESULT_PATH.read_text())
        assert set(document) == set(matrix)
        for name, payload in document.items():
            assert payload["energy_total_j"] > 0
            assert payload["metrics"] is not None
            assert len(payload["windows"]) == 20

    def test_energy_accounting_present_everywhere(self, matrix):
        for report in matrix.values():
            assert report.energy_per_packet_j > 0
            assert "compute" in report.energy_breakdown


class TestFloodBehaviour:
    @pytest.mark.parametrize("name,min_mean,max_delay", [
        ("flash_crowd", 0.25, 0.30),
        ("syn_flood", 0.10, 0.15),
        ("amplification_flood", 0.50, 0.80),
    ])
    def test_aqm_drop_probability_rises_under_flood(self, matrix, name,
                                                    min_mean, max_delay):
        report = matrix[name]
        window = scenario(name).meta["flood_window"]
        flood = [w.aqm_drop_rate for w in report.windows_in(window)]
        before = report.window_series("aqm_drop_rate")[
            :int(window[0] * len(report.windows))]
        assert float(np.mean(flood)) > min_mean
        assert max(before) < 0.01
        assert report.max_delay_ewma_s < max_delay
        assert report.max_pdp > 0.5

    @pytest.mark.parametrize("name", ["flash_crowd", "syn_flood",
                                      "amplification_flood"])
    def test_drops_subside_after_flood(self, matrix, name):
        report = matrix[name]
        assert max(report.window_series("aqm_drop_rate")[-2:]) < 0.05


class TestCacheBehaviour:
    def test_churn_collapses_and_recovers(self, matrix):
        report = matrix["cache_churn"]
        window = scenario("cache_churn").meta["churn_window"]
        churn = [w.cache_hit_rate for w in report.windows_in(window)]
        warm = [w.cache_hit_rate for w in report.windows[1:5]]
        after = [w.cache_hit_rate for w in report.windows[-4:]]
        assert max(churn) < 0.05
        assert min(warm) > 0.9
        assert min(after) > 0.9

    def test_scan_sweep_defeats_the_cache(self, matrix):
        report = matrix["scan_sweep"]
        assert report.cache_hit_rate < 0.2
        share = report.verdict_counts["dropped_no_route"] \
            / report.n_packets
        assert share > scenario("scan_sweep").meta["min_no_route_share"]

    def test_heavy_tail_keeps_the_cache_effective(self, matrix):
        report = matrix["elephants_mice"]
        assert min(w.cache_hit_rate
                   for w in report.windows[-5:]) > 0.85


class TestBenignStability:
    @pytest.mark.parametrize(
        "name", [entry.name for entry in iter_scenarios()
                 if entry.benign])
    def test_benign_scenarios_never_trip_degradation(self, matrix,
                                                     name):
        report = matrix[name]
        assert report.degraded_tables == ()
        assert report.fallback_events == 0

    @pytest.mark.parametrize("name", ["elephants_mice", "diurnal",
                                      "cache_churn", "scan_sweep"])
    def test_steady_benign_traffic_rides_below_the_aqm(self, matrix,
                                                       name):
        report = matrix[name]
        assert report.verdict_counts["dropped_aqm"] \
            < 0.001 * report.n_packets
        assert report.verdict_counts["dropped_overflow"] == 0

    def test_diurnal_pressure_follows_the_load_curve(self, matrix):
        report = matrix["diurnal"]
        meta = scenario("diurnal").meta
        peak = [w.max_backlog_pkts
                for w in report.windows_in(meta["peak_window"])]
        trough = [w.max_backlog_pkts
                  for w in report.windows_in(meta["trough_window"])]
        assert np.mean(peak) > 1.5 * np.mean(trough)


class TestStreamingMemory:
    def test_peak_rss_flat_while_streaming_10m_packets(self):
        """Streaming >= 10M packets must not grow the peak RSS beyond
        a few chunks' worth — the whole point of columnar chunking.

        ``ru_maxrss`` is a monotone high-water mark, so the baseline
        is taken *after* a 1M-packet warm-up pass (code paths, numpy
        buffer pools); any growth past it is genuine accumulation.
        """
        entry = scenario("syn_flood")
        consumed = 0
        for chunk in entry.stream(seed=0, n_packets=1_000_000,
                                  chunk_size=65_536):
            consumed += len(chunk)
        baseline_kb = resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss
        for chunk in entry.stream(seed=0, n_packets=10_000_000,
                                  chunk_size=65_536):
            consumed += len(chunk)
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert consumed == 11_000_000
        # a materialised 10M-packet stream would be ~550 MB of
        # columns alone; allow 64 MB of slack for allocator noise
        assert peak_kb - baseline_kb < 64 * 1024
