"""Ablation: the series *product* composition (Figure 4b) vs
alternatives.

The paper composes pCAM stages by multiplying their outputs.  This
bench compares product / min / geometric / mean composition of the
same programmed AQM pipeline on the Figure 8 workload.
"""

import numpy as np

from repro.core.pcam_pipeline import COMPOSITIONS
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


def run_compositions():
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=5.0,
        rate_fn=overload_profile(1.0, 4.0, 1.6), seed=3)
    results = {}
    for composition in COMPOSITIONS:
        aqm = PCAMAQM(composition=composition,
                      rng=np.random.default_rng(5))
        results[composition] = experiment.run(aqm).recorder.summary()
    return results


def test_ablation_composition(benchmark):
    results = benchmark.pedantic(run_compositions, rounds=1,
                                 iterations=1)

    print("\n=== Composition ablation (Figure 8 workload) ===")
    print(f"{'composition':>12}{'mean [ms]':>11}{'p95 [ms]':>10}"
          f"{'drop rate':>11}")
    for name, summary in results.items():
        print(f"{name:>12}{summary.mean_delay_s * 1e3:>11.1f}"
              f"{summary.p95_delay_s * 1e3:>10.1f}"
              f"{summary.drop_rate:>11.2%}")

    # Every composition keeps the queue stable on this workload.
    for name, summary in results.items():
        assert summary.mean_delay_s < 0.05, name
    # Mean-composition drops most aggressively (a single saturated
    # stage suffices), product is the most conservative of the four.
    assert results["mean"].drop_rate >= results["product"].drop_rate
