"""Ablation: the run-time update_pCAM adaptation controller.

The paper's ``action { update_pCAM(); }`` lets the table reprogram its
own thresholds from observed behaviour.  This bench deliberately
*mis-programs* the AQM (band centred far too high for the intended
objective) and shows that the adaptation controller pulls the delay
back toward the band, while the frozen variant stays out of spec.
"""

import numpy as np

from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile

#: The operator's real objective.
INTENDED_TARGET_S = 0.020
#: What was (wrongly) programmed: a 60 +- 30 ms band.
MISPROGRAMMED_TARGET_S = 0.060


def run_pair():
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=8.0,
        rate_fn=overload_profile(1.0, 7.0, 1.6), seed=3)
    results = {}
    for adaptation in (False, True):
        aqm = PCAMAQM(target_delay_s=MISPROGRAMMED_TARGET_S,
                      max_deviation_s=0.030,
                      adaptation=adaptation,
                      adaptation_interval_s=0.25,
                      rng=np.random.default_rng(4))
        # The adaptation controller chases the *intended* objective.
        aqm.target_delay_s = INTENDED_TARGET_S
        aqm.max_deviation_s = 0.010
        summary = experiment.run(aqm).recorder.summary()
        results[adaptation] = (summary, aqm)
    return results


def test_ablation_adaptation(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    print("\n=== update_pCAM adaptation ablation "
          "(mis-programmed 60 ms band, intent 20 ms) ===")
    print(f"{'adaptation':>11}{'mean [ms]':>11}{'p95 [ms]':>10}"
          f"{'reprograms':>12}{'final shift':>13}")
    for adaptation, (summary, aqm) in results.items():
        print(f"{str(adaptation):>11}{summary.mean_delay_s * 1e3:>11.1f}"
              f"{summary.p95_delay_s * 1e3:>10.1f}"
              f"{aqm.adaptations:>12}{aqm.threshold_shift:>13.2f}")

    frozen, _ = results[False]
    adapted, adapted_aqm = results[True]
    # The frozen mis-programmed AQM parks the queue near 60 ms.
    assert frozen.mean_delay_s > 0.04
    # The adaptive one reprograms itself toward the 20 ms intent.
    assert adapted_aqm.adaptations > 0
    assert adapted_aqm.threshold_shift < 1.0
    assert adapted.mean_delay_s < 0.6 * frozen.mean_delay_s
