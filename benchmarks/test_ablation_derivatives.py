"""Ablation A1: do the higher-order derivative features matter?

The paper argues the 1st/2nd/3rd-order derivatives of sojourn time
and buffer size are what make the AQM "cognitive".  This bench runs
the Figure 8 workload with the feature order swept 0..3 and reports
delay statistics and drop efficiency per configuration.
"""

import numpy as np

from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.topology import DumbbellExperiment, overload_profile


def run_order(order: int):
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=40e6,
        capacity_packets=1500, duration_s=6.0,
        rate_fn=overload_profile(1.5, 5.0, 1.6), seed=3)
    aqm = PCAMAQM(order=order, rng=np.random.default_rng(order + 10))
    result = experiment.run(aqm)
    return result.recorder.summary(), result.queue.aqm_drops


def test_ablation_derivative_order(benchmark):
    results = benchmark.pedantic(
        lambda: {order: run_order(order) for order in range(4)},
        rounds=1, iterations=1)

    print("\n=== A1: derivative-order ablation (Figure 8 workload) ===")
    print(f"{'order':>6}{'stages':>8}{'mean [ms]':>11}{'p95 [ms]':>10}"
          f"{'max [ms]':>10}{'AQM drops':>11}")
    for order, (summary, drops) in results.items():
        stages = 2 * (order + 1)
        print(f"{order:>6}{stages:>8}{summary.mean_delay_s * 1e3:>11.1f}"
              f"{summary.p95_delay_s * 1e3:>10.1f}"
              f"{summary.max_delay_s * 1e3:>10.1f}{drops:>11}")

    # Every configuration must control the queue...
    for order, (summary, _) in results.items():
        assert summary.mean_delay_s < 0.035, order
    # ...and the derivative stages must not destabilise it: the full
    # order-3 pipeline keeps worst-case delay within the band edge.
    full = results[3][0]
    assert full.max_delay_s < 0.045
    # Derivative vetoes make dropping more selective: with the veto
    # stages active the AQM never drops *more* than the 0th-order
    # controller on the same trace.
    assert results[3][1] <= 1.1 * results[0][1]
