"""Figure 8: queue management by the analog AQM.

Regenerates the delay-vs-time experiment: Poisson flows through a
bottleneck with an overload episode; without AQM the delay climbs to
the buffer limit, with the pCAM-based AQM it stays near the
programmed 20 ms +- 10 ms band.
"""

import numpy as np

from repro.analysis.figures import figure8_series
from repro.analysis.stats import banded_fraction


def test_fig8_delay_series(benchmark):
    series = benchmark.pedantic(
        lambda: figure8_series(duration_s=8.0,
                               overload=(2.0, 6.0, 1.6),
                               service_rate_bps=40e6, seed=3),
        rounds=1, iterations=1)

    print("\n=== Figure 8: packet delay over time [ms] ===")
    print(f"{'t [s]':>8}{'no AQM':>12}{'pCAM-AQM':>12}")
    for t, no_aqm, pcam in zip(series.time_s[::8],
                               series.no_aqm_delay_ms[::8],
                               series.pcam_delay_ms[::8]):
        print(f"{t:>8.2f}{no_aqm:>12.2f}{pcam:>12.2f}")
    print(f"drops: no AQM {series.no_aqm_drops}, "
          f"pCAM {series.pcam_drops}; programmed band "
          f"{series.target_delay_ms:.0f} +- "
          f"{series.max_deviation_ms:.0f} ms")

    overload = (series.time_s >= 3.0) & (series.time_s < 6.0)
    no_aqm = series.no_aqm_delay_ms[overload]
    pcam = series.pcam_delay_ms[overload]
    no_aqm = no_aqm[~np.isnan(no_aqm)]
    pcam = pcam[~np.isnan(pcam)]

    # Without AQM the delay keeps rising sharply (paper's wording).
    assert no_aqm.max() > 100.0
    assert no_aqm.mean() > 5 * pcam.mean()
    # The analog AQM keeps delays within the programmed bounds.
    band_lo = series.target_delay_ms - series.max_deviation_ms
    band_hi = series.target_delay_ms + series.max_deviation_ms
    assert banded_fraction(pcam, band_lo, band_hi) > 0.6
    assert pcam.max() < 1.5 * band_hi
