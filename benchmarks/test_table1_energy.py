"""Table 1: latency and energy per bit, eight digital designs vs pCAM.

Regenerates the paper's performance-comparison table: the digital
rows are published figures, the pCAM row is measured from the chip
dataset.  Expected shape: pCAM matches digital latency (~1 ns) while
undercutting the best digital energy by at least 50x.
"""

from repro.device.energy import energy_statistics
from repro.energy.comparison import (
    build_table1,
    format_table1,
    improvement_factor,
)


def test_table1(benchmark, chip_dataset):
    rows = benchmark.pedantic(
        lambda: build_table1(chip_dataset), rounds=1, iterations=1)

    print()
    for line in format_table1(rows):
        print(line)

    pcam = next(row for row in rows if row.measured)
    assert pcam.latency_ns == 1.0
    assert pcam.energy_fj_per_bit < 0.02
    assert improvement_factor(rows) >= 50.0
    for row in rows:
        if not row.measured:
            assert pcam.energy_fj_per_bit < row.energy_fj_per_bit


def test_table1_search_kernel(benchmark, chip_dataset):
    """Microbenchmark: the per-state energy extraction itself."""
    stats = benchmark(lambda: energy_statistics(chip_dataset))
    assert stats.min_fj < 0.02
