"""Scalar vs batched pCAM evaluation throughput.

Not a paper artifact — this pins the engineering payoff of the batch
fast path: evaluating a 10k-packet feature matrix through the full
PDP pipeline in one NumPy pass versus looping the scalar reference.
Run with ``-s`` to see the packets-per-second table.
"""

import time

import numpy as np
import pytest

from repro.core.pcam_array import PCAMArray
from repro.core.pcam_cell import PCAMParams, prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline

N_PACKETS = 10_000


@pytest.fixture(scope="module")
def pipeline() -> PCAMPipeline:
    """The AQM-shaped pipeline: eight stages, product composition."""
    params = {f"s{i}": prog_pcam(0.0, 1.0, 2.0, 3.0) for i in range(8)}
    return PCAMPipeline.from_params(params)


@pytest.fixture(scope="module")
def feature_batch(pipeline) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {name: rng.uniform(-0.5, 3.5, N_PACKETS)
            for name in pipeline.stage_names}


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock of one call [s]."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _report(label: str, scalar_s: float, batch_s: float,
            n: int = N_PACKETS) -> float:
    speedup = scalar_s / batch_s
    print(f"\n=== {label} ({n} packets) ===")
    print(f"{'path':>10}{'wall [s]':>14}{'packets/s':>16}")
    print(f"{'scalar':>10}{scalar_s:>14.4f}{n / scalar_s:>16,.0f}")
    print(f"{'batch':>10}{batch_s:>14.4f}{n / batch_s:>16,.0f}")
    print(f"speedup: {speedup:.1f}x")
    return speedup


def test_pipeline_batch_at_least_10x_scalar(pipeline, feature_batch):
    """The acceptance bar: >= 10x on a 10k-packet feature matrix."""
    columns = feature_batch

    def scalar_loop():
        return [pipeline.evaluate({name: float(values[i])
                                   for name, values in columns.items()})
                for i in range(N_PACKETS)]

    def batch_pass():
        return pipeline.evaluate_batch(columns)

    reference = np.array(scalar_loop())
    result = batch_pass()
    assert np.allclose(result, reference, rtol=1e-9)

    speedup = _report("PCAMPipeline.evaluate_batch",
                      _time(scalar_loop, repeats=1), _time(batch_pass))
    assert speedup >= 10.0


def test_array_search_batch_throughput():
    array = PCAMArray(["delay", "load"])
    for shift in np.linspace(0.0, 0.4, 8):
        array.add({
            "delay": PCAMParams.canonical(0.1 + shift, 0.3 + shift,
                                          0.6 + shift, 0.9 + shift),
            "load": PCAMParams.canonical(0.0, 0.2, 0.5, 0.8)})
    rng = np.random.default_rng(1)
    queries = {"delay": rng.uniform(0.0, 1.3, N_PACKETS),
               "load": rng.uniform(0.0, 1.0, N_PACKETS)}

    def scalar_loop():
        return [array.search({name: float(values[i])
                              for name, values in queries.items()})
                for i in range(N_PACKETS)]

    def batch_pass():
        return array.search_batch(queries)

    batch = batch_pass()
    sample = array.search({name: float(values[0])
                           for name, values in queries.items()})
    assert np.allclose(batch.probabilities[0], sample.probabilities,
                       rtol=1e-9)
    speedup = _report("PCAMArray.search_batch",
                      _time(scalar_loop, repeats=1), _time(batch_pass))
    assert speedup >= 10.0


def test_benchmark_harness_pipeline_batch(pipeline, feature_batch,
                                          benchmark):
    """pytest-benchmark row for regression tracking of the fast path."""
    result = benchmark(lambda: pipeline.evaluate_batch(feature_batch))
    assert result.shape == (N_PACKETS,)
