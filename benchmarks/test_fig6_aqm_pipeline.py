"""Figure 6: the analog AQM dataflow inside the cognitive traffic
manager.

Regenerates the stage structure: queue statistics -> analog
derivative features -> series of pCAM stages -> PDP, and prints the
per-stage trace for a congestion ramp.
"""

import numpy as np

from repro.netfunc.aqm.pcam_aqm import PCAMAQM


class RampQueue:
    """A queue whose backlog follows a scripted congestion ramp."""

    def __init__(self, rate=40e6):
        self.backlog_bytes = 0
        self.backlog_packets = 0
        self.capacity_packets = 2000
        self.service_rate_bps = rate
        self.last_sojourn_s = 0.0

    def set_backlog(self, backlog_bytes: int) -> None:
        self.backlog_bytes = backlog_bytes
        self.backlog_packets = backlog_bytes // 1000
        self.last_sojourn_s = 8.0 * backlog_bytes / self.service_rate_bps


def run_ramp(aqm: PCAMAQM) -> list[tuple[float, float]]:
    """Drive a backlog ramp and capture (backlog delay, PDP)."""
    queue = RampQueue()
    trace = []
    for step in range(120):
        backlog = int(min(step, 80) * 4000)  # ramp then hold
        queue.set_backlog(backlog)
        now = step * 0.005
        pdp = aqm.pdp(queue, now)
        trace.append((8.0 * backlog / queue.service_rate_bps, pdp))
    return trace


def test_fig6_pipeline_dataflow(benchmark):
    aqm = PCAMAQM(adaptation=False, rng=np.random.default_rng(1))
    trace = benchmark.pedantic(lambda: run_ramp(aqm), rounds=1,
                               iterations=1)

    print("\n=== Figure 6: congestion ramp -> PDP ===")
    print(f"{'backlog delay [ms]':>20}{'PDP':>10}")
    for delay, pdp in trace[::12]:
        print(f"{delay * 1e3:>20.2f}{pdp:>10.3f}")

    delays = np.array([d for d, _ in trace])
    pdps = np.array([p for _, p in trace])
    # Below the band: no drops.  Deep congestion: PDP saturates.
    assert pdps[delays < 0.008].max() == 0.0
    assert pdps[-1] > 0.9
    # The pipeline has the paper's eight stages.
    assert len(aqm.pipeline) == 8
    assert aqm.pipeline.stage_names[0] == "sojourn_time"
    assert aqm.pipeline.stage_names[-1] == "d3_buffer"


def test_fig6_pdp_evaluation_kernel(benchmark):
    """Microbenchmark: one eight-stage PDP evaluation."""
    aqm = PCAMAQM(adaptation=False, rng=np.random.default_rng(2))
    queue = RampQueue()
    queue.set_backlog(120_000)
    counter = iter(range(10 ** 9))

    def evaluate():
        return aqm.pdp(queue, next(counter) * 1e-4)

    pdp = benchmark(evaluate)
    assert 0.0 <= pdp <= 1.0
