"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints
the corresponding rows/series (run pytest with ``-s`` to see them).
Heavy experiments are wrapped in ``benchmark.pedantic(rounds=1)`` so
the harness reports wall-clock without repeating multi-second runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.dataset import MemristorDataset, generate_dataset


@pytest.fixture(scope="session")
def chip_dataset() -> MemristorDataset:
    """The synthetic Nb:SrTiO3 measurement campaign used everywhere."""
    return generate_dataset(n_states=48, n_voltages=97,
                            include_sweeps=False,
                            include_pulse_trains=False, seed=7)


def print_series(title: str, columns: dict[str, np.ndarray],
                 max_rows: int = 12) -> None:
    """Render a few rows of a figure's series as an aligned table."""
    print(f"\n=== {title} ===")
    names = list(columns)
    header = "".join(f"{name:>16}" for name in names)
    print(header)
    lengths = {len(np.atleast_1d(column)) for column in columns.values()}
    n = max(lengths)
    step = max(1, n // max_rows)
    for index in range(0, n, step):
        row = ""
        for name in names:
            column = np.atleast_1d(columns[name])
            value = column[index] if index < len(column) else float("nan")
            row += f"{value:>16.4g}"
        print(row)
