"""Figure 7: analog AQM outputs (PDP) over the memristor dataset.

Regenerates both panels — PDP vs analog input voltage for inputs in
[1, 4] V (a) and [-2, 1] V (b) — measured on device-realised pCAM
cells with the chip's noise, alongside the per-read energies.
Expected shape: PDP spans the full [0, 1] range with deterministic
plateaus and probabilistic ramps, exactly as in the paper's figure.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.analysis.figures import figure7_series


@pytest.mark.parametrize("panel, v_lo, v_hi", [("a", 1.0, 4.0),
                                               ("b", -2.0, 1.0)])
def test_fig7_panel(benchmark, chip_dataset, panel, v_lo, v_hi):
    series = benchmark.pedantic(
        lambda: figure7_series(panel, dataset=chip_dataset,
                               n_points=61, trials=12),
        rounds=1, iterations=1)

    print_series(
        f"Figure 7({panel}): PDP vs input in [{v_lo}, {v_hi}] V",
        {"input_V": series["inputs"],
         "pdp_mean": series["pdp_mean"],
         "pdp_std": series["pdp_std"],
         "read_E_J": series["read_energy_j"]})

    mean = series["pdp_mean"]
    # Full dynamic range of the drop probability.
    assert mean.min() <= 0.05
    assert mean.max() >= 0.95
    # The measured curve tracks the programmed response.
    assert np.max(np.abs(mean - series["pdp_ideal"])) < 0.15
    # Probabilistic ramps exist: intermediate values are produced.
    intermediate = (mean > 0.2) & (mean < 0.8)
    assert intermediate.sum() >= 4
