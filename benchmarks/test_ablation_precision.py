"""Ablation A2: precision loss vs analog substrate quality (RQ2).

Sweeps DAC resolution, device read noise and wire resistance, and
reports the compiler's analog error budget plus which function
classes remain mappable to the analog domain at each point.
"""

import numpy as np

from repro.core.compiler import (
    CognitiveCompiler,
    CompilationError,
    FunctionKind,
    NetworkFunctionSpec,
    PrecisionClass,
)
from repro.crossbar.converters import DAC
from repro.crossbar.losses import LineLossModel
from repro.device.variability import VariabilityModel

SPECS = [
    NetworkFunctionSpec("aqm", PrecisionClass.LOW,
                        FunctionKind.COGNITIVE),
    NetworkFunctionSpec("load_balancer", PrecisionClass.MEDIUM,
                        FunctionKind.COGNITIVE),
    NetworkFunctionSpec("coarse_filter", PrecisionClass.LOW,
                        FunctionKind.DETERMINISTIC),
]


def sweep():
    rows = []
    for bits in (4, 6, 8, 10):
        for sigma in (0.01, 0.03, 0.08, 0.15):
            compiler = CognitiveCompiler(
                dac=DAC(bits=bits),
                variability=VariabilityModel(read_sigma=sigma),
                losses=LineLossModel(wire_resistance_per_cell_ohm=1.0))
            budget = compiler.error_budget()
            try:
                placement = compiler.place(SPECS)
                analog = len(placement.analog)
            except CompilationError:
                analog = 0
            rows.append((bits, sigma, budget.total,
                         budget.dominant_term(), analog))
    return rows


def test_ablation_precision_budget(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== A2: analog error budget sweep ===")
    print(f"{'DAC bits':>9}{'read sigma':>11}{'error':>9}"
          f"{'dominant':>14}{'analog fns':>11}")
    for bits, sigma, error, dominant, analog in rows:
        print(f"{bits:>9}{sigma:>11.2f}{error:>9.4f}{dominant:>14}"
              f"{analog:>11}")

    by_key = {(bits, sigma): (error, analog)
              for bits, sigma, error, _, analog in rows}
    # Error monotone in device noise at fixed DAC resolution.
    assert by_key[(8, 0.15)][0] > by_key[(8, 0.01)][0]
    # A clean substrate maps all three functions to analog...
    assert by_key[(8, 0.01)][1] == 3
    # ...while a noisy one loses the MEDIUM-precision function first
    # and eventually everything cognitive.
    assert by_key[(8, 0.15)][1] < 3
    # Very coarse DACs alone do not kill LOW-precision functions.
    assert by_key[(4, 0.01)][1] >= 1
