"""Figure 4: the pCAM transfer function and series composition.

Regenerates (a) the five-region cell response — pmin plateaus, two
programmable ramps, pmax match window — and (b) the product of two
cells in series.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis.figures import figure4_series
from repro.core.pcam_cell import PCAMCell, prog_pcam


def test_fig4_response_and_series(benchmark):
    series = benchmark.pedantic(figure4_series, rounds=1, iterations=1)
    print_series("Figure 4: pCAM response", series)

    single = series["single"]
    product = series["series_product"]
    inputs = series["inputs"]
    # Five regions visible: flat pmin, up-ramp, pmax plateau,
    # down-ramp, flat pmin.
    assert single[0] == 0.0 and single[-1] == 0.0
    assert single.max() == 1.0
    plateau = single == 1.0
    assert plateau.sum() >= 3
    # Series product squares the ramps but keeps the plateau.
    np.testing.assert_allclose(product[plateau], 1.0)
    ramps = (single > 0.01) & (single < 0.99)
    np.testing.assert_allclose(product[ramps], single[ramps] ** 2)


def test_fig4_cell_evaluation_kernel(benchmark):
    """Microbenchmark: one vectorised cell evaluation (201 points)."""
    cell = PCAMCell(prog_pcam(1.5, 2.4, 2.6, 3.5))
    inputs = np.linspace(1.0, 4.0, 201)
    outputs = benchmark(lambda: cell.response_array(inputs))
    assert outputs.shape == inputs.shape
