"""End-to-end dataplane throughput: staged batch and compiled kernel.

Not a paper artifact — this pins the engineering payoff of two
tentpoles: pushing a 10k-packet mixed-flow trace through the full
Figure 5 pipeline (parser fields -> firewall ACL -> LPM route ->
per-port AQM) with ``process_batch`` versus looping per-packet
``process`` (the staged columnar fast path), and the same trace
through the fused chunk kernel the pipeline compiler emits
(``request_compile``, byte-identical results).  Measured numbers land
in ``BENCH_fastpath.json`` / ``BENCH_fastpath_compiled.json`` so CI
can archive them, and each speedup is gated against its committed
baseline: a >20% regression of the advantage fails the run.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.dataplane.pipeline import AnalogPacketProcessor
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, FirewallRule
from repro.packet import Packet

N_PACKETS = 10_000
CHUNK_SIZE = 256
RESULT_PATH = Path(__file__).parent / "BENCH_fastpath.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_fastpath_baseline.json"
COMPILED_RESULT_PATH = Path(__file__).parent / \
    "BENCH_fastpath_compiled.json"
COMPILED_BASELINE_PATH = Path(__file__).parent / \
    "BENCH_fastpath_compiled_baseline.json"

#: Mixed flows: three routed prefixes, one denied prefix, one
#: unrouted prefix, and the occasional destination-less packet.
DST_POOL = [
    "10.1.2.3", "10.1.2.4", "10.200.0.1",
    "192.168.7.7", "192.168.9.1",
    "172.16.0.5", "172.16.3.3",
    "203.0.113.9", "203.0.113.10",
    "198.51.100.1",
    None,
]
SRC_POOL = ["1.2.3.4", "5.6.7.8", "9.10.11.12", "13.14.15.16"]


def build_processor(aqm_seed: int = 11) -> AnalogPacketProcessor:
    processor = AnalogPacketProcessor(
        n_ports=3,
        aqm_factory=lambda: PCAMAQM(rng=np.random.default_rng(aqm_seed)))
    processor.add_firewall_rule(FirewallRule(
        action=Action.DENY, dst_prefix="203.0.113.0/24"))
    processor.add_route("10.0.0.0/8", 0)
    processor.add_route("192.168.0.0/16", 1)
    processor.add_route("172.16.0.0/12", 2)
    return processor


def make_trace(n: int = N_PACKETS, seed: int = 29) -> list[Packet]:
    rng = np.random.default_rng(seed)
    packets = []
    for _ in range(n):
        fields = {"src_ip": SRC_POOL[int(rng.integers(len(SRC_POOL)))],
                  "src_port": int(rng.integers(1024, 1032)),
                  "dst_port": int(rng.integers(80, 84)),
                  "protocol": int(rng.choice([6, 17]))}
        dst = DST_POOL[int(rng.integers(len(DST_POOL)))]
        if dst is not None:
            fields["dst_ip"] = dst
        packets.append(Packet(size_bytes=int(rng.integers(64, 1500)),
                              priority=int(rng.random() < 0.3),
                              fields=fields))
    return packets


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock of one call [s]."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fastpath_speedup_and_regression_gate():
    """>= 5x over per-packet processing, and no drift vs baseline."""
    packets = make_trace()

    # Each pass gets a fresh processor: queue backlogs and telemetry
    # are stateful, so re-running on a warm one would measure a
    # different workload.
    def scalar_pass():
        processor = build_processor()
        return processor, [processor.process(p, now=0.5)
                           for p in packets]

    def batch_pass():
        processor = build_processor()
        return processor, processor.process_batch(
            packets, now=0.5, chunk_size=CHUNK_SIZE)

    _, reference = scalar_pass()
    _, fast = batch_pass()
    assert [r.verdict for r in fast] == [r.verdict for r in reference]
    assert [r.port for r in fast] == [r.port for r in reference]

    scalar_s = _time(scalar_pass, repeats=1)
    batch_s = _time(batch_pass, repeats=3)
    speedup = scalar_s / batch_s

    report = {
        "n_packets": N_PACKETS,
        "chunk_size": CHUNK_SIZE,
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "scalar_pps": round(N_PACKETS / scalar_s),
        "batch_pps": round(N_PACKETS / batch_s),
        "speedup": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n=== dataplane fast path ({N_PACKETS} packets) ===")
    print(f"{'path':>10}{'wall [s]':>14}{'packets/s':>16}")
    print(f"{'scalar':>10}{scalar_s:>14.4f}{N_PACKETS / scalar_s:>16,.0f}")
    print(f"{'batch':>10}{batch_s:>14.4f}{N_PACKETS / batch_s:>16,.0f}")
    print(f"speedup: {speedup:.1f}x")

    assert speedup >= 5.0

    # The baseline stores the speedup *ratio*, not wall-clock, so the
    # gate is machine-independent: fail only if the batch advantage
    # itself eroded by more than 20%.
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = 0.8 * baseline["speedup"]
    assert speedup >= floor, (
        f"fast-path speedup regressed: {speedup:.1f}x < "
        f"{floor:.1f}x (80% of baseline {baseline['speedup']:.1f}x)")


def test_compiled_kernel_speedup_and_regression_gate():
    """The fused kernel: exact results, gated gains over both paths.

    The compiled run must return byte-identical verdicts/ports to the
    staged batch run (the golden tests pin telemetry and energy too),
    beat it by the committed staged-vs-compiled floor, and hold the
    committed end-to-end (scalar-vs-compiled) advantage within 20%.
    """
    packets = make_trace()

    def scalar_pass():
        processor = build_processor()
        return processor, [processor.process(p, now=0.5)
                           for p in packets]

    def batch_pass():
        processor = build_processor()
        return processor, processor.process_batch(
            packets, now=0.5, chunk_size=CHUNK_SIZE)

    def compiled_pass():
        processor = build_processor()
        plan = processor.request_compile()
        assert plan.fused, plan.reasons
        return processor, processor.process_batch(
            packets, now=0.5, chunk_size=CHUNK_SIZE)

    _, reference = batch_pass()
    compiled_processor, fused = compiled_pass()
    assert [r.verdict for r in fused] == \
        [r.verdict for r in reference]
    assert [r.port for r in fused] == [r.port for r in reference]

    scalar_s = _time(scalar_pass, repeats=1)
    batch_s = _time(batch_pass, repeats=3)
    compiled_s = _time(compiled_pass, repeats=3)
    vs_staged = batch_s / compiled_s
    vs_scalar = scalar_s / compiled_s

    report = {
        "n_packets": N_PACKETS,
        "chunk_size": CHUNK_SIZE,
        "lowering": compiled_processor.compiled_plan.lowering,
        "scalar_s": round(scalar_s, 4),
        "staged_batch_s": round(batch_s, 4),
        "compiled_s": round(compiled_s, 4),
        "compiled_pps": round(N_PACKETS / compiled_s),
        "speedup_vs_staged": round(vs_staged, 2),
        "speedup_vs_scalar": round(vs_scalar, 2),
    }
    COMPILED_RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n=== compiled kernel ({N_PACKETS} packets, "
          f"{report['lowering']} lowering) ===")
    print(f"{'path':>10}{'wall [s]':>14}{'packets/s':>16}")
    print(f"{'scalar':>10}{scalar_s:>14.4f}"
          f"{N_PACKETS / scalar_s:>16,.0f}")
    print(f"{'staged':>10}{batch_s:>14.4f}"
          f"{N_PACKETS / batch_s:>16,.0f}")
    print(f"{'compiled':>10}{compiled_s:>14.4f}"
          f"{N_PACKETS / compiled_s:>16,.0f}")
    print(f"vs staged: {vs_staged:.2f}x   vs scalar: {vs_scalar:.1f}x")

    baseline = json.loads(COMPILED_BASELINE_PATH.read_text())
    assert vs_staged >= baseline["speedup_vs_staged"], (
        f"compiled kernel no longer beats the staged walk: "
        f"{vs_staged:.2f}x < committed floor "
        f"{baseline['speedup_vs_staged']:.2f}x")
    floor = 0.8 * baseline["speedup_vs_scalar"]
    assert vs_scalar >= floor, (
        f"compiled end-to-end speedup regressed: {vs_scalar:.1f}x < "
        f"{floor:.1f}x (80% of baseline "
        f"{baseline['speedup_vs_scalar']:.1f}x)")
