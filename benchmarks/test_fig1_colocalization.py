"""Figure 1: energy of separate vs colocalized compute/storage.

Regenerates the motivating claim: a digital TCAM spends ~90% of its
search energy shuttling data between storage and computation, while
the memristor array computes *in* storage and moves nothing.
"""

from repro.analysis.figures import figure1_series


def test_fig1_energy_split(benchmark):
    series = benchmark.pedantic(
        lambda: figure1_series(width_bits=64, n_entries=64,
                               n_searches=256),
        rounds=1, iterations=1)

    print("\n=== Figure 1: energy split per technology ===")
    print(f"{'technology':>22}{'total [J]':>14}{'movement':>10}"
          f"{'compute':>10}")
    for label, data in series.items():
        print(f"{label:>22}{data['total_j']:>14.3e}"
              f"{data['movement_fraction']:>10.1%}"
              f"{1 - data['movement_fraction']:>10.1%}")

    digital = series["digital_transistor"]
    analog = series["analog_memristor"]
    assert digital["movement_fraction"] >= 0.85     # "upto 90%"
    assert analog["movement_fraction"] == 0.0       # colocalized
    assert analog["total_j"] < digital["total_j"]


def test_fig1_search_kernel(benchmark):
    """Microbenchmark: a single 64-bit memristor TCAM search."""
    from repro.tcam.mtcam import MemristorTCAM
    cam = MemristorTCAM(64)
    for _ in range(64):
        cam.add("x" * 32 + "10" * 16)
    result = benchmark(lambda: cam.search(0))
    assert result.energy_j > 0.0
