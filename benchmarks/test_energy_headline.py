"""Sec. 6 headline energies: 0.01 fJ/bit minimum, 0.16 nJ/bit maximum.

Regenerates the per-state read-energy distribution of the chip
dataset and checks the two anchors plus the >= 50x claim.
"""

import numpy as np

from repro.device.energy import (
    energy_histogram,
    energy_statistics,
    energy_statistics_all_reads,
)


def test_energy_headline(benchmark, chip_dataset):
    stats = benchmark.pedantic(
        lambda: energy_statistics(chip_dataset), rounds=1, iterations=1)

    counts, edges = energy_histogram(chip_dataset, bins_per_decade=1)
    print("\n=== Per-state read energy distribution ===")
    print(f"min {stats.min_fj:.4f} fJ/bit/cell   "
          f"max {stats.max_nj:.4f} nJ/bit/cell   "
          f"span {stats.decades:.1f} decades")
    print(f"{'decade [J]':>24}{'reads':>10}")
    for lo, hi, count in zip(edges[:-1], edges[1:], counts):
        if count:
            print(f"{lo:>11.1e}..{hi:<11.1e}{count:>10}")

    # The paper's two anchors (within dataset-noise tolerance).
    assert stats.min_fj == np.float64(stats.min_fj)
    assert 0.008 <= stats.min_fj <= 0.013
    assert 0.13 <= stats.max_nj <= 0.18
    # "at least 50 times more energy efficient" than digital.
    assert stats.improvement_over_digital() >= 50.0
    # The state space is rich in low-energy states.
    all_reads = energy_statistics_all_reads(chip_dataset)
    assert all_reads.decades > stats.decades
