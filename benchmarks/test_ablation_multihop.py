"""Ablation: per-hop analog AQM in a multi-bottleneck path.

Two chained bottlenecks (the tighter one downstream) under 1.3x
overload: without AQM the end-to-end delay is the sum of two bloated
queues; with the pCAM-AQM at every hop it stays near the band plus
propagation.
"""

import numpy as np

from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.multihop import MultiBottleneckExperiment


def run_both():
    experiment = MultiBottleneckExperiment(
        n_flows=6, load=1.3, hop_rates_bps=(60e6, 40e6),
        propagation_delays_s=(0.002, 0.002), duration_s=6.0, seed=21)
    unmanaged = experiment.run(TailDropAQM)
    counter = iter(range(100))
    managed = experiment.run(
        lambda: PCAMAQM(rng=np.random.default_rng(next(counter))))
    return unmanaged, managed


def test_ablation_multihop(benchmark):
    unmanaged, managed = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)

    print("\n=== Multi-bottleneck path (60 -> 40 Mb/s, 1.3x load) ===")
    print(f"{'policy':>12}{'e2e mean [ms]':>15}{'e2e p95 [ms]':>14}"
          f"{'delivered':>11}{'dropped':>9}")
    for name, result in (("tail-drop", unmanaged),
                         ("pCAM-AQM", managed)):
        print(f"{name:>12}{result.mean_delay_s * 1e3:>15.1f}"
              f"{result.p95_delay_s * 1e3:>14.1f}"
              f"{result.delivered:>11}{result.dropped:>9}")
    for hop, recorder in enumerate(managed.per_hop_recorders):
        delays = np.asarray(recorder.sojourn_times)
        if delays.size:
            print(f"  managed hop {hop}: mean sojourn "
                  f"{delays.mean() * 1e3:.1f} ms")

    assert unmanaged.mean_delay_s > 0.1
    assert managed.mean_delay_s < 0.3 * unmanaged.mean_delay_s
    assert managed.p95_delay_s < 0.05
    assert managed.delivered > 0.6 * unmanaged.delivered