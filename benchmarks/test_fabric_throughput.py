"""Fabric scaling: the cache-churn trace across shard counts.

Not a paper artifact — this pins the engineering payoff of the
sharded fabric: the adversarial ``cache_churn`` scenario trace pushed
through one scenario-style switch versus 4-shard fabrics in both
execution modes, all over the columnar ``process_columns`` path (SoA
chunks ride shared memory into the worker processes).

Measured numbers land in ``BENCH_fabric.json`` (with the host core
count, since parallel speedup is core-bound) so CI can archive them,
and the multiprocessing scaling factor is gated against the committed
``BENCH_fabric_baseline.json``: on an M-core host, N multiprocessing
shards must reach ``0.7 * min(N, M)`` of the single-switch
throughput — the ISSUE's scaling floor, capped by physical cores.
Single-core hosts (CI containers) only sanity-gate against collapse:
there is no parallelism to measure.
"""

import json
import os
import time
from pathlib import Path

from repro.fabric import build_fabric
from repro.simnet.scenarios import default_switch_spec, scenario

N_PACKETS = 60_000
CHUNK_SIZE = 8192
ADMISSION_CHUNK = 2048
N_SHARDS = 4
SEED = 23
RESULT_PATH = Path(__file__).parent / "BENCH_fabric.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_fabric_baseline.json"


def churn_chunks():
    entry = scenario("cache_churn")
    return list(entry.stream(seed=SEED, n_packets=N_PACKETS,
                             chunk_size=CHUNK_SIZE))


def run_columns(fabric, chunks) -> int:
    total = 0
    for cols in chunks:
        codes, _ = fabric.process_columns(
            cols, now=float(cols.times_s[0]), chunk_size=ADMISSION_CHUNK)
        total += len(codes)
    return total


def timed_pass(n_shards: int, mode: str, chunks) -> float:
    spec = default_switch_spec()
    fabric = build_fabric(spec, SEED, n_shards, mode=mode)
    try:
        start = time.perf_counter()
        total = run_columns(fabric, chunks)
        elapsed = time.perf_counter() - start
        assert total == N_PACKETS
        return elapsed
    finally:
        fabric.close()


def test_fabric_scaling_and_regression_gate():
    """4 multiprocessing shards vs one switch, core-aware floor."""
    chunks = churn_chunks()
    host_cores = os.cpu_count() or 1

    serial_s = timed_pass(1, "in_process", chunks)
    inproc_s = timed_pass(N_SHARDS, "in_process", chunks)
    mp_s = timed_pass(N_SHARDS, "multiprocessing", chunks)

    scaling_mp = serial_s / mp_s
    scaling_inproc = serial_s / inproc_s

    report = {
        "n_packets": N_PACKETS,
        "chunk_size": CHUNK_SIZE,
        "admission_chunk": ADMISSION_CHUNK,
        "n_shards": N_SHARDS,
        "host_cores": host_cores,
        "serial_s": round(serial_s, 4),
        "in_process_s": round(inproc_s, 4),
        "multiprocessing_s": round(mp_s, 4),
        "serial_pps": round(N_PACKETS / serial_s),
        "multiprocessing_pps": round(N_PACKETS / mp_s),
        "scaling_in_process": round(scaling_inproc, 3),
        "scaling_multiprocessing": round(scaling_mp, 3),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n=== fabric scaling ({N_PACKETS} packets, "
          f"{N_SHARDS} shards, {host_cores} cores) ===")
    print(f"{'mode':>16}{'wall [s]':>12}{'packets/s':>14}{'vs 1':>8}")
    print(f"{'1 switch':>16}{serial_s:>12.3f}"
          f"{N_PACKETS / serial_s:>14,.0f}{'1.00x':>8}")
    print(f"{'4 in-process':>16}{inproc_s:>12.3f}"
          f"{N_PACKETS / inproc_s:>14,.0f}{scaling_inproc:>7.2f}x")
    print(f"{'4 multiproc':>16}{mp_s:>12.3f}"
          f"{N_PACKETS / mp_s:>14,.0f}{scaling_mp:>7.2f}x")

    if host_cores >= 2:
        floor = 0.7 * min(N_SHARDS, host_cores)
        assert scaling_mp >= floor, (
            f"multiprocessing scaling collapsed: {scaling_mp:.2f}x < "
            f"0.7 * min({N_SHARDS} shards, {host_cores} cores) = "
            f"{floor:.2f}x")
    else:
        # One core: no parallel win possible; gate only against the
        # orchestration tax exploding (steering + IPC + shm should
        # stay within ~4x of the serial walk).
        assert scaling_mp >= 0.25, (
            f"single-core fabric overhead exploded: {scaling_mp:.2f}x "
            f"of serial throughput")

    baseline = json.loads(BASELINE_PATH.read_text())
    if host_cores >= 2 and baseline.get("host_cores", 1) >= 2:
        floor = 0.8 * baseline["scaling_multiprocessing"]
        assert scaling_mp >= floor, (
            f"fabric scaling regressed: {scaling_mp:.2f}x < "
            f"{floor:.2f}x (80% of baseline "
            f"{baseline['scaling_multiprocessing']:.2f}x)")
