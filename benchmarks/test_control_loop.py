"""The learned-vs-static control-loop gate (closing the paper's loop).

The paper frames pCAM programmability as the lever a *cognitive*
network function uses to hold an operator objective — here the
20ms +/- 10ms mean queueing delay of the Figure 8 experiments.  This
bench runs :func:`repro.control.gate.run_gate` on the two scenarios
whose traffic actually moves (diurnal ramp, flash crowd): the same
switch mis-programmed at 120ms is run once static and once with the
SPSA learning loop attached through the cognitive controller's
supervision tick, every candidate programming clearing the
degradation oracle's envelope gate before it lands in the tables.

Gated claims, per scenario:

* the static run's settled congested windows sit far outside the
  envelope (the misprogramming is real and unrecovered);
* the learned run's settled mean is inside 20ms +/- 10ms;
* zero envelope violations and zero degraded tables — no candidate
  ever reached a table past the oracle's objection;
* the sweep actually ran (episodes, commits) and its final
  programming is inside the learnable box.

The full comparison documents land in ``BENCH_control.json`` for the
``control-loop`` CI job to archive.
"""

import json
from pathlib import Path

import pytest

from repro.control.gate import MISPROGRAMMED_TARGET_S, run_gate
from repro.control.learning import DelayEnvelope, ProgramBounds

SCENARIOS = ("diurnal", "flash_crowd")
SEED = 0
RESULT_PATH = Path(__file__).parent / "BENCH_control.json"


@pytest.fixture(scope="module")
def gate_documents() -> dict[str, dict]:
    documents = {name: run_gate(name, seed=SEED) for name in SCENARIOS}
    report = {"seed": SEED, "scenarios": documents}
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return documents


@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_learned_loop_holds_the_envelope(gate_documents, scenario_name):
    doc = gate_documents[scenario_name]
    envelope = DelayEnvelope(**doc["envelope"])
    lower = envelope.target_s - envelope.halfwidth_s
    upper = envelope.target_s + envelope.halfwidth_s

    assert doc["settled_congested_windows"], \
        "scenario never congested after the settle point — no exam"

    static = doc["static"]["mean_congested_delay_s"]
    learned = doc["learned"]["mean_congested_delay_s"]
    print(f"\n[{scenario_name}] static {static * 1e3:.1f}ms -> "
          f"learned {learned * 1e3:.1f}ms "
          f"(envelope {lower * 1e3:.0f}-{upper * 1e3:.0f}ms)")

    # The misprogramming is real: static drifts far out of band,
    # toward the stale 120ms objective or the buffer cap.
    assert static > 2 * upper
    # The learned loop pulls the same plant inside the envelope.
    assert lower <= learned <= upper


@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_every_candidate_cleared_the_oracle(gate_documents,
                                            scenario_name):
    learned = gate_documents[scenario_name]["learned"]
    assert learned["episodes"] > 0
    assert learned["applied"] > 0
    assert learned["gate_checks"] >= learned["applied"]
    assert learned["gate_violations"] == 0
    assert learned["gate_rejections"] == 0
    assert learned["degraded_tables"] == []
    assert gate_documents[scenario_name]["static"][
        "degraded_tables"] == []

    bounds = ProgramBounds()
    target, deviation = learned["final_programming"]
    assert bounds.min_target_s <= target <= bounds.max_target_s
    assert 0.0 < deviation < target
    # The sweep moved off the misprogramming it started from.
    assert target < MISPROGRAMMED_TARGET_S / 2
