"""Ablation: pCAM match fidelity under device defects.

Sweeps the stuck-cell rate of the crossbar-realised policy array and
reports the match-probability error against the functional model —
the reliability dimension of RQ2's precision argument.
"""

import numpy as np

from repro.core.hardware_array import CrossbarPCAMArray
from repro.core.pcam_array import PCAMArray
from repro.core.pcam_cell import prog_pcam
from repro.device.faults import inject_crossbar_faults
from repro.device.variability import VariabilityModel

FIELDS = ("port", "size")
WORDS = [
    {"port": prog_pcam(0.5, 1.0, 1.5, 2.0),
     "size": prog_pcam(2.0, 2.5, 3.0, 3.5)},
    {"port": prog_pcam(2.5, 3.0, 3.5, 3.9),
     "size": prog_pcam(-1.0, -0.5, 0.0, 0.5)},
]


def sweep_fault_rates():
    functional = PCAMArray(FIELDS)
    for word in WORDS:
        functional.add(word)
    rng = np.random.default_rng(3)
    queries = [{"port": float(rng.uniform(-1.8, 3.8)),
                "size": float(rng.uniform(-1.8, 3.8))}
               for _ in range(40)]
    ideal = np.stack([functional.search(q).probabilities
                      for q in queries])

    rows = []
    for fault_rate in (0.0, 0.02, 0.05, 0.10, 0.20):
        hardware = CrossbarPCAMArray(
            FIELDS, max_words=4,
            variability=VariabilityModel.ideal(),
            rng=np.random.default_rng(7))
        for word in WORDS:
            hardware.add(word)
        inject_crossbar_faults(hardware._crossbar, fault_rate,
                               rng=np.random.default_rng(11))
        measured = np.stack([hardware.search(q).probabilities
                             for q in queries])
        error = float(np.mean(np.abs(measured - ideal)))
        worst = float(np.max(np.abs(measured - ideal)))
        rows.append((fault_rate, error, worst))
    return rows


def test_ablation_fault_tolerance(benchmark):
    rows = benchmark.pedantic(sweep_fault_rates, rounds=1, iterations=1)

    print("\n=== Stuck-cell fault sweep (crossbar pCAM array) ===")
    print(f"{'fault rate':>11}{'mean |dp|':>11}{'worst |dp|':>12}")
    for rate, error, worst in rows:
        print(f"{rate:>11.2f}{error:>11.4f}{worst:>12.4f}")

    by_rate = {rate: (error, worst) for rate, error, worst in rows}
    # A defect-free array reproduces the functional model up to DAC
    # quantization of the query voltages.
    assert by_rate[0.0][0] < 0.01
    # Degradation is graceful and monotone-ish in the fault rate.
    assert by_rate[0.02][0] <= by_rate[0.20][0]
    # Even 5% stuck cells keep the average match error moderate —
    # pCAM policies are per-word, so faults localise.
    assert by_rate[0.05][0] < 0.25
