"""Stochastic non-idealities of memristive devices.

Real memristor chips — including the Nb:SrTiO3 devices behind the
paper's dataset — exhibit three distinct randomness sources that matter
for analog match-action processing:

* **cycle-to-cycle (C2C) read noise**: successive reads of the same
  state return slightly different currents (trap occupation noise,
  thermal noise).  Modelled as multiplicative log-normal noise.
* **device-to-device (D2D) spread**: nominally identical devices have
  different resistance windows (fabrication variation).  Modelled as a
  per-device log-normal factor drawn once at construction.
* **retention drift**: a programmed state relaxes toward its stable
  attractor over time.  Modelled as exponential decay of the state
  toward ``drift_target``.

All three default to the moderate magnitudes reported for interface
type memristors; setting the sigmas to zero yields an ideal device,
which the calibration and test code uses as a reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VariabilityModel:
    """Parameters for the three noise processes.

    Parameters
    ----------
    read_sigma:
        Standard deviation of the log of the multiplicative C2C read
        noise factor.  0 disables read noise.
    device_sigma:
        Standard deviation of the log of the per-device conductance
        scale factor.  0 disables D2D spread.
    drift_rate_per_s:
        Exponential relaxation rate of the state variable [1/s].
        0 disables retention drift.
    drift_target:
        State value toward which the device relaxes.
    """

    read_sigma: float = 0.03
    device_sigma: float = 0.05
    drift_rate_per_s: float = 0.0
    drift_target: float = 0.0

    def __post_init__(self) -> None:
        for name in ("read_sigma", "device_sigma", "drift_rate_per_s"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative: {value!r}")
        if not 0.0 <= self.drift_target <= 1.0:
            raise ValueError(
                f"drift_target must be in [0, 1]: {self.drift_target!r}")

    @classmethod
    def ideal(cls) -> "VariabilityModel":
        """A noiseless, drift-free device model."""
        return cls(read_sigma=0.0, device_sigma=0.0, drift_rate_per_s=0.0)

    def sample_read_factor(self, rng: np.random.Generator) -> float:
        """One multiplicative C2C read-noise factor."""
        if self.read_sigma == 0.0:
            return 1.0
        return float(rng.lognormal(mean=0.0, sigma=self.read_sigma))

    def sample_device_factor(self, rng: np.random.Generator) -> float:
        """One multiplicative per-device conductance scale factor."""
        if self.device_sigma == 0.0:
            return 1.0
        return float(rng.lognormal(mean=0.0, sigma=self.device_sigma))

    def drift_state(self, state: float, elapsed_s: float) -> float:
        """State after ``elapsed_s`` seconds of retention drift."""
        if elapsed_s < 0:
            raise ValueError(f"elapsed time must be >= 0: {elapsed_s!r}")
        if self.drift_rate_per_s == 0.0 or elapsed_s == 0.0:
            return state
        decay = math.exp(-self.drift_rate_per_s * elapsed_s)
        return self.drift_target + (state - self.drift_target) * decay
