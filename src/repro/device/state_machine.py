"""The analog state machine of the memristor (paper Figure 2).

Figure 2 shows the property that makes memristors unique among circuit
elements: the *same* analog input yields *different* outputs depending
on the programmed initial state, and the set of reachable states can be
re-programmed at run time — effectively ``n`` selectable state machines
of ``m`` states each.

The paper formalises this as ``AnalogCompute()``::

    Output_Analog = S[y][x] * Input_Analog
        for y in 1..n   (n state machines)
        for x in 1..m   (m states inside a state machine)

This module provides that abstraction both in its ideal algebraic form
(:class:`AnalogStateMachine`) and realised on simulated devices
(:class:`DeviceStateMachine`), where each state is a programmed
memristor conductance and the multiply is performed by Ohm's law in the
analog domain — computation colocalized with storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel


@dataclass(frozen=True)
class ComputeResult:
    """Output of one analog compute step."""

    output: float
    machine: int
    state_index: int
    energy_j: float = 0.0


class AnalogStateMachine:
    """Ideal n x m analog state machine (paper Figure 2, AnalogCompute).

    Parameters
    ----------
    state_table:
        Array of shape (n, m): ``state_table[y][x]`` is the analog
        state value S of state ``x`` in machine ``y``.
    """

    def __init__(self, state_table: np.ndarray) -> None:
        table = np.asarray(state_table, dtype=float)
        if table.ndim != 2 or table.size == 0:
            raise ValueError(
                f"state_table must be a non-empty 2-D array, got shape "
                f"{table.shape}")
        self._table = table
        self._machine = 0
        self._state_index = 0

    @property
    def n_machines(self) -> int:
        """Number of selectable state machines (n)."""
        return self._table.shape[0]

    @property
    def n_states(self) -> int:
        """Number of states inside each machine (m)."""
        return self._table.shape[1]

    @property
    def machine(self) -> int:
        """Index of the currently selected state machine."""
        return self._machine

    @property
    def state_index(self) -> int:
        """Index of the current state within the selected machine."""
        return self._state_index

    @property
    def state_value(self) -> float:
        """The analog state value S currently in effect."""
        return float(self._table[self._machine, self._state_index])

    def select(self, machine: int, state_index: int = 0) -> None:
        """Switch to another state machine — Figure 2's reprogramming."""
        if not 0 <= machine < self.n_machines:
            raise IndexError(f"machine {machine} out of range "
                             f"[0, {self.n_machines})")
        if not 0 <= state_index < self.n_states:
            raise IndexError(f"state {state_index} out of range "
                             f"[0, {self.n_states})")
        self._machine = machine
        self._state_index = state_index

    def set_state(self, state_index: int) -> None:
        """Move to another state within the current machine."""
        self.select(self._machine, state_index)

    def reprogram(self, machine: int, new_states: np.ndarray) -> None:
        """Overwrite one machine's state set with new analog values.

        This models the run-time reprogrammability that Figure 2 calls
        ``Computation-n``: the same hardware realises a new state
        machine after reprogramming.
        """
        values = np.asarray(new_states, dtype=float)
        if values.shape != (self.n_states,):
            raise ValueError(
                f"expected {self.n_states} states, got shape {values.shape}")
        if not 0 <= machine < self.n_machines:
            raise IndexError(f"machine {machine} out of range")
        self._table[machine] = values

    def compute(self, analog_input: float) -> ComputeResult:
        """AnalogCompute(): Output = S[y][x] * Input."""
        return ComputeResult(output=self.state_value * analog_input,
                             machine=self._machine,
                             state_index=self._state_index)

    def transfer(self, inputs: np.ndarray) -> np.ndarray:
        """Vectorised compute over an input array (for sweeps)."""
        return self.state_value * np.asarray(inputs, dtype=float)


class DeviceStateMachine:
    """The Figure 2 state machine realised on simulated memristors.

    Each (machine, state) pair maps to a target device state; selecting
    a state programs the physical device, and :meth:`compute` performs
    the analog multiply as a read — Ohm's law ``I = G(S) * V`` — so the
    output current *is* the computation, with no data movement.

    Outputs are normalised to the LRS conductance so that a fully-on
    device computes ``1.0 * input``.
    """

    def __init__(self, state_table: np.ndarray,
                 params: MemristorParams | None = None,
                 variability: VariabilityModel | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self._ideal = AnalogStateMachine(state_table)
        table = np.asarray(state_table, dtype=float)
        if table.min() < 0.0 or table.max() > 1.0:
            raise ValueError("device state table values must lie in [0, 1]")
        self._params = params or MemristorParams()
        self._device = NbSTOMemristor(
            params=self._params,
            variability=variability or VariabilityModel.ideal(),
            rng=rng)
        self._programming_energy = 0.0
        self.select(0, 0)

    def _internal_state_for(self, s_value: float) -> float:
        """Map a Figure 2 state value to the internal device state.

        The paper's state value S is the *normalised conductance*
        (S = G / G_on, so that Output = S * Input via Ohm's law), while
        the device model interpolates resistance log-linearly in its
        internal state.  Inverting ``G(s)/G_on = S`` gives
        ``s = 1 + ln(S) / ln(r_off / r_on)``, clamped to the HRS when S
        is below the device's conductance window.
        """
        if s_value <= 0.0:
            return 0.0
        window = math.log(self._params.resistance_window)
        internal = 1.0 + math.log(s_value) / window
        return min(1.0, max(0.0, internal))

    @property
    def n_machines(self) -> int:
        """Number of selectable state machines (n)."""
        return self._ideal.n_machines

    @property
    def n_states(self) -> int:
        """Number of states inside each machine (m)."""
        return self._ideal.n_states

    @property
    def device(self) -> NbSTOMemristor:
        """The underlying simulated device."""
        return self._device

    @property
    def programming_energy_j(self) -> float:
        """Cumulative energy spent programming state transitions."""
        return self._programming_energy

    def select(self, machine: int, state_index: int = 0) -> None:
        """Select a machine/state and program the device accordingly."""
        self._ideal.select(machine, state_index)
        target = self._internal_state_for(self._ideal.state_value)
        self._programming_energy += self._device.program_state(
            target, tolerance=0.002)

    def set_state(self, state_index: int) -> None:
        """Move to another state within the current machine."""
        self.select(self._ideal.machine, state_index)

    def compute(self, analog_input: float,
                duration_s: float = 1e-9) -> ComputeResult:
        """Analog multiply by reading the device at the input voltage.

        The output is the read current normalised by the LRS conductance
        at the input voltage, so the ideal result equals
        ``state_value * input`` and deviations reflect device physics
        (nonlinearity, rectification, noise).
        """
        read = self._device.read(analog_input, duration_s)
        reference = NbSTOMemristor(params=self._params, state=1.0,
                                   variability=VariabilityModel.ideal())
        full_scale = reference.current(analog_input, noisy=False)
        if full_scale == 0.0:
            output = 0.0
        else:
            output = read.current_a / full_scale * analog_input
        return ComputeResult(output=output,
                             machine=self._ideal.machine,
                             state_index=self._ideal.state_index,
                             energy_j=read.energy_j)
