"""Synthetic measurement campaign for the Nb:SrTiO3 memristor chip.

The paper's energy analysis (Sec. 6, Table 1, Figure 7) is driven by an
*experimental dataset* of a Nb-doped SrTiO3 memristor chip measured by
Goossens et al.  That dataset is not public, so this module generates a
synthetic campaign from the behavioural device model with realistic
noise — the substitution documented in DESIGN.md.  The generator
reproduces the dataset's published marginal quantities:

* a resistance window of many decades between HRS and LRS,
* rectifying, super-linear I-V hysteresis loops,
* per-state read energies spanning 0.01 fJ/bit .. 0.16 nJ/bit at the
  1 ns reference read (the two anchors the paper reports),
* pulse-programming staircases (state vs pulse count).

Everything downstream (pCAM calibration, Table 1, Figure 7) consumes
only these tables, exactly as the paper consumes the real dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel

#: Read-pulse width used for all dataset energies (Table 1 latency row).
REFERENCE_READ_DURATION_S = 1e-9


@dataclass(frozen=True)
class SweepRecord:
    """One quasi-static I-V hysteresis sweep.

    ``voltages`` traces 0 -> +v_max -> -v_min -> 0; ``currents`` is the
    measured current at each point, with the state evolving along the
    sweep (this is what produces the hysteresis loop).
    """

    voltages: np.ndarray
    currents: np.ndarray

    def __post_init__(self) -> None:
        if self.voltages.shape != self.currents.shape:
            raise ValueError("voltages and currents must align")

    @property
    def loop_area(self) -> float:
        """Enclosed I-V loop area — a scalar signature of memristance."""
        return float(abs(np.trapezoid(self.currents, self.voltages)))


@dataclass(frozen=True)
class PulseTrainRecord:
    """Resistance staircase under a train of identical pulses."""

    pulse_voltage_v: float
    pulse_width_s: float
    resistances_ohm: np.ndarray

    @property
    def n_pulses(self) -> int:
        """Number of pulses in the staircase."""
        return len(self.resistances_ohm)


@dataclass(frozen=True)
class MemristorDataset:
    """The full synthetic measurement campaign.

    Attributes
    ----------
    states:
        Grid of programmed normalised states, ascending in conductance.
    read_voltages:
        Grid of read voltages [V]; spans the Figure 7 input ranges.
    currents_a:
        Matrix (n_states, n_voltages) of read currents [A].
    energies_j:
        Matrix (n_states, n_voltages) of read energies at the reference
        1 ns read [J].
    sweeps:
        I-V hysteresis sweeps at several amplitudes.
    pulse_trains:
        SET / RESET pulse staircases.
    params:
        Device parameters the campaign was generated with.
    """

    states: np.ndarray
    read_voltages: np.ndarray
    currents_a: np.ndarray
    energies_j: np.ndarray
    sweeps: tuple[SweepRecord, ...] = field(default=())
    pulse_trains: tuple[PulseTrainRecord, ...] = field(default=())
    params: MemristorParams = field(default_factory=MemristorParams)

    def __post_init__(self) -> None:
        expected = (len(self.states), len(self.read_voltages))
        if self.currents_a.shape != expected:
            raise ValueError(
                f"currents_a shape {self.currents_a.shape} != {expected}")
        if self.energies_j.shape != expected:
            raise ValueError(
                f"energies_j shape {self.energies_j.shape} != {expected}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def current_at(self, state: float, voltage_v: float) -> float:
        """Bilinear interpolation of the current table [A]."""
        row = self._interp_rows(voltage_v)
        return float(np.interp(state, self.states, row))

    def energy_at(self, state: float, voltage_v: float) -> float:
        """Bilinear interpolation of the read-energy table [J]."""
        current = self.current_at(state, voltage_v)
        return abs(voltage_v * current) * REFERENCE_READ_DURATION_S

    def currents_at_voltage(self, voltage_v: float) -> np.ndarray:
        """Current vs state, interpolated at one read voltage [A]."""
        return self._interp_rows(voltage_v)

    def _interp_rows(self, voltage_v: float) -> np.ndarray:
        """Current as a function of state, interpolated at one voltage."""
        v = self.read_voltages
        if voltage_v <= v[0]:
            return self.currents_a[:, 0]
        if voltage_v >= v[-1]:
            return self.currents_a[:, -1]
        idx = int(np.searchsorted(v, voltage_v)) - 1
        frac = (voltage_v - v[idx]) / (v[idx + 1] - v[idx])
        return ((1.0 - frac) * self.currents_a[:, idx]
                + frac * self.currents_a[:, idx + 1])

    @property
    def resistance_window(self) -> float:
        """Measured r_off / r_on at the reference read voltage."""
        reference_col = int(np.argmin(
            np.abs(self.read_voltages - self.params.v_reference)))
        column = self.currents_a[:, reference_col]
        positive = column[column > 0]
        if len(positive) < 2:
            raise ValueError("dataset lacks positive reference currents")
        return float(positive.max() / positive.min())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the campaign tables to a ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            states=self.states,
            read_voltages=self.read_voltages,
            currents_a=self.currents_a,
            energies_j=self.energies_j,
        )

    @classmethod
    def load(cls, path: str | Path,
             params: MemristorParams | None = None) -> "MemristorDataset":
        """Load campaign tables saved by :meth:`save`."""
        with np.load(Path(path)) as archive:
            return cls(states=archive["states"],
                       read_voltages=archive["read_voltages"],
                       currents_a=archive["currents_a"],
                       energies_j=archive["energies_j"],
                       params=params or MemristorParams())


def generate_dataset(n_states: int = 64,
                     v_min: float = -2.0,
                     v_max: float = 4.0,
                     n_voltages: int = 121,
                     params: MemristorParams | None = None,
                     variability: VariabilityModel | None = None,
                     seed: int | None = 7,
                     include_sweeps: bool = True,
                     include_pulse_trains: bool = True) -> MemristorDataset:
    """Run the synthetic measurement campaign.

    Programs a device to each state on the grid, reads it at every
    voltage on the grid, and records currents and 1 ns read energies.
    The voltage grid spans [-2, 4] V by default, covering both Figure 7
    input ranges ([1, 4] V and [-2, 1] V).
    """
    if n_states < 2:
        raise ValueError(f"need at least 2 states: {n_states!r}")
    if n_voltages < 2:
        raise ValueError(f"need at least 2 voltages: {n_voltages!r}")
    if v_min >= v_max:
        raise ValueError(f"v_min must be below v_max: {v_min}, {v_max}")
    device_params = params or MemristorParams()
    noise = variability if variability is not None else VariabilityModel(
        read_sigma=0.02, device_sigma=0.0)
    rng = np.random.default_rng(seed)

    states = np.linspace(0.0, 1.0, n_states)
    read_voltages = np.linspace(v_min, v_max, n_voltages)
    currents = np.zeros((n_states, n_voltages))
    for i, state in enumerate(states):
        device = NbSTOMemristor(params=device_params, state=float(state),
                                variability=noise, rng=rng)
        for j, voltage in enumerate(read_voltages):
            currents[i, j] = device.current(float(voltage), noisy=True)
    energies = (np.abs(read_voltages[None, :] * currents)
                * REFERENCE_READ_DURATION_S)

    sweeps: list[SweepRecord] = []
    if include_sweeps:
        for amplitude in (2.0, 3.0, 4.0):
            sweeps.append(_measure_sweep(device_params, noise, rng,
                                         amplitude))
    trains: list[PulseTrainRecord] = []
    if include_pulse_trains:
        trains.append(_measure_pulse_train(device_params, rng,
                                           voltage=1.5, start_state=0.0))
        trains.append(_measure_pulse_train(device_params, rng,
                                           voltage=-1.5, start_state=1.0))

    return MemristorDataset(states=states,
                            read_voltages=read_voltages,
                            currents_a=currents,
                            energies_j=energies,
                            sweeps=tuple(sweeps),
                            pulse_trains=tuple(trains),
                            params=device_params)


def _measure_sweep(params: MemristorParams, noise: VariabilityModel,
                   rng: np.random.Generator,
                   amplitude_v: float, points_per_leg: int = 50,
                   dwell_s: float = 50e-9) -> SweepRecord:
    """Trace one 0 -> +A -> -A -> 0 quasi-static hysteresis loop."""
    up = np.linspace(0.0, amplitude_v, points_per_leg)
    down = np.linspace(amplitude_v, -amplitude_v, 2 * points_per_leg)
    back = np.linspace(-amplitude_v, 0.0, points_per_leg)
    voltages = np.concatenate([up, down[1:], back[1:]])
    device = NbSTOMemristor(params=params, state=0.3, variability=noise,
                            rng=rng)
    currents = np.empty_like(voltages)
    for idx, voltage in enumerate(voltages):
        currents[idx] = device.current(float(voltage), noisy=True)
        # Dwelling at each sweep point lets the state move — this is
        # what opens the hysteresis loop.
        if abs(voltage) > params.v_threshold:
            device.apply_pulse(float(voltage), dwell_s, substeps=4)
    return SweepRecord(voltages=voltages, currents=currents)


def _measure_pulse_train(params: MemristorParams,
                         rng: np.random.Generator,
                         voltage: float, start_state: float,
                         n_pulses: int = 40,
                         width_s: float = 1e-9) -> PulseTrainRecord:
    """Record the resistance staircase under identical pulses."""
    device = NbSTOMemristor(params=params, state=start_state,
                            variability=VariabilityModel.ideal(), rng=rng)
    resistances = np.empty(n_pulses)
    for idx in range(n_pulses):
        device.apply_pulse(voltage, width_s)
        resistances[idx] = device.resistance()
    return PulseTrainRecord(pulse_voltage_v=voltage, pulse_width_s=width_s,
                            resistances_ohm=resistances)
