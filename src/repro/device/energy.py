"""Read-energy extraction from the memristor dataset (paper Sec. 6).

The paper's headline energy claim is extracted from the chip dataset:

    "pCAM has maximum power consumption of 0.16 nJ/bit/cell.  However,
    pCAM also provides a range of states which show very low energy
    consumption.  The lowest energy consumption states require only
    about 0.01 fJ/bit/cell."

This module computes exactly those statistics over a
:class:`~repro.device.dataset.MemristorDataset` and the >= 50x
comparison against the best digital design of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.dataset import REFERENCE_READ_DURATION_S, MemristorDataset
from repro.energy.units import joules_to_femtojoules, joules_to_nanojoules

#: Best published digital figure in Table 1 (Arsovski et al. [2]),
#: in joules per bit per search: 0.58 fJ/bit.
BEST_DIGITAL_ENERGY_J_PER_BIT = 0.58e-15


@dataclass(frozen=True)
class EnergyStatistics:
    """Summary of per-read energies over the dataset's state space."""

    min_j: float
    max_j: float
    mean_j: float
    median_j: float
    decades: float

    @property
    def min_fj(self) -> float:
        """Minimum read energy in fJ/bit/cell (paper: ~0.01 fJ)."""
        return joules_to_femtojoules(self.min_j)

    @property
    def max_nj(self) -> float:
        """Maximum read energy in nJ/bit/cell (paper: ~0.16 nJ)."""
        return joules_to_nanojoules(self.max_j)

    def improvement_over_digital(
            self,
            digital_j_per_bit: float = BEST_DIGITAL_ENERGY_J_PER_BIT
    ) -> float:
        """Energy improvement factor of the *lowest-energy* analog
        states over a digital reference (paper: at least 50x)."""
        if self.min_j <= 0:
            raise ValueError("dataset contains non-positive read energy")
        return digital_j_per_bit / self.min_j


def energy_statistics(dataset: MemristorDataset,
                      search_voltage_v: float | None = None
                      ) -> EnergyStatistics:
    """Per-state read energies at the chip's search condition.

    The paper's 0.16 nJ / 0.01 fJ extremes are the energies of the
    *states* under the standard search read — i.e. the range of the
    per-state energy as the programmed state varies, at a fixed read
    voltage.  ``search_voltage_v`` defaults to the device's reference
    read voltage.
    """
    voltage = (dataset.params.v_reference if search_voltage_v is None
               else search_voltage_v)
    if voltage == 0.0:
        raise ValueError("search voltage must be non-zero")
    currents = dataset.currents_at_voltage(voltage)
    energies = np.abs(voltage * currents) * REFERENCE_READ_DURATION_S
    energies = energies[energies > 0.0]
    if energies.size == 0:
        raise ValueError("dataset contains no dissipating reads")
    return _stats_from(energies)


def energy_statistics_all_reads(dataset: MemristorDataset,
                                positive_reads_only: bool = False
                                ) -> EnergyStatistics:
    """Read-energy statistics over the full (state, voltage) grid.

    Zero-voltage reads dissipate nothing and are excluded (they would
    make the minimum trivially zero).  With ``positive_reads_only`` the
    reverse-bias reads are excluded too, matching a campaign that only
    searches with positive queries.
    """
    voltages = dataset.read_voltages
    mask = voltages != 0.0
    if positive_reads_only:
        mask &= voltages > 0.0
    energies = dataset.energies_j[:, mask]
    energies = energies[energies > 0.0]
    if energies.size == 0:
        raise ValueError("dataset contains no dissipating reads")
    return _stats_from(energies)


def _stats_from(energies: np.ndarray) -> EnergyStatistics:
    min_j = float(energies.min())
    max_j = float(energies.max())
    return EnergyStatistics(
        min_j=min_j,
        max_j=max_j,
        mean_j=float(energies.mean()),
        median_j=float(np.median(energies)),
        decades=float(np.log10(max_j / min_j)),
    )


def energy_histogram(dataset: MemristorDataset,
                     bins_per_decade: int = 2
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced histogram of read energies (counts, bin edges in J).

    Useful for showing that the state space is rich in low-energy
    states, which is the basis of the paper's efficiency argument.
    """
    if bins_per_decade < 1:
        raise ValueError(f"bins_per_decade must be >= 1: {bins_per_decade!r}")
    energies = dataset.energies_j[dataset.energies_j > 0.0]
    lo = np.floor(np.log10(energies.min()))
    hi = np.ceil(np.log10(energies.max()))
    n_bins = int((hi - lo) * bins_per_decade)
    edges = np.logspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(energies, bins=edges)
    return counts, edges
