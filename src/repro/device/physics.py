"""Schottky-interface physics for the Nb-doped SrTiO3 memristor.

The memristive behaviour of Nb:SrTiO3 arises at the Schottky interface
between a metal contact and the doped semiconductor (Goossens et al.,
J. Appl. Phys. 2018; Appl. Phys. Lett. 2023).  Charge trapping and
oxygen-vacancy migration modulate the effective Schottky barrier
height, which moves the device between a low-resistance state (LRS)
and a high-resistance state (HRS) spanning many decades of resistance.

This module provides the electrostatic building blocks used by
:mod:`repro.device.memristor`:

* thermionic-emission current over a Schottky barrier,
* image-force barrier lowering,
* the state-to-barrier mapping used by the device model.

All quantities are SI.  The model is behavioural, not ab-initio: the
constants are chosen so that the simulated chip reproduces the
magnitudes the paper extracts from the real dataset (resistance window
1e2..1.6e9 ohm, read energies 0.01 fJ/bit .. 0.16 nJ/bit at 1 ns reads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19
#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23
#: Effective Richardson constant for SrTiO3 [A m^-2 K^-2].
#: (A** = 156 A cm^-2 K^-2 reported for Nb:STO; converted to SI.)
RICHARDSON_SRTIO3 = 156.0e4
#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY = 8.8541878128e-12
#: Static relative permittivity of SrTiO3 at room temperature.
RELATIVE_PERMITTIVITY_SRTIO3 = 300.0
#: Default operating temperature [K].
ROOM_TEMPERATURE = 293.15


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """kT/q, the thermal voltage at ``temperature_k`` [V]."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive: {temperature_k!r}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


@dataclass(frozen=True)
class SchottkyJunction:
    """A Schottky barrier characterised by height, ideality and area.

    Parameters
    ----------
    barrier_ev:
        Zero-bias barrier height in electron-volts.
    ideality:
        Diode ideality factor ``n`` (>= 1).
    area_m2:
        Junction area in square metres.
    series_resistance_ohm:
        Ohmic series resistance of the bulk / electrodes, which caps the
        current at strong forward bias.
    temperature_k:
        Operating temperature in kelvin.
    """

    barrier_ev: float
    ideality: float = 1.5
    area_m2: float = 100e-12  # 10 um x 10 um contact
    series_resistance_ohm: float = 100.0
    temperature_k: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.barrier_ev <= 0:
            raise ValueError(f"barrier must be positive: {self.barrier_ev!r}")
        if self.ideality < 1.0:
            raise ValueError(f"ideality must be >= 1: {self.ideality!r}")
        if self.area_m2 <= 0:
            raise ValueError(f"area must be positive: {self.area_m2!r}")

    @property
    def saturation_current(self) -> float:
        """Reverse saturation current I_s of thermionic emission [A]."""
        kt = BOLTZMANN * self.temperature_k
        barrier_j = self.barrier_ev * ELEMENTARY_CHARGE
        return (RICHARDSON_SRTIO3 * self.area_m2
                * self.temperature_k ** 2 * math.exp(-barrier_j / kt))

    def current(self, voltage_v: float) -> float:
        """Thermionic-emission current at applied bias [A].

        Uses the diode equation ``I = I_s (exp(qV'/nkT) - 1)`` where
        ``V'`` is the junction voltage after subtracting the series
        resistance drop.  The implicit series-resistance equation is
        solved with a few fixed-point iterations, which converges
        quickly for the resistance regime of this device.
        """
        if voltage_v == 0.0:
            return 0.0
        vt = thermal_voltage(self.temperature_k) * self.ideality
        i_s = self.saturation_current
        if voltage_v < 0.0:
            # Reverse bias: the series drop is negligible against the
            # junction; current saturates at -I_s.
            return i_s * math.expm1(max(voltage_v / vt, -200.0))

        def residual(current: float) -> float:
            v_junction = voltage_v - current * self.series_resistance_ohm
            exponent = min(v_junction / vt, 200.0)
            return i_s * math.expm1(exponent) - current

        # residual() is monotone decreasing in I with a sign change on
        # [0, V/Rs]; bisection is unconditionally robust here.
        lo, hi = 0.0, voltage_v / self.series_resistance_ohm
        if residual(hi) > 0.0:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if residual(mid) > 0.0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def differential_resistance(self, voltage_v: float,
                                delta_v: float = 1e-3) -> float:
        """Small-signal resistance dV/dI around ``voltage_v`` [ohm]."""
        i_hi = self.current(voltage_v + delta_v)
        i_lo = self.current(voltage_v - delta_v)
        di = i_hi - i_lo
        if di == 0:
            return math.inf
        return 2.0 * delta_v / di


def image_force_lowering(field_v_per_m: float) -> float:
    """Schottky barrier lowering under an electric field [eV].

    ``dPhi = sqrt(q E / (4 pi eps))`` — responsible for the voltage
    dependence of the effective barrier, hence the nonlinearity of the
    device's I-V characteristic.
    """
    if field_v_per_m < 0:
        raise ValueError(f"field must be non-negative: {field_v_per_m!r}")
    eps = VACUUM_PERMITTIVITY * RELATIVE_PERMITTIVITY_SRTIO3
    lowering_j = math.sqrt(
        ELEMENTARY_CHARGE ** 3 * field_v_per_m / (4.0 * math.pi * eps))
    return lowering_j / ELEMENTARY_CHARGE


def barrier_for_state(state: float, barrier_lrs_ev: float,
                      barrier_hrs_ev: float) -> float:
    """Effective barrier height for a normalised memristive state.

    ``state`` in [0, 1] interpolates the barrier between the HRS value
    (state 0) and the LRS value (state 1).  The interpolation is linear
    in barrier height, which makes the resistance exponential in state
    — matching the decades-wide resistance window of the real chip.
    """
    if not 0.0 <= state <= 1.0:
        raise ValueError(f"state must be in [0, 1]: {state!r}")
    return barrier_hrs_ev + (barrier_lrs_ev - barrier_hrs_ev) * state
