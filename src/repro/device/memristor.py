"""Behavioural model of the Nb-doped SrTiO3 memristor.

The device is the substrate of every analog computation in this
reproduction: a non-volatile, programmable resistor whose conductance
spans many decades between a high-resistance state (HRS) and a
low-resistance state (LRS).

The model has three ingredients:

1. **Static conductance law.**  The internal state ``s`` in [0, 1]
   interpolates the resistance *exponentially* between ``r_off`` (HRS,
   s = 0) and ``r_on`` (LRS, s = 1), matching the decades-wide window of
   the Schottky-interface device.  The I-V curve is rectifying and
   super-linear in forward bias (image-force barrier lowering), and
   strongly suppressed in reverse bias.
2. **Pulse-programming dynamics.**  Voltage pulses above a threshold
   move the state with a sinh() drive and a soft window function — the
   standard behavioural form for interface-type memristive switching.
3. **Stochastic non-idealities** from
   :class:`repro.device.variability.VariabilityModel`.

Anchoring: at the reference read condition (4 V, 1 ns) the default
parameters reproduce the paper's extreme read energies exactly —
0.16 nJ/bit for the LRS and 0.01 fJ/bit for the HRS (Sec. 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.device.variability import VariabilityModel


@dataclass(frozen=True)
class MemristorParams:
    """Static and dynamic parameters of the device model.

    Default values anchor the simulated chip to the energy figures the
    paper reports for the Nb:SrTiO3 dataset.
    """

    #: LRS resistance at the reference read voltage [ohm].
    r_on: float = 100.0
    #: HRS resistance at the reference read voltage [ohm].
    r_off: float = 1.6e9
    #: Reference read voltage at which r_on / r_off are defined [V].
    v_reference: float = 4.0
    #: Forward-bias super-linearity coefficient [1/V].  0 = ohmic.
    forward_gamma: float = 0.45
    #: Reverse-bias rectification ratio (reverse current suppression).
    rectification: float = 0.02
    #: Minimum voltage magnitude that moves the state [V].
    v_threshold: float = 1.0
    #: State-motion rate prefactor [1/s].
    k_program: float = 2.0e8
    #: Characteristic voltage of the sinh() programming drive [V].
    v_characteristic: float = 1.2
    #: Window exponent for soft state saturation.
    window_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.r_on <= 0 or self.r_off <= 0:
            raise ValueError("resistances must be positive")
        if self.r_off <= self.r_on:
            raise ValueError(
                f"r_off ({self.r_off}) must exceed r_on ({self.r_on})")
        if self.v_reference <= 0:
            raise ValueError("reference voltage must be positive")
        if not 0 <= self.rectification <= 1:
            raise ValueError("rectification must be in [0, 1]")

    @property
    def resistance_window(self) -> float:
        """r_off / r_on — the dynamic range of the device."""
        return self.r_off / self.r_on


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a single read operation."""

    voltage_v: float
    current_a: float
    duration_s: float

    @property
    def energy_j(self) -> float:
        """Dissipated energy ``|V * I| * t`` for this read [J]."""
        return abs(self.voltage_v * self.current_a) * self.duration_s

    @property
    def power_w(self) -> float:
        """Instantaneous dissipated power [W]."""
        return abs(self.voltage_v * self.current_a)


class NbSTOMemristor:
    """A single simulated Nb:SrTiO3 memristive junction.

    Parameters
    ----------
    params:
        Device parameters; defaults anchor the paper's energy figures.
    state:
        Initial normalised state in [0, 1] (0 = HRS, 1 = LRS).
    variability:
        Noise model; defaults to moderate realistic noise.  Use
        :meth:`VariabilityModel.ideal` for deterministic behaviour.
    rng:
        Random generator for the noise processes.  Pass a seeded
        generator for reproducible experiments.
    """

    def __init__(self, params: MemristorParams | None = None,
                 state: float = 0.0,
                 variability: VariabilityModel | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.params = params or MemristorParams()
        self.variability = variability or VariabilityModel()
        self._rng = rng or np.random.default_rng()
        self._device_factor = self.variability.sample_device_factor(self._rng)
        self._state = 0.0
        self.state = state  # validated through the property setter
        self._reads = 0
        self._pulses = 0

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    @property
    def state(self) -> float:
        """Normalised memristive state in [0, 1]."""
        return self._state

    @state.setter
    def state(self, value: float) -> None:
        """Normalised memristive state in [0, 1] (0 = HRS, 1 = LRS)."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"state must be in [0, 1]: {value!r}")
        self._state = float(value)

    @property
    def reads(self) -> int:
        """Number of read operations performed."""
        return self._reads

    @property
    def pulses(self) -> int:
        """Number of programming pulses applied."""
        return self._pulses

    # ------------------------------------------------------------------
    # Static electrical behaviour
    # ------------------------------------------------------------------
    def resistance(self) -> float:
        """Resistance at the reference read voltage for the current state.

        Exponential (log-linear) interpolation between HRS and LRS,
        scaled by the per-device fabrication factor.
        """
        p = self.params
        log_r = (math.log(p.r_off)
                 + self._state * (math.log(p.r_on) - math.log(p.r_off)))
        return math.exp(log_r) / self._device_factor

    def conductance(self) -> float:
        """Conductance at the reference read voltage [S]."""
        return 1.0 / self.resistance()

    def current(self, voltage_v: float, *, noisy: bool = False) -> float:
        """Current through the device at ``voltage_v`` [A].

        Forward bias (v > 0) is super-linear:
        ``I = G * v * exp(gamma * (v - v_ref))``, normalised so that at
        the reference voltage the device presents exactly its nominal
        resistance.  Reverse bias is suppressed by the rectification
        ratio, modelling the Schottky diode behaviour of the junction.
        """
        if voltage_v == 0.0:
            return 0.0
        p = self.params
        conductance = self.conductance()
        magnitude = abs(voltage_v)
        shape = math.exp(p.forward_gamma * (magnitude - p.v_reference))
        current = conductance * magnitude * shape
        if voltage_v < 0:
            current *= p.rectification
        if noisy:
            current *= self.variability.sample_read_factor(self._rng)
        return math.copysign(current, voltage_v)

    def read(self, voltage_v: float, duration_s: float = 1e-9, *,
             noisy: bool = True) -> ReadResult:
        """Perform a read pulse and return current plus dissipated energy.

        Reads are non-destructive: the read voltage is assumed below the
        programming threshold in magnitude or too short to move state
        appreciably (true for 1 ns reads on this device).
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s!r}")
        current = self.current(voltage_v, noisy=noisy)
        self._reads += 1
        return ReadResult(voltage_v=voltage_v, current_a=current,
                          duration_s=duration_s)

    # ------------------------------------------------------------------
    # Programming dynamics
    # ------------------------------------------------------------------
    def _window(self, drive_positive: bool) -> float:
        """Soft saturation window: motion slows near the state rails."""
        p = self.params
        if drive_positive:
            return (1.0 - self._state) ** p.window_exponent
        return self._state ** p.window_exponent

    def state_velocity(self, voltage_v: float) -> float:
        """ds/dt at the given applied voltage [1/s].

        Zero below the programming threshold; otherwise a sinh() drive
        scaled by the saturation window.  Positive voltage moves the
        device toward the LRS (s -> 1), negative toward the HRS.
        """
        p = self.params
        magnitude = abs(voltage_v)
        if magnitude <= p.v_threshold:
            return 0.0
        overdrive = (magnitude - p.v_threshold) / p.v_characteristic
        rate = p.k_program * math.sinh(overdrive)
        rate *= self._window(drive_positive=voltage_v > 0)
        return math.copysign(rate, voltage_v)

    def apply_pulse(self, voltage_v: float, width_s: float,
                    substeps: int = 32) -> float:
        """Apply a programming pulse; returns the dissipated energy [J].

        Integrates the state equation with explicit Euler substeps and
        charges the Joule energy of the pulse at the *average* of the
        start and end conductances (trapezoid approximation).
        """
        if width_s <= 0:
            raise ValueError(f"pulse width must be positive: {width_s!r}")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1: {substeps!r}")
        current_start = abs(self.current(voltage_v))
        dt = width_s / substeps
        for _ in range(substeps):
            velocity = self.state_velocity(voltage_v)
            if velocity == 0.0:
                break
            self._state = min(1.0, max(0.0, self._state + velocity * dt))
        current_end = abs(self.current(voltage_v))
        self._pulses += 1
        average_power = abs(voltage_v) * 0.5 * (current_start + current_end)
        return average_power * width_s

    def program_state(self, target: float, *, tolerance: float = 0.01,
                      max_pulses: int = 200,
                      pulse_width_s: float = 10e-9) -> float:
        """Closed-loop program-and-verify to ``target`` state.

        Applies set/reset pulses with amplitude proportional to the
        remaining error until the state is within ``tolerance`` of the
        target.  Returns the total programming energy [J].

        Raises :class:`RuntimeError` if the loop does not converge
        within ``max_pulses`` — on the real chip this signals a stuck
        device.
        """
        if not 0.0 <= target <= 1.0:
            raise ValueError(f"target must be in [0, 1]: {target!r}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive: {tolerance!r}")
        p = self.params
        energy = 0.0
        for _ in range(max_pulses):
            error = target - self._state
            if abs(error) <= tolerance:
                return energy
            # Overdrive grows with remaining error but stays gentle to
            # avoid overshoot near the target.
            overdrive = p.v_characteristic * min(1.0, 4.0 * abs(error))
            amplitude = p.v_threshold + max(0.05, overdrive)
            voltage = math.copysign(amplitude, error)
            # Adaptive pulse width: aim to cover ~60% of the remaining
            # error per pulse given the predicted state velocity.  This
            # compensates the saturation window slowing motion near the
            # rails, and prevents overshoot near the target.
            velocity = abs(self.state_velocity(voltage))
            if velocity > 0.0:
                width = min(100.0 * pulse_width_s,
                            max(1e-12, 0.6 * abs(error) / velocity))
            else:
                width = pulse_width_s
            energy += self.apply_pulse(voltage, width)
        raise RuntimeError(
            f"program_state did not converge to {target} "
            f"(state={self._state:.4f}) within {max_pulses} pulses")

    def relax(self, elapsed_s: float) -> None:
        """Apply retention drift for ``elapsed_s`` seconds."""
        self._state = self.variability.drift_state(self._state, elapsed_s)

    def __repr__(self) -> str:
        return (f"NbSTOMemristor(state={self._state:.3f}, "
                f"resistance={self.resistance():.3e} ohm)")
