"""Memristor device substrate: physics, device model, dataset, energy.

Implements the Nb-doped SrTiO3 memristor the paper builds on, plus the
synthetic measurement campaign substituting for the (non-public)
experimental chip dataset.  See DESIGN.md section 2 for the
substitution rationale.
"""

from repro.device.dataset import (
    MemristorDataset,
    PulseTrainRecord,
    REFERENCE_READ_DURATION_S,
    SweepRecord,
    generate_dataset,
)
from repro.device.faults import (
    FaultType,
    FaultyMemristor,
    inject_crossbar_faults,
)
from repro.device.energy import (
    BEST_DIGITAL_ENERGY_J_PER_BIT,
    EnergyStatistics,
    energy_histogram,
    energy_statistics,
)
from repro.device.memristor import MemristorParams, NbSTOMemristor, ReadResult
from repro.device.physics import (
    SchottkyJunction,
    barrier_for_state,
    image_force_lowering,
    thermal_voltage,
)
from repro.device.state_machine import (
    AnalogStateMachine,
    ComputeResult,
    DeviceStateMachine,
)
from repro.device.variability import VariabilityModel

__all__ = [
    "AnalogStateMachine",
    "BEST_DIGITAL_ENERGY_J_PER_BIT",
    "ComputeResult",
    "DeviceStateMachine",
    "EnergyStatistics",
    "FaultType",
    "FaultyMemristor",
    "inject_crossbar_faults",
    "MemristorDataset",
    "MemristorParams",
    "NbSTOMemristor",
    "PulseTrainRecord",
    "REFERENCE_READ_DURATION_S",
    "ReadResult",
    "SchottkyJunction",
    "SweepRecord",
    "VariabilityModel",
    "barrier_for_state",
    "energy_histogram",
    "energy_statistics",
    "generate_dataset",
    "image_force_lowering",
    "thermal_voltage",
]
