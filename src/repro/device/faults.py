"""Device fault injection.

Real memristor arrays ship with defects: cells stuck in the HRS or
LRS (forming failures), and cells whose state drifts or programs
imprecisely.  This module wraps the device and crossbar models with
injectable faults so the robustness of the analog match process can
be quantified — the reliability face of RQ2.

Fault sampling is **seedable** — every random draw comes from a
caller-supplied :class:`numpy.random.Generator` — and **composable**:
a :class:`FaultyMemristor` accepts any non-conflicting set of
:class:`FaultType` members, and :class:`CrossbarFaultPlan` instances
merge with ``|`` so independently sampled defect populations can be
overlaid on one array.  Functional (transfer-function-level) fault
models for pCAM cells live in :mod:`repro.robustness.models`; this
module is the physical-device layer beneath them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.device.memristor import NbSTOMemristor

if TYPE_CHECKING:  # avoid a device <-> crossbar import cycle
    from repro.crossbar.array import Crossbar

__all__ = ["CrossbarFaultPlan", "FaultType", "FaultyMemristor",
           "apply_fault_mask", "inject_crossbar_faults"]


class FaultType(enum.Enum):
    """Defect classes observed in memristive arrays."""

    #: Cell permanently in the high-resistance state.
    STUCK_OFF = "stuck_off"
    #: Cell permanently in the low-resistance state.
    STUCK_ON = "stuck_on"
    #: Cell programs, but lands far from the target (loose forming).
    IMPRECISE = "imprecise"


class FaultyMemristor(NbSTOMemristor):
    """A memristor with one or more injected defects.

    ``fault`` may be a single :class:`FaultType` or any iterable of
    them: ``STUCK_OFF`` / ``STUCK_ON`` pin the state regardless of
    programming (and are mutually exclusive); ``IMPRECISE`` multiplies
    every programming target's error tolerance by
    ``imprecision_factor``.  When a stuck fault is combined with
    ``IMPRECISE`` the stuck fault dominates — a pinned cell never
    programs, loosely or otherwise.

    Pass a seeded ``rng`` for reproducible noise, matching the
    generator discipline of the rest of the device layer.
    """

    def __init__(self, fault: FaultType | Iterable[FaultType], *args,
                 imprecision_factor: float = 20.0,
                 rng: np.random.Generator | None = None, **kwargs) -> None:
        super().__init__(*args, rng=rng, **kwargs)
        faults = (frozenset([fault]) if isinstance(fault, FaultType)
                  else frozenset(fault))
        if not faults:
            raise ValueError("need at least one fault type")
        if {FaultType.STUCK_OFF, FaultType.STUCK_ON} <= faults:
            raise ValueError(
                "a cell cannot be stuck at both rails at once")
        self.faults = faults
        if imprecision_factor < 1.0:
            raise ValueError(
                f"imprecision factor must be >= 1: {imprecision_factor!r}")
        self.imprecision_factor = imprecision_factor
        if FaultType.STUCK_OFF in faults:
            self._state = 0.0
        elif FaultType.STUCK_ON in faults:
            self._state = 1.0

    @property
    def fault(self) -> FaultType:
        """The dominant fault (stuck faults outrank imprecision).

        Retained for callers written against the single-fault API.
        """
        for dominant in (FaultType.STUCK_OFF, FaultType.STUCK_ON,
                         FaultType.IMPRECISE):
            if dominant in self.faults:
                return dominant
        raise AssertionError("unreachable: fault set is never empty")

    @property
    def _stuck(self) -> bool:
        return (FaultType.STUCK_OFF in self.faults
                or FaultType.STUCK_ON in self.faults)

    def apply_pulse(self, voltage_v: float, width_s: float,
                    substeps: int = 32) -> float:
        """Pulse the device; stuck cells dissipate but do not move."""
        if self._stuck:
            # The pulse dissipates energy but moves nothing.
            current = abs(self.current(voltage_v))
            self._pulses += 1
            return abs(voltage_v) * current * width_s
        return super().apply_pulse(voltage_v, width_s, substeps)

    def program_state(self, target: float, *, tolerance: float = 0.01,
                      max_pulses: int = 200,
                      pulse_width_s: float = 10e-9) -> float:
        """Program-and-verify, honouring the injected defects."""
        if self._stuck:
            # Program-and-verify gives up after max_pulses on a stuck
            # cell; model the bounded energy of that attempt.
            if abs(target - self._state) <= tolerance:
                return 0.0
            current = abs(self.current(self.params.v_threshold + 0.5))
            return (max_pulses * abs(self.params.v_threshold + 0.5)
                    * current * pulse_width_s)
        if FaultType.IMPRECISE in self.faults:
            tolerance = tolerance * self.imprecision_factor
        return super().program_state(target, tolerance=min(0.49, tolerance),
                                     max_pulses=max_pulses,
                                     pulse_width_s=pulse_width_s)


@dataclass(frozen=True)
class CrossbarFaultPlan:
    """A sampled population of stuck cells for one crossbar geometry.

    ``mask`` marks the faulted crossings and ``values`` holds the
    conductance each one is pinned at.  Plans are immutable; merge two
    with ``|`` (the right-hand plan wins where the populations
    overlap) and install the result with
    :meth:`repro.crossbar.array.Crossbar.install_fault_plan`, which
    re-pins the cells inside every subsequent programming pass.
    """

    mask: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.mask.shape != self.values.shape:
            raise ValueError(
                f"mask shape {self.mask.shape} != "
                f"values shape {self.values.shape}")
        if self.mask.dtype != np.bool_:
            raise ValueError("mask must be boolean")

    @property
    def shape(self) -> tuple[int, ...]:
        """Geometry the plan was sampled for."""
        return self.mask.shape

    @property
    def n_faults(self) -> int:
        """Number of pinned crossings."""
        return int(np.count_nonzero(self.mask))

    @classmethod
    def sample(cls, shape: tuple[int, int], fault_rate: float,
               rng: np.random.Generator,
               conductance_bounds: tuple[float, float],
               stuck_on_fraction: float = 0.5) -> "CrossbarFaultPlan":
        """Draw a stuck-cell population from a seeded generator."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(
                f"fault rate must be in [0, 1]: {fault_rate!r}")
        if not 0.0 <= stuck_on_fraction <= 1.0:
            raise ValueError("stuck-on fraction must be in [0, 1]")
        g_min, g_max = conductance_bounds
        mask = rng.random(shape) < fault_rate
        stuck_on = mask & (rng.random(shape) < stuck_on_fraction)
        values = np.where(stuck_on, g_max, g_min)
        values[~mask] = 0.0
        return cls(mask=mask, values=values)

    def pin(self, conductances: np.ndarray) -> np.ndarray:
        """A copy of ``conductances`` with the faulted cells pinned."""
        if conductances.shape != self.shape:
            raise ValueError(
                f"conductance shape {conductances.shape} != {self.shape}")
        pinned = np.array(conductances, dtype=float, copy=True)
        pinned[self.mask] = self.values[self.mask]
        return pinned

    def __or__(self, other: "CrossbarFaultPlan") -> "CrossbarFaultPlan":
        """Overlay two plans; ``other`` wins on overlapping cells."""
        if other.shape != self.shape:
            raise ValueError(
                f"cannot compose plans of shapes {self.shape} "
                f"and {other.shape}")
        mask = self.mask | other.mask
        values = self.values.copy()
        values[other.mask] = other.values[other.mask]
        return CrossbarFaultPlan(mask=mask, values=values)


def inject_crossbar_faults(crossbar: "Crossbar", fault_rate: float,
                           rng: np.random.Generator,
                           stuck_on_fraction: float = 0.5
                           ) -> np.ndarray:
    """Pin a random fraction of a crossbar's cells at the rails.

    Samples a :class:`CrossbarFaultPlan` from the seeded generator and
    installs it on the crossbar, so the pins persist automatically
    through every later :meth:`~repro.crossbar.array.Crossbar.program`
    pass.  Returns the boolean mask of the faulted cells.
    """
    plan = CrossbarFaultPlan.sample(
        (crossbar.n_rows, crossbar.n_cols), fault_rate, rng,
        crossbar.conductance_bounds, stuck_on_fraction)
    existing = crossbar.fault_plan
    crossbar.install_fault_plan(existing | plan if existing is not None
                                else plan)
    return plan.mask


def apply_fault_mask(crossbar: "Crossbar", mask: np.ndarray,
                     stuck_values: np.ndarray) -> None:
    """Re-pin faulted cells after a reprogramming pass.

    Retained for callers that manage masks by hand; new code should
    rely on the installed :class:`CrossbarFaultPlan`, which re-pins
    automatically.
    """
    if mask.shape != (crossbar.n_rows, crossbar.n_cols):
        raise ValueError("mask shape mismatch")
    conductances = crossbar.conductances_copy()
    conductances[mask] = stuck_values[mask]
    crossbar.program(conductances, write_energy_per_cell_j=0.0)
