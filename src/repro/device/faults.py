"""Device fault injection.

Real memristor arrays ship with defects: cells stuck in the HRS or
LRS (forming failures), and cells whose state drifts or programs
imprecisely.  This module wraps the device and crossbar models with
injectable faults so the robustness of the analog match process can
be quantified — the reliability face of RQ2.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from repro.device.memristor import NbSTOMemristor

if TYPE_CHECKING:  # avoid a device <-> crossbar import cycle
    from repro.crossbar.array import Crossbar

__all__ = ["FaultType", "FaultyMemristor", "inject_crossbar_faults"]


class FaultType(enum.Enum):
    """Defect classes observed in memristive arrays."""

    #: Cell permanently in the high-resistance state.
    STUCK_OFF = "stuck_off"
    #: Cell permanently in the low-resistance state.
    STUCK_ON = "stuck_on"
    #: Cell programs, but lands far from the target (loose forming).
    IMPRECISE = "imprecise"


class FaultyMemristor(NbSTOMemristor):
    """A memristor with an injected defect.

    ``STUCK_OFF`` / ``STUCK_ON`` pin the state regardless of
    programming; ``IMPRECISE`` multiplies every programming target's
    error tolerance by ``imprecision_factor``.
    """

    def __init__(self, fault: FaultType, *args,
                 imprecision_factor: float = 20.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fault = fault
        if imprecision_factor < 1.0:
            raise ValueError(
                f"imprecision factor must be >= 1: {imprecision_factor!r}")
        self.imprecision_factor = imprecision_factor
        if fault is FaultType.STUCK_OFF:
            self._state = 0.0
        elif fault is FaultType.STUCK_ON:
            self._state = 1.0

    def apply_pulse(self, voltage_v: float, width_s: float,
                    substeps: int = 32) -> float:
        """Pulse the device; stuck cells dissipate but do not move."""
        if self.fault in (FaultType.STUCK_OFF, FaultType.STUCK_ON):
            # The pulse dissipates energy but moves nothing.
            current = abs(self.current(voltage_v))
            self._pulses += 1
            return abs(voltage_v) * current * width_s
        return super().apply_pulse(voltage_v, width_s, substeps)

    def program_state(self, target: float, *, tolerance: float = 0.01,
                      max_pulses: int = 200,
                      pulse_width_s: float = 10e-9) -> float:
        """Program-and-verify, honouring the injected defect."""
        if self.fault in (FaultType.STUCK_OFF, FaultType.STUCK_ON):
            # Program-and-verify gives up after max_pulses on a stuck
            # cell; model the bounded energy of that attempt.
            if abs(target - self._state) <= tolerance:
                return 0.0
            current = abs(self.current(self.params.v_threshold + 0.5))
            return (max_pulses * abs(self.params.v_threshold + 0.5)
                    * current * pulse_width_s)
        if self.fault is FaultType.IMPRECISE:
            tolerance = tolerance * self.imprecision_factor
        return super().program_state(target, tolerance=min(0.49, tolerance),
                                     max_pulses=max_pulses,
                                     pulse_width_s=pulse_width_s)


def inject_crossbar_faults(crossbar: "Crossbar", fault_rate: float,
                           rng: np.random.Generator,
                           stuck_on_fraction: float = 0.5
                           ) -> np.ndarray:
    """Pin a random fraction of a crossbar's cells at the rails.

    Returns a boolean mask of the faulted cells.  The conductance
    matrix is modified in place (through the programming interface),
    and subsequent :meth:`Crossbar.program` calls should re-apply the
    mask — use the returned mask with :func:`apply_fault_mask`.
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1]: {fault_rate!r}")
    if not 0.0 <= stuck_on_fraction <= 1.0:
        raise ValueError("stuck-on fraction must be in [0, 1]")
    shape = (crossbar.n_rows, crossbar.n_cols)
    mask = rng.random(shape) < fault_rate
    g_min, g_max = crossbar.conductance_bounds
    conductances = crossbar.conductances
    stuck_on = mask & (rng.random(shape) < stuck_on_fraction)
    stuck_off = mask & ~stuck_on
    conductances[stuck_on] = g_max
    conductances[stuck_off] = g_min
    crossbar.program(conductances, write_energy_per_cell_j=0.0)
    return mask


def apply_fault_mask(crossbar: "Crossbar", mask: np.ndarray,
                     stuck_values: np.ndarray) -> None:
    """Re-pin faulted cells after a reprogramming pass."""
    if mask.shape != (crossbar.n_rows, crossbar.n_cols):
        raise ValueError("mask shape mismatch")
    conductances = crossbar.conductances
    conductances[mask] = stuck_values[mask]
    crossbar.program(conductances, write_energy_per_cell_j=0.0)
