"""Digital match-action substrate: TCAM, memristor TCAM, Table 1 baselines."""

from repro.tcam.baselines import (
    Computation,
    PublishedDesign,
    TABLE1_DIGITAL_DESIGNS,
    TABLE1_PCAM_PUBLISHED,
    Technology,
    best_digital_design,
)
from repro.tcam.mtcam import MemristorTCAM
from repro.tcam.tcam import (
    SearchResult,
    TCAM,
    TernaryPattern,
    key_from_int,
)

__all__ = [
    "Computation",
    "MemristorTCAM",
    "PublishedDesign",
    "SearchResult",
    "TABLE1_DIGITAL_DESIGNS",
    "TABLE1_PCAM_PUBLISHED",
    "TCAM",
    "Technology",
    "TernaryPattern",
    "best_digital_design",
    "key_from_int",
]
