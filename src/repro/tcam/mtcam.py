"""Memristor-based TCAM (digital matching on analog devices).

The middle column of the paper's taxonomy (Figure 3): memristors used
for *digital* match-action, as in the authors' earlier TCAmMCogniGron
work [42, 43] and the HPE regex engines [15-17].  Match semantics are
identical to a transistor TCAM, but storage is non-volatile and the
search energy comes from the device physics instead of CMOS cells —
and because computation happens inside the storage array, the data-
movement account stays near zero (Figure 1).

Cell encoding: each ternary cell holds two complementary memristors.
During a search, the cell conducts strongly (LRS path) only when the
key bit *disagrees* with the stored bit, discharging the match line;
a matching or don't-care cell presents only its HRS leakage.

Energy model: a mismatching cell dumps its share of the precharged
match-line capacitance through the LRS path (the discharge is
*capacitance-limited*, not device-limited: ``C_ml * V^2`` per cell).
A matching cell costs only the precharge refresh losses plus the HRS
leakage of its devices over the search pulse.  This lands in the
1-16 fJ/bit corridor published for memristor TCAMs [42].
"""

from __future__ import annotations

import numpy as np

from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel
from repro.energy.ledger import (
    ACCOUNT_COMPUTE,
    ACCOUNT_MOVEMENT,
    EnergyLedger,
)
from repro.tcam.tcam import SearchResult, TCAM, key_from_int

#: Search (read) voltage applied to cells during a match cycle [V].
DEFAULT_SEARCH_VOLTAGE_V = 1.0
#: Match-line precharge capacitance per cell [F].
DEFAULT_MATCHLINE_CAP_PER_CELL_F = 1.0e-15


class MemristorTCAM(TCAM):
    """TCAM with device-derived energy and near-zero movement cost.

    Inherits the match semantics (patterns, priorities, search) from
    :class:`~repro.tcam.tcam.TCAM` and replaces the energy model.
    """

    def __init__(self, width_bits: int,
                 params: MemristorParams | None = None,
                 search_voltage_v: float = DEFAULT_SEARCH_VOLTAGE_V,
                 search_latency_s: float = 1e-9,
                 matchline_cap_per_cell_f: float =
                 DEFAULT_MATCHLINE_CAP_PER_CELL_F,
                 ledger: EnergyLedger | None = None) -> None:
        super().__init__(width_bits=width_bits,
                         search_latency_s=search_latency_s,
                         ledger=ledger)
        if search_voltage_v <= 0:
            raise ValueError("search voltage must be positive")
        self.params = params or MemristorParams()
        self.search_voltage_v = search_voltage_v
        self.matchline_cap_per_cell_f = matchline_cap_per_cell_f
        self._hrs_cell = NbSTOMemristor(params=self.params, state=0.0,
                                        variability=VariabilityModel.ideal())

    #: Fraction of the precharge energy lost refreshing a match line
    #: that was *not* discharged (clock feed-through, leakage top-up).
    _REFRESH_FRACTION = 0.2

    def _cell_energy(self, mismatch: bool) -> float:
        """Energy contribution of one cell during a search [J]."""
        precharge = (self.matchline_cap_per_cell_f
                     * self.search_voltage_v ** 2)
        if mismatch:
            # Full discharge of the cell's slice of the match line
            # through the LRS path; capacitance-limited.
            return precharge
        leakage = self._hrs_cell.read(
            self.search_voltage_v, self.search_latency_s,
            noisy=False).energy_j
        return self._REFRESH_FRACTION * precharge + leakage

    def search(self, key: np.ndarray | int) -> SearchResult:
        """Search with device-physics energy accounting.

        Energy = HRS leakage of agreeing/don't-care cells + LRS
        discharge of disagreeing cells + match-line precharge, all
        charged to the compute account (colocalized compute/storage).
        """
        if isinstance(key, int):
            key = key_from_int(key, self.width_bits)
        if key.shape != (self.width_bits,):
            raise ValueError(
                f"key shape {key.shape} != ({self.width_bits},)")
        bits, care = self._ensure_matrices()
        agree = ~care | (bits == key[None, :])
        matched = np.flatnonzero(agree.all(axis=1))
        best: int | None = None
        if matched.size:
            priorities = np.array([self._priorities[i] for i in matched])
            best = int(matched[int(np.argmin(priorities))])

        total_cells = agree.size
        mismatching = int(total_cells - np.count_nonzero(agree))
        energy = (mismatching * self._cell_energy(mismatch=True)
                  + (total_cells - mismatching)
                  * self._cell_energy(mismatch=False))
        self._charge_cells(mismatching, total_cells)
        self._searches += 1
        return SearchResult(matched_indices=tuple(int(i) for i in matched),
                            best_index=best,
                            energy_j=energy,
                            latency_s=self.search_latency_s)

    def _batch_energy_j(self, agree: np.ndarray, n_keys: int) -> float:
        """Device-physics energy of a search burst.

        Same per-cell accounting as the scalar :meth:`search`: every
        stored cell participates in every key's search, mismatching
        cells discharge their match-line slice, the rest leak.
        """
        total_cells = agree.size
        mismatching = int(total_cells - np.count_nonzero(agree))
        return (mismatching * self._cell_energy(mismatch=True)
                + (total_cells - mismatching)
                * self._cell_energy(mismatch=False))

    def _charge_agree(self, agree: np.ndarray, n_keys: int) -> None:
        """Book one slice's searches from its agreement tensor."""
        total_cells = agree.size
        mismatching = int(total_cells - np.count_nonzero(agree))
        self._charge_cells(mismatching, total_cells)

    def _charge_cells(self, mismatching: int, total_cells: int) -> None:
        """Charge per-cell quanta for one burst of searches.

        Colocalized compute/storage: everything is computation; there
        is no storage-to-ALU shuttling to charge.  Cell counts are
        integers and partition linearly across keys, so booking
        ``mismatching`` discharge quanta plus ``total - mismatching``
        leakage quanta yields bit-identical joules however the same
        keys are batched or sharded.
        """
        self.ledger.charge_quanta(ACCOUNT_COMPUTE,
                                  self._cell_energy(mismatch=True),
                                  mismatching)
        self.ledger.charge_quanta(ACCOUNT_COMPUTE,
                                  self._cell_energy(mismatch=False),
                                  total_cells - mismatching)
        self.ledger.charge_quanta(ACCOUNT_MOVEMENT, 0.0, total_cells)

    def energy_per_bit_for(self, mismatch_fraction: float = 0.5) -> float:
        """Expected per-bit search energy at a given mismatch rate [J].

        Useful for apples-to-apples comparison against the fJ/bit
        figures in Table 1.
        """
        if not 0.0 <= mismatch_fraction <= 1.0:
            raise ValueError("mismatch fraction must be in [0, 1]")
        return (mismatch_fraction * self._cell_energy(mismatch=True)
                + (1.0 - mismatch_fraction)
                * self._cell_energy(mismatch=False))
