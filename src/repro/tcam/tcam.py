"""Behavioural ternary content-addressable memory (TCAM).

The digital baseline of the paper: packet header fields are matched
against stored ternary rules (0 / 1 / don't-care) in one clock cycle,
every search activating *all* match lines.  The output is strictly
binary — match or mismatch — with no notion of a partial match, which
is exactly the expressiveness limitation the pCAM removes.

Energy model: each search charges ``energy_per_bit_j`` for every stored
cell (the whole array participates in a search), split between data
movement and computation with the ~90/10 ratio the paper cites for
transistor-based designs (Figure 1, [23, 41]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.ledger import (
    ACCOUNT_COMPUTE,
    ACCOUNT_MOVEMENT,
    EnergyLedger,
)
from repro.energy.units import femtojoules, nanoseconds

#: Representative transistor TCAM figures (Arsovski et al. [2]).
DEFAULT_ENERGY_PER_BIT_J = femtojoules(0.58)
DEFAULT_SEARCH_LATENCY_S = nanoseconds(1.0)
#: Fraction of digital search energy spent moving data between the
#: separate storage and computation units (paper Figure 1: "upto 90%").
DEFAULT_MOVEMENT_FRACTION = 0.9

#: Wildcard character in ternary pattern strings.
WILDCARD = "x"


@dataclass(frozen=True)
class TernaryPattern:
    """A stored ternary word: per-bit value and care mask.

    ``bits[i]`` is meaningful only where ``care[i]`` is True; elsewhere
    the bit is a don't-care (``x``).
    """

    bits: np.ndarray
    care: np.ndarray

    def __post_init__(self) -> None:
        if self.bits.shape != self.care.shape or self.bits.ndim != 1:
            raise ValueError("bits and care must be 1-D and aligned")

    @property
    def width(self) -> int:
        """Word width in bits."""
        return len(self.bits)

    @classmethod
    def parse(cls, text: str) -> "TernaryPattern":
        """Parse a pattern like ``"10x1"`` (``x`` = don't-care)."""
        if not text:
            raise ValueError("pattern must be non-empty")
        bits = np.zeros(len(text), dtype=bool)
        care = np.ones(len(text), dtype=bool)
        for index, char in enumerate(text.lower()):
            if char == "1":
                bits[index] = True
            elif char == "0":
                bits[index] = False
            elif char == WILDCARD or char == "*":
                care[index] = False
            else:
                raise ValueError(
                    f"invalid pattern character {char!r} at {index}")
        return cls(bits=bits, care=care)

    @classmethod
    def from_value(cls, value: int, width: int,
                   mask: int | None = None) -> "TernaryPattern":
        """Build from an integer value and optional care mask.

        ``mask`` bit = 1 means the bit is compared; default all-ones.
        The most significant bit is stored first.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1: {width!r}")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        care_mask = (1 << width) - 1 if mask is None else mask
        bits = np.array([(value >> (width - 1 - i)) & 1 == 1
                         for i in range(width)])
        care = np.array([(care_mask >> (width - 1 - i)) & 1 == 1
                         for i in range(width)])
        return cls(bits=bits, care=care)

    def matches(self, key: np.ndarray) -> bool:
        """True iff the key agrees on every cared-for bit."""
        if key.shape != self.bits.shape:
            raise ValueError(f"key width {key.shape} != {self.bits.shape}")
        return bool(np.all(~self.care | (key == self.bits)))

    def __str__(self) -> str:
        return "".join(("1" if b else "0") if c else WILDCARD
                       for b, c in zip(self.bits, self.care))


def key_from_int(value: int, width: int) -> np.ndarray:
    """Encode an integer search key as a bit array (MSB first)."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 == 1
                     for i in range(width)])


def key_matrix(values: np.ndarray, width: int) -> np.ndarray:
    """Encode a column of unsigned ints as a (batch, width) bit matrix.

    The vectorised counterpart of :func:`key_from_int` for fields up
    to 64 bits wide; MSB first, one row per key.  Wider keys are built
    by concatenating per-field matrices along axis 1.
    """
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64]: {width!r}")
    column = np.asarray(values, dtype=np.uint64)
    if column.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {column.shape}")
    if width < 64 and column.size and int(column.max()) >= (1 << width):
        raise ValueError(
            f"value {int(column.max())} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return ((column[:, None] >> shifts[None, :]) & np.uint64(1)
            ).astype(bool)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one TCAM search."""

    matched_indices: tuple[int, ...]
    best_index: int | None
    energy_j: float
    latency_s: float

    @property
    def hit(self) -> bool:
        """True when at least one entry matched."""
        return self.best_index is not None


@dataclass(frozen=True)
class BatchSearchResult:
    """Outcome of one vectorised multi-key TCAM search.

    ``best_indices[i]`` is the winning entry for key ``i``, or ``-1``
    on a miss; ``energy_j`` is the total energy of the whole burst —
    the same joules the scalar :meth:`TCAM.search` would have charged
    key by key.
    """

    best_indices: np.ndarray
    energy_j: float
    latency_s: float

    @property
    def hit_mask(self) -> np.ndarray:
        """Boolean per-key hit flags."""
        return self.best_indices >= 0

    def __len__(self) -> int:
        return int(self.best_indices.shape[0])


class TCAM:
    """A priority-ordered ternary CAM with a digital energy model.

    Entries are matched in insertion order unless an explicit priority
    is given; lower priority value wins (like P4 table entries).
    """

    def __init__(self, width_bits: int,
                 energy_per_bit_j: float = DEFAULT_ENERGY_PER_BIT_J,
                 search_latency_s: float = DEFAULT_SEARCH_LATENCY_S,
                 movement_fraction: float = DEFAULT_MOVEMENT_FRACTION,
                 ledger: EnergyLedger | None = None) -> None:
        if width_bits < 1:
            raise ValueError(f"width must be >= 1: {width_bits!r}")
        if not 0.0 <= movement_fraction <= 1.0:
            raise ValueError("movement fraction must be in [0, 1]")
        self.width_bits = width_bits
        self.energy_per_bit_j = energy_per_bit_j
        self.search_latency_s = search_latency_s
        self.movement_fraction = movement_fraction
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._patterns: list[TernaryPattern] = []
        self._priorities: list[int] = []
        self._searches = 0
        self._generation = 0
        # Dense matrices rebuilt lazily for vectorised search.
        self._bits_matrix: np.ndarray | None = None
        self._care_matrix: np.ndarray | None = None
        self._priority_vector: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._patterns)

    @property
    def searches(self) -> int:
        """Number of searches performed."""
        return self._searches

    @property
    def generation(self) -> int:
        """Monotonic table version; bumps on every add/remove.

        Caches keyed on a table's contents (e.g. the data-plane flow
        cache) compare generations instead of diffing entries.
        """
        return self._generation

    def add(self, pattern: TernaryPattern | str,
            priority: int | None = None) -> int:
        """Install a rule; returns its entry index."""
        if isinstance(pattern, str):
            pattern = TernaryPattern.parse(pattern)
        if pattern.width != self.width_bits:
            raise ValueError(
                f"pattern width {pattern.width} != TCAM width "
                f"{self.width_bits}")
        self._patterns.append(pattern)
        self._priorities.append(
            priority if priority is not None else len(self._priorities))
        self._invalidate()
        return len(self._patterns) - 1

    def remove(self, index: int) -> None:
        """Delete a rule by entry index."""
        if not 0 <= index < len(self._patterns):
            raise IndexError(f"entry {index} out of range")
        del self._patterns[index]
        del self._priorities[index]
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop the dense matrices and advance the table generation."""
        self._bits_matrix = None
        self._care_matrix = None
        self._priority_vector = None
        self._generation += 1

    def _ensure_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        if self._bits_matrix is None or self._care_matrix is None:
            if self._patterns:
                self._bits_matrix = np.stack(
                    [p.bits for p in self._patterns])
                self._care_matrix = np.stack(
                    [p.care for p in self._patterns])
            else:
                self._bits_matrix = np.zeros((0, self.width_bits), dtype=bool)
                self._care_matrix = np.zeros((0, self.width_bits), dtype=bool)
            self._priority_vector = np.asarray(self._priorities,
                                               dtype=float)
        return self._bits_matrix, self._care_matrix

    def search(self, key: np.ndarray | int) -> SearchResult:
        """One-cycle search of all entries against ``key``.

        Returns every matching entry plus the highest-priority one and
        charges the digital search energy to the ledger.
        """
        if isinstance(key, int):
            key = key_from_int(key, self.width_bits)
        if key.shape != (self.width_bits,):
            raise ValueError(
                f"key shape {key.shape} != ({self.width_bits},)")
        bits, care = self._ensure_matrices()
        agree = ~care | (bits == key[None, :])
        matched = np.flatnonzero(agree.all(axis=1))
        best: int | None = None
        if matched.size:
            priorities = np.array([self._priorities[i] for i in matched])
            best = int(matched[int(np.argmin(priorities))])

        energy = self._search_energy_quantum_j()
        self._charge_searches(1)
        self._searches += 1
        return SearchResult(matched_indices=tuple(int(i) for i in matched),
                            best_index=best,
                            energy_j=energy,
                            latency_s=self.search_latency_s)

    #: Upper bound on the (slice, entries, width) agree tensor one
    #: vectorised slice may allocate (cells, i.e. bools).
    _MAX_BATCH_CELLS = 1 << 24

    def search_batch(self, keys: np.ndarray) -> BatchSearchResult:
        """Search many keys against all entries in one NumPy pass.

        ``keys`` is a (batch, width) boolean matrix — one
        :func:`key_from_int`-style row per key (build it with
        :func:`key_matrix`).  Match semantics, priority resolution and
        the charged energy are exactly ``batch`` scalar
        :meth:`search` calls; only the interpreter round trips are
        removed.  Large batches are internally sliced so the
        (batch, entries, width) agreement tensor stays bounded.
        """
        key_matrix_ = np.asarray(keys, dtype=bool)
        if key_matrix_.ndim != 2 or key_matrix_.shape[1] != self.width_bits:
            raise ValueError(
                f"keys shape {key_matrix_.shape} != "
                f"(batch, {self.width_bits})")
        n_keys = key_matrix_.shape[0]
        bits, care = self._ensure_matrices()
        n_entries = bits.shape[0]
        best = np.full(n_keys, -1, dtype=np.int64)
        energy = 0.0
        cells_per_key = max(n_entries * self.width_bits, 1)
        step = max(1, self._MAX_BATCH_CELLS // cells_per_key)
        for start in range(0, n_keys, step):
            chunk = key_matrix_[start:start + step]
            agree = ~care[None, :, :] | (bits[None, :, :]
                                         == chunk[:, None, :])
            energy += self._batch_energy_j(agree, chunk.shape[0])
            self._charge_agree(agree, chunk.shape[0])
            if n_entries:
                matched = agree.all(axis=2)
                masked = np.where(matched,
                                  self._priority_vector[None, :], np.inf)
                winners = np.argmin(masked, axis=1)
                best[start:start + step] = np.where(
                    matched.any(axis=1), winners, -1)
        self._searches += n_keys
        return BatchSearchResult(best_indices=best, energy_j=energy,
                                 latency_s=self.search_latency_s)

    def _batch_energy_j(self, agree: np.ndarray, n_keys: int) -> float:
        """Energy of ``n_keys`` searches (agreement-independent here)."""
        return (self.energy_per_bit_j * self.width_bits
                * max(len(self._patterns), 1) * n_keys)

    def _search_energy_quantum_j(self) -> float:
        """The per-key search energy [J] — the ledger charging unit."""
        return (self.energy_per_bit_j * self.width_bits
                * max(len(self._patterns), 1))

    def _charge_searches(self, n_keys: int) -> None:
        """Book ``n_keys`` searches with the per-key movement split.

        Charged as ``n_keys`` identical quanta
        (:meth:`~repro.energy.ledger.EnergyLedger.charge_quanta`), so
        the booked joules are an exact function of the key count —
        identical whether the keys arrive one by one, in one burst, or
        split across shard pipelines.
        """
        quantum = self._search_energy_quantum_j()
        self.ledger.charge_quanta(ACCOUNT_MOVEMENT,
                                  quantum * self.movement_fraction,
                                  n_keys)
        self.ledger.charge_quanta(ACCOUNT_COMPUTE,
                                  quantum * (1.0 - self.movement_fraction),
                                  n_keys)

    def _charge_agree(self, agree: np.ndarray, n_keys: int) -> None:
        """Book one batch slice's searches (agreement-independent)."""
        self._charge_searches(n_keys)
