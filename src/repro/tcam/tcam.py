"""Behavioural ternary content-addressable memory (TCAM).

The digital baseline of the paper: packet header fields are matched
against stored ternary rules (0 / 1 / don't-care) in one clock cycle,
every search activating *all* match lines.  The output is strictly
binary — match or mismatch — with no notion of a partial match, which
is exactly the expressiveness limitation the pCAM removes.

Energy model: each search charges ``energy_per_bit_j`` for every stored
cell (the whole array participates in a search), split between data
movement and computation with the ~90/10 ratio the paper cites for
transistor-based designs (Figure 1, [23, 41]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.ledger import (
    ACCOUNT_COMPUTE,
    ACCOUNT_MOVEMENT,
    EnergyLedger,
)
from repro.energy.units import femtojoules, nanoseconds

#: Representative transistor TCAM figures (Arsovski et al. [2]).
DEFAULT_ENERGY_PER_BIT_J = femtojoules(0.58)
DEFAULT_SEARCH_LATENCY_S = nanoseconds(1.0)
#: Fraction of digital search energy spent moving data between the
#: separate storage and computation units (paper Figure 1: "upto 90%").
DEFAULT_MOVEMENT_FRACTION = 0.9

#: Wildcard character in ternary pattern strings.
WILDCARD = "x"


@dataclass(frozen=True)
class TernaryPattern:
    """A stored ternary word: per-bit value and care mask.

    ``bits[i]`` is meaningful only where ``care[i]`` is True; elsewhere
    the bit is a don't-care (``x``).
    """

    bits: np.ndarray
    care: np.ndarray

    def __post_init__(self) -> None:
        if self.bits.shape != self.care.shape or self.bits.ndim != 1:
            raise ValueError("bits and care must be 1-D and aligned")

    @property
    def width(self) -> int:
        """Word width in bits."""
        return len(self.bits)

    @classmethod
    def parse(cls, text: str) -> "TernaryPattern":
        """Parse a pattern like ``"10x1"`` (``x`` = don't-care)."""
        if not text:
            raise ValueError("pattern must be non-empty")
        bits = np.zeros(len(text), dtype=bool)
        care = np.ones(len(text), dtype=bool)
        for index, char in enumerate(text.lower()):
            if char == "1":
                bits[index] = True
            elif char == "0":
                bits[index] = False
            elif char == WILDCARD or char == "*":
                care[index] = False
            else:
                raise ValueError(
                    f"invalid pattern character {char!r} at {index}")
        return cls(bits=bits, care=care)

    @classmethod
    def from_value(cls, value: int, width: int,
                   mask: int | None = None) -> "TernaryPattern":
        """Build from an integer value and optional care mask.

        ``mask`` bit = 1 means the bit is compared; default all-ones.
        The most significant bit is stored first.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1: {width!r}")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        care_mask = (1 << width) - 1 if mask is None else mask
        bits = np.array([(value >> (width - 1 - i)) & 1 == 1
                         for i in range(width)])
        care = np.array([(care_mask >> (width - 1 - i)) & 1 == 1
                         for i in range(width)])
        return cls(bits=bits, care=care)

    def matches(self, key: np.ndarray) -> bool:
        """True iff the key agrees on every cared-for bit."""
        if key.shape != self.bits.shape:
            raise ValueError(f"key width {key.shape} != {self.bits.shape}")
        return bool(np.all(~self.care | (key == self.bits)))

    def __str__(self) -> str:
        return "".join(("1" if b else "0") if c else WILDCARD
                       for b, c in zip(self.bits, self.care))


def key_from_int(value: int, width: int) -> np.ndarray:
    """Encode an integer search key as a bit array (MSB first)."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 == 1
                     for i in range(width)])


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one TCAM search."""

    matched_indices: tuple[int, ...]
    best_index: int | None
    energy_j: float
    latency_s: float

    @property
    def hit(self) -> bool:
        """True when at least one entry matched."""
        return self.best_index is not None


class TCAM:
    """A priority-ordered ternary CAM with a digital energy model.

    Entries are matched in insertion order unless an explicit priority
    is given; lower priority value wins (like P4 table entries).
    """

    def __init__(self, width_bits: int,
                 energy_per_bit_j: float = DEFAULT_ENERGY_PER_BIT_J,
                 search_latency_s: float = DEFAULT_SEARCH_LATENCY_S,
                 movement_fraction: float = DEFAULT_MOVEMENT_FRACTION,
                 ledger: EnergyLedger | None = None) -> None:
        if width_bits < 1:
            raise ValueError(f"width must be >= 1: {width_bits!r}")
        if not 0.0 <= movement_fraction <= 1.0:
            raise ValueError("movement fraction must be in [0, 1]")
        self.width_bits = width_bits
        self.energy_per_bit_j = energy_per_bit_j
        self.search_latency_s = search_latency_s
        self.movement_fraction = movement_fraction
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._patterns: list[TernaryPattern] = []
        self._priorities: list[int] = []
        self._searches = 0
        # Dense matrices rebuilt lazily for vectorised search.
        self._bits_matrix: np.ndarray | None = None
        self._care_matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._patterns)

    @property
    def searches(self) -> int:
        """Number of searches performed."""
        return self._searches

    def add(self, pattern: TernaryPattern | str,
            priority: int | None = None) -> int:
        """Install a rule; returns its entry index."""
        if isinstance(pattern, str):
            pattern = TernaryPattern.parse(pattern)
        if pattern.width != self.width_bits:
            raise ValueError(
                f"pattern width {pattern.width} != TCAM width "
                f"{self.width_bits}")
        self._patterns.append(pattern)
        self._priorities.append(
            priority if priority is not None else len(self._priorities))
        self._bits_matrix = None
        self._care_matrix = None
        return len(self._patterns) - 1

    def remove(self, index: int) -> None:
        """Delete a rule by entry index."""
        if not 0 <= index < len(self._patterns):
            raise IndexError(f"entry {index} out of range")
        del self._patterns[index]
        del self._priorities[index]
        self._bits_matrix = None
        self._care_matrix = None

    def _ensure_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        if self._bits_matrix is None or self._care_matrix is None:
            if self._patterns:
                self._bits_matrix = np.stack(
                    [p.bits for p in self._patterns])
                self._care_matrix = np.stack(
                    [p.care for p in self._patterns])
            else:
                self._bits_matrix = np.zeros((0, self.width_bits), dtype=bool)
                self._care_matrix = np.zeros((0, self.width_bits), dtype=bool)
        return self._bits_matrix, self._care_matrix

    def search(self, key: np.ndarray | int) -> SearchResult:
        """One-cycle search of all entries against ``key``.

        Returns every matching entry plus the highest-priority one and
        charges the digital search energy to the ledger.
        """
        if isinstance(key, int):
            key = key_from_int(key, self.width_bits)
        if key.shape != (self.width_bits,):
            raise ValueError(
                f"key shape {key.shape} != ({self.width_bits},)")
        bits, care = self._ensure_matrices()
        agree = ~care | (bits == key[None, :])
        matched = np.flatnonzero(agree.all(axis=1))
        best: int | None = None
        if matched.size:
            priorities = np.array([self._priorities[i] for i in matched])
            best = int(matched[int(np.argmin(priorities))])

        energy = self.energy_per_bit_j * self.width_bits * max(
            len(self._patterns), 1)
        self.ledger.charge(ACCOUNT_MOVEMENT,
                           energy * self.movement_fraction)
        self.ledger.charge(ACCOUNT_COMPUTE,
                           energy * (1.0 - self.movement_fraction))
        self._searches += 1
        return SearchResult(matched_indices=tuple(int(i) for i in matched),
                            best_index=best,
                            energy_j=energy,
                            latency_s=self.search_latency_s)
