"""The published designs of Table 1.

Table 1 compares eight published digital CAM designs (transistor and
memristor based) against the analog pCAM on search latency and energy
per bit.  The digital rows are *published figures*, not measurements of
this reproduction — exactly as in the paper — so they are encoded here
as frozen records.  The pCAM row is measured from the device model at
run time by :mod:`repro.energy.comparison`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.energy.units import femtojoules, nanoseconds


class Computation(enum.Enum):
    """Digital (deterministic only) vs analog (probabilistic) matching."""

    DIGITAL = "D"
    ANALOG = "A"


class Technology(enum.Enum):
    """Underlying storage/compute device."""

    TRANSISTOR = "T"
    MEMRISTOR = "M"


@dataclass(frozen=True)
class PublishedDesign:
    """One row of Table 1.

    ``energy_fj_per_bit`` uses the design's best (lowest) published
    figure when the source reports a range, mirroring the table.
    """

    name: str
    reference: str
    computation: Computation
    technology: Technology
    latency_ns: float
    energy_fj_per_bit: float
    energy_fj_per_bit_max: float | None = None

    @property
    def latency_s(self) -> float:
        """Search latency in seconds."""
        return nanoseconds(self.latency_ns)

    @property
    def energy_j_per_bit(self) -> float:
        """Best published energy in joules per bit."""
        return femtojoules(self.energy_fj_per_bit)

    def __str__(self) -> str:
        energy = (f"{self.energy_fj_per_bit:g}"
                  if self.energy_fj_per_bit_max is None
                  else f"{self.energy_fj_per_bit:g}-"
                       f"{self.energy_fj_per_bit_max:g}")
        return (f"{self.name} [{self.reference}] "
                f"({self.computation.value}/{self.technology.value}): "
                f"{self.latency_ns:g} ns, {energy} fJ/bit")


#: The eight digital designs of Table 1, in column order.
TABLE1_DIGITAL_DESIGNS: tuple[PublishedDesign, ...] = (
    PublishedDesign("Arsovski", "2", Computation.DIGITAL,
                    Technology.TRANSISTOR, 1.0, 0.58),
    PublishedDesign("Hayashi", "19", Computation.DIGITAL,
                    Technology.TRANSISTOR, 1.9, 1.98),
    PublishedDesign("Saleh (TCAmMCogniGron)", "42", Computation.DIGITAL,
                    Technology.MEMRISTOR, 1.0, 1.0,
                    energy_fj_per_bit_max=16.0),
    PublishedDesign("Matsunaga", "33", Computation.DIGITAL,
                    Technology.MEMRISTOR, 0.29, 1.04),
    PublishedDesign("Gnawali", "11", Computation.DIGITAL,
                    Technology.MEMRISTOR, 0.18, 1.2),
    PublishedDesign("Bontupalli", "4", Computation.DIGITAL,
                    Technology.MEMRISTOR, 1.0, 2.15),
    PublishedDesign("Zheng", "62", Computation.DIGITAL,
                    Technology.MEMRISTOR, 2.3, 3.0),
    PublishedDesign("Xu", "59", Computation.DIGITAL,
                    Technology.MEMRISTOR, 8.0, 7.4),
)

#: The paper's published pCAM row (what we try to reproduce by
#: measurement): 1 ns latency, 0.01 fJ/bit minimum-state energy.
TABLE1_PCAM_PUBLISHED = PublishedDesign(
    "pCAM", "this paper", Computation.ANALOG, Technology.MEMRISTOR,
    1.0, 0.01)


def best_digital_design() -> PublishedDesign:
    """The lowest-energy digital row (the paper's 50x reference point)."""
    return min(TABLE1_DIGITAL_DESIGNS,
               key=lambda design: design.energy_fj_per_bit)
