"""repro — reproduction of "The Future is Analog: Energy-Efficient
Cognitive Network Functions over Memristor-Based Analog Computations"
(Saleh & Koldehofe, HotNets 2023).

Packages
--------
``repro.device``     Nb:SrTiO3 memristor model + synthetic chip dataset
``repro.crossbar``   analog circuit substrate (arrays, DAC/ADC, sensing)
``repro.tcam``       digital baseline (TCAM, memristor TCAM, Table 1)
``repro.core``       the pCAM: cells, pipelines, arrays, tables, compiler
``repro.dataplane``  the Figure 5 packet-processing architecture
``repro.netfunc``    network functions (AQM family, lookup, firewall, ...)
``repro.simnet``     discrete-event queue simulator (Figure 8 workload)
``repro.energy``     energy accounting and the Table 1 harness
``repro.analysis``   per-figure series builders and statistics

Quickstart
----------
>>> from repro import PCAMCell, prog_pcam
>>> cell = PCAMCell(prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5))
>>> cell.response(2.5)   # deterministic match
1.0
>>> 0.0 < cell.response(2.0) < 1.0   # probabilistic (partial) match
True
"""

from repro.core import (
    AnalogMatchActionTable,
    CognitiveCompiler,
    DevicePCAMCell,
    FunctionKind,
    NetworkFunctionSpec,
    PCAMArray,
    PCAMCell,
    PCAMParams,
    PCAMPipeline,
    PCAMWord,
    PipelineProgram,
    PrecisionClass,
    TableProgram,
    prog_pcam,
    update_pcam,
)
from repro.dataplane import AnalogPacketProcessor
from repro.device import (
    MemristorDataset,
    MemristorParams,
    NbSTOMemristor,
    VariabilityModel,
    generate_dataset,
)
from repro.energy import EnergyLedger
from repro.netfunc.aqm import PCAMAQM
from repro.observability import MetricsRegistry, Observability
from repro.packet import Packet

__version__ = "1.0.0"

__all__ = [
    "AnalogMatchActionTable",
    "AnalogPacketProcessor",
    "CognitiveCompiler",
    "DevicePCAMCell",
    "EnergyLedger",
    "FunctionKind",
    "MemristorDataset",
    "MemristorParams",
    "MetricsRegistry",
    "NbSTOMemristor",
    "NetworkFunctionSpec",
    "Observability",
    "PCAMAQM",
    "PCAMArray",
    "PCAMCell",
    "PCAMParams",
    "PCAMPipeline",
    "PCAMWord",
    "Packet",
    "PipelineProgram",
    "PrecisionClass",
    "TableProgram",
    "VariabilityModel",
    "__version__",
    "generate_dataset",
    "prog_pcam",
    "update_pcam",
]
