"""Transactional programming of all fabric shards.

An NMS reprogramming a sharded switch must never let traffic observe
half a rule update: a chunk classified while shard 0 has the new
route and shard 1 still has the old one could split a flow's verdicts
across configurations.  :class:`FabricController` closes that window
with a two-phase protocol:

1. **stage** — every pending op is buffered on every shard.  Staged
   ops are invisible to classification: buffering changes no table,
   no cache, no AQM.
2. **flip** — under the fabric's chunk-dispatch lock, every shard
   applies its buffer and the fabric generation increments once.

Because chunk dispatch holds the same lock from first ``begin`` to
last ``finish``, a chunk sees either the pre-flip configuration on
*all* shards or the post-flip configuration on *all* shards — never a
mix.  The generation number names the configuration a chunk ran
under.
"""

from __future__ import annotations

__all__ = ["FabricController"]


class FabricController:
    """Stages programming ops and commits them atomically."""

    def __init__(self, fabric) -> None:
        self._fabric = fabric
        self._pending: list[tuple[str, tuple]] = []

    # ------------------------------------------------------------------
    # Staging (buffered; invisible until commit)
    # ------------------------------------------------------------------
    def stage(self, name: str, *args) -> "FabricController":
        """Queue one op for the next commit (chainable)."""
        self._pending.append((name, args))
        return self

    def add_route(self, prefix: str, port: int) -> "FabricController":
        return self.stage("add_route", prefix, port)

    def add_firewall_rule(self, rule) -> "FabricController":
        return self.stage("add_firewall_rule", rule)

    def invalidate_flow_caches(self) -> "FabricController":
        return self.stage("invalidate_flow_cache")

    def retarget(self, target_delay_s: float,
                 max_deviation_s: float | None = None
                 ) -> "FabricController":
        """Re-aim every shard's AQM pipelines at a new delay target."""
        if max_deviation_s is None:
            return self.stage("retarget", target_delay_s)
        return self.stage("retarget", target_delay_s, max_deviation_s)

    def reprogram_intended(self) -> "FabricController":
        """Write every AQM's intended conductances back (drift repair)."""
        return self.stage("reprogram_intended")

    @property
    def staged(self) -> tuple[tuple[str, tuple], ...]:
        """Ops queued locally, not yet pushed to any shard."""
        return tuple(self._pending)

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Push staged ops to all shards, then flip atomically.

        Returns the new fabric generation.  A commit with nothing
        staged still flips (generation advances) — useful as a
        barrier.
        """
        ops, self._pending = self._pending, []
        # Phase 1: replicate to every shard's buffer.  Chunks
        # dispatched between the phases still classify under the old
        # configuration on every shard.
        self._fabric._stage_on_all(ops)
        # Phase 2: apply everywhere under the chunk-dispatch lock.
        return self._fabric._flip_all()

    def abort(self) -> int:
        """Discard locally staged ops (nothing was pushed yet)."""
        dropped, self._pending = len(self._pending), []
        return dropped

    @property
    def generation(self) -> int:
        return self._fabric.generation

    # ------------------------------------------------------------------
    # Observability pass-throughs
    # ------------------------------------------------------------------
    def poll_metrics(self) -> dict:
        return self._fabric.poll_metrics()

    def degraded_tables(self) -> list[str]:
        return self._fabric.robustness_stats()["degraded_tables"]
