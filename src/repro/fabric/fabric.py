"""The sharded multi-switch fabric.

:class:`SwitchFabric` scales one cognitive switch horizontally: N
full ``build_switch`` products (shards), an RSS front end steering
flows across them, and a merged observability surface that presents
the ensemble as a single processor.

**Replay identity.**  A fabric replay is byte-identical to the serial
walk of the same trace because every divergence channel is closed:

* chunking happens at the *serial* chunk boundaries first, and each
  scattered sub-chunk runs as a single admission chunk — so per-chunk
  dedup sets and cache probe sequences partition cleanly (steering is
  flow-consistent: all packets of a flow share a shard);
* the energy ledger books integer counts of fixed quanta and merges
  exactly (:class:`~repro.energy.ledger.ExactJoules`), so summed
  shard ledgers equal the serial ledger bit-for-bit;
* telemetry is pure counters that sum, and results scatter back to
  their original positions.

The guarantee holds in the no-eviction flow-cache regime (caches
large enough that LRU never evicts); under eviction pressure a
per-shard LRU can differ from the global one — throughput, not
identity, is the contract there.

**Generation purity.**  One lock orders chunk dispatch against
transaction commits: a chunk begins and finishes on all its shards
under the lock, and a commit flips all shards under the same lock, so
no chunk can observe two fabric generations.  Within a chunk the
worker shards still run in parallel — the lock serialises *chunks
against commits*, not shard against shard.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.dataplane.fastpath import PacketBatch
from repro.dataplane.results import ProcessResult, Verdict
from repro.fabric.controller import FabricController
from repro.fabric.rss import ToeplitzRSS
from repro.fabric.shards import (
    VERDICTS,
    InProcessShard,
    merge_ledgers,
    merge_telemetry,
)
from repro.fabric.workers import WorkerShard
from repro.simnet.workloads import ChunkColumns

__all__ = ["SwitchFabric"]

_MODES = ("in_process", "multiprocessing")

#: ChunkColumns field order — scatter slices all of them per shard.
_COLUMN_FIELDS = ("times_s", "sizes_bytes", "flow_ids", "priorities",
                  "src_ip", "dst_ip", "src_port", "dst_port",
                  "protocol", "has_dst")


class _MergedFlowCacheView:
    """The summed hits/misses of all shard flow caches."""

    __slots__ = ("hits", "misses", "entries")

    def __init__(self, snapshots) -> None:
        self.hits = sum(s["cache_hits"] for s in snapshots)
        self.misses = sum(s["cache_misses"] for s in snapshots)
        self.entries = sum(s["cache_entries"] for s in snapshots)

    def __len__(self) -> int:
        return self.entries


class SwitchFabric:
    """N shard pipelines behind one RSS front end.

    Parameters
    ----------
    shard_factory:
        Zero-argument callable building one complete processor (a
        ``build_switch`` product).  Called once per shard; in
        multiprocessing mode it runs inside the forked worker, so it
        may close over unpicklable state.
    n_shards:
        Number of shard pipelines.
    mode:
        ``"in_process"`` (shards in the caller's process, serial per
        chunk) or ``"multiprocessing"`` (one forked worker process
        per shard, parallel within each chunk, columns over shared
        memory).
    rss:
        Optional pre-built :class:`ToeplitzRSS`; defaults to the
        symmetric key with a 128-entry round-robin indirection table.
    """

    def __init__(self, shard_factory, n_shards: int, *,
                 mode: str = "in_process",
                 rss: ToeplitzRSS | None = None) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard: {n_shards!r}")
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
        if rss is not None and rss.n_shards != n_shards:
            raise ValueError(
                f"rss steers {rss.n_shards} shards, fabric has {n_shards}")
        self.n_shards = n_shards
        self.mode = mode
        self.rss = rss or ToeplitzRSS(n_shards)
        shard_cls = (WorkerShard if mode == "multiprocessing"
                     else InProcessShard)
        self.shards = [shard_cls(shard_factory) for _ in range(n_shards)]
        self.n_ports = self.shards[0].n_ports
        self.controller = FabricController(self)
        self._lock = threading.Lock()
        self._generation = 0
        self._hashed_packets = 0
        self._per_shard_packets = np.zeros(n_shards, dtype=np.int64)
        self._steering_seconds = 0.0
        self._dequeue_cursor = [0] * self.n_ports
        self._closed = False

    # ------------------------------------------------------------------
    # Steering
    # ------------------------------------------------------------------
    def _steer(self, src_ip, dst_ip, src_port, dst_port) -> np.ndarray:
        start = time.perf_counter()
        shard_ids = self.rss.shard_of_columns(src_ip, dst_ip,
                                              src_port, dst_port)
        self._steering_seconds += time.perf_counter() - start
        self._hashed_packets += len(shard_ids)
        np.add.at(self._per_shard_packets,
                  np.asarray(shard_ids, dtype=np.intp), 1)
        return shard_ids

    # ------------------------------------------------------------------
    # Packet-object path
    # ------------------------------------------------------------------
    def process(self, packet, now: float = 0.0) -> ProcessResult:
        """Steer and process one packet."""
        return self.process_batch([packet], now=now)[0]

    def process_batch(self, packets, now: float = 0.0,
                      chunk_size: int = 4096) -> list[ProcessResult]:
        """Steer and process a batch, results in input order.

        The batch is cut at the *serial* chunk boundaries first; each
        chunk is then scattered across the shards and gathered back
        before the next chunk starts, exactly mirroring the serial
        admission loop.
        """
        packets = list(packets)
        results: list[ProcessResult | None] = [None] * len(packets)
        step = max(int(chunk_size), 1)
        for start in range(0, len(packets), step):
            chunk = packets[start:start + step]
            batch = PacketBatch(chunk)
            shard_ids = self._steer(batch.src_ip, batch.dst_ip,
                                    batch.src_port, batch.dst_port)
            self._dispatch_packets(chunk, shard_ids, now, results, start)
        return results  # type: ignore[return-value]

    def _dispatch_packets(self, chunk, shard_ids, now, results,
                          base: int) -> None:
        groups: dict[int, list[int]] = {}
        for row, shard in enumerate(shard_ids.tolist()):
            groups.setdefault(shard, []).append(row)
        with self._lock:
            for shard, rows in groups.items():
                self.shards[shard].begin_packets(
                    [chunk[r] for r in rows], now)
            for shard, rows in groups.items():
                codes, ports = self.shards[shard].finish()
                for row, code, port in zip(rows, codes.tolist(),
                                           ports.tolist()):
                    results[base + row] = ProcessResult(
                        verdict=VERDICTS[code],
                        port=None if port < 0 else int(port),
                        packet=chunk[row])

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    def process_columns(self, columns: ChunkColumns, now: float = 0.0,
                        chunk_size: int | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Steer and process SoA columns; (verdict codes, ports).

        Verdict codes index :data:`~repro.fabric.shards.VERDICTS`;
        ports are ``int16`` with ``-1`` for no egress.  In
        multiprocessing mode each shard's row slice crosses the
        process boundary through shared memory.
        """
        n = len(columns.times_s)
        codes = np.zeros(n, dtype=np.uint8)
        ports = np.full(n, -1, dtype=np.int16)
        step = max(int(chunk_size), 1) if chunk_size else max(n, 1)
        for start in range(0, n, step):
            stop = min(start + step, n)
            sl = slice(start, stop)
            shard_ids = self._steer(columns.src_ip[sl], columns.dst_ip[sl],
                                    columns.src_port[sl],
                                    columns.dst_port[sl])
            self._dispatch_columns(columns, sl, shard_ids, now,
                                   codes, ports)
        return codes, ports

    def _dispatch_columns(self, columns, sl, shard_ids, now,
                          codes, ports) -> None:
        rows_of: dict[int, np.ndarray] = {
            int(shard): np.flatnonzero(shard_ids == shard)
            for shard in np.unique(shard_ids)}
        with self._lock:
            for shard, rows in rows_of.items():
                sub = {name: getattr(columns, name)[sl][rows]
                       for name in _COLUMN_FIELDS}
                self.shards[shard].begin_columns(sub, now)
            for shard, rows in rows_of.items():
                shard_codes, shard_ports = self.shards[shard].finish()
                codes[sl.start + rows] = shard_codes
                ports[sl.start + rows] = shard_ports

    # ------------------------------------------------------------------
    # Transactions (driven by the controller)
    # ------------------------------------------------------------------
    def _stage_on_all(self, ops) -> None:
        # Under the lock for pipe discipline, not for semantics: a
        # worker shard's command pipe is strictly FIFO, so staging
        # must not interleave with an in-flight chunk's begin/finish
        # pair.  Staged ops remain invisible until the flip either
        # way.
        with self._lock:
            for shard in self.shards:
                shard.stage(ops)

    def _flip_all(self) -> int:
        with self._lock:
            for shard in self.shards:
                shard.flip()
            self._generation += 1
            return self._generation

    @property
    def generation(self) -> int:
        return self._generation

    # ------------------------------------------------------------------
    # Merged observability
    # ------------------------------------------------------------------
    def _snapshots(self) -> list[dict]:
        with self._lock:
            return [shard.snapshot() for shard in self.shards]

    @property
    def processed(self) -> int:
        return sum(s["processed"] for s in self._snapshots())

    @property
    def verdict_counts(self) -> dict[Verdict, int]:
        counts = {v: 0 for v in VERDICTS}
        for snap in self._snapshots():
            for value, count in snap["verdict_counts"].items():
                counts[Verdict(value)] += count
        return counts

    @property
    def flow_cache(self) -> _MergedFlowCacheView:
        return _MergedFlowCacheView(self._snapshots())

    def telemetry_snapshot(self) -> dict:
        return merge_telemetry(
            [s["telemetry"] for s in self._snapshots()])

    def energy_ledger(self):
        return merge_ledgers(s["ledger"] for s in self._snapshots())

    def energy_total_j(self) -> float:
        return self.energy_ledger().total

    def energy_breakdown(self) -> dict[str, float]:
        ledger = self.energy_ledger()
        return {account: ledger.account(account)
                for account in ledger.breakdown()}

    def slice_extremes(self) -> tuple[float, float, int]:
        """(max delay EWMA, max PDP, max backlog) across all shards."""
        with self._lock:
            extremes = [shard.extremes() for shard in self.shards]
        return (max(e[0] for e in extremes),
                max(e[1] for e in extremes),
                max(e[2] for e in extremes))

    def robustness_stats(self) -> dict:
        snaps = self._snapshots()
        return {
            "fallback_events": sum(s["fallback_events"] for s in snaps),
            "retries": sum(s["retries"] for s in snaps),
            "degraded_tables": sorted(
                f"shard{i}.{table}"
                for i, s in enumerate(snaps)
                for table in s["degraded_tables"]),
        }

    def poll_metrics(self) -> dict:
        """One fabric-wide metrics document (the NMS poll surface)."""
        snaps = self._snapshots()
        per_shard = self._per_shard_packets.tolist()
        mean = (self._hashed_packets / self.n_shards
                if self._hashed_packets else 0.0)
        return {
            "generation": self._generation,
            "mode": self.mode,
            "n_shards": self.n_shards,
            "processed": sum(s["processed"] for s in snaps),
            "telemetry": merge_telemetry([s["telemetry"] for s in snaps]),
            "energy_total_j": merge_ledgers(
                s["ledger"] for s in snaps).total,
            "shards": [{"processed": s["processed"],
                        "cache_hits": s["cache_hits"],
                        "cache_misses": s["cache_misses"],
                        "degraded_tables": list(s["degraded_tables"]),
                        # Per-shard AQM extremes and drop counts: the
                        # sensing surface of the fleet learning loop.
                        "aqm_drops": s["verdict_counts"].get(
                            "dropped_aqm", 0),
                        "delay_ewma_s": s["extremes"][0],
                        "last_pdp": s["extremes"][1],
                        "backlog": s["extremes"][2]}
                       for s in snaps],
            "steering": {
                "hashed_packets": self._hashed_packets,
                "per_shard_packets": per_shard,
                "imbalance": (max(per_shard) / mean) if mean else 1.0,
                "steering_seconds": self._steering_seconds,
            },
        }

    # ------------------------------------------------------------------
    # Egress service
    # ------------------------------------------------------------------
    def dequeue(self, port: int, now: float):
        """Serve one packet from a fabric port.

        Shards are visited round-robin per port (cursor persists
        across calls) so no shard's queue starves the others.
        """
        with self._lock:
            cursor = self._dequeue_cursor[port]
            for step in range(self.n_shards):
                shard = (cursor + step) % self.n_shards
                packet = self.shards[shard].dequeue(port, now)
                if packet is not None:
                    self._dequeue_cursor[port] = \
                        (shard + 1) % self.n_shards
                    return packet
            self._dequeue_cursor[port] = cursor
            return None

    def drain(self, port: int, now: float, limit: int | None = None
              ) -> list:
        """Dequeue from a port until empty (or ``limit`` packets)."""
        out = []
        while limit is None or len(out) < limit:
            packet = self.dequeue(port, now)
            if packet is None:
                break
            out.append(packet)
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "SwitchFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
