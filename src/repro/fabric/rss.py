"""RSS-style steering: a symmetric Toeplitz hash over 5-tuples.

Real line-rate dataplanes replicate their match engines and spread
flows across the replicas with receive-side scaling: a Toeplitz hash
of the packet's 5-tuple indexed into an indirection table.  This
module reproduces that front end for the sharded fabric:

* the hash is the classic Toeplitz construction — every set bit of
  the 96-bit input (src, dst, sport, dport) XORs in a 32-bit sliding
  window of the secret key;
* the default key is the *symmetric* ``0x6d5a`` repetition (Woo &
  Park): its 16-bit period makes the hash invariant under swapping
  ``(src, sport)`` with ``(dst, dport)``, so both directions of a
  connection land on the same shard;
* evaluation is chunk-vectorised: the per-bit definition is folded
  into twelve 256-entry per-byte lookup tables at construction, so a
  whole column chunk hashes in twelve NumPy gathers and XORs.

Determinism is the point: the shard of a flow is a pure function of
``(key, indirection table, 5-tuple)``, so replaying a trace through
any shard count steers every packet identically on every run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SYMMETRIC_RSS_KEY", "ToeplitzRSS"]

#: The symmetric default key: 0x6d5a repeated to the conventional 40
#: bytes.  The 16-bit period is what buys src/dst symmetry — every
#: field offset in the hash input is a multiple of 16 bits.
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A] * 20)

#: Hash input layout: src_ip(4) | dst_ip(4) | src_port(2) | dst_port(2).
_INPUT_BYTES = 12
_U8 = np.uint64(8)
_U16 = np.uint64(16)
_U24 = np.uint64(24)
_MASK8 = np.uint64(0xFF)


class ToeplitzRSS:
    """Deterministic 5-tuple steering across ``n_shards`` pipelines.

    The indirection table (128 entries by default, round-robin over
    the shards) decouples the hash space from the shard count exactly
    as hardware RSS does: remapping a table entry migrates a slice of
    the flow space without touching the hash.
    """

    def __init__(self, n_shards: int, *,
                 key: bytes = SYMMETRIC_RSS_KEY,
                 indirection_size: int = 128) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard: {n_shards!r}")
        if len(key) < _INPUT_BYTES + 4:
            raise ValueError(
                f"key too short: need >= {_INPUT_BYTES + 4} bytes for "
                f"a {_INPUT_BYTES}-byte input, got {len(key)}")
        if indirection_size < n_shards:
            raise ValueError(
                f"indirection table ({indirection_size}) smaller than "
                f"the shard count ({n_shards})")
        self.n_shards = n_shards
        self.key = bytes(key)
        self._tables = _byte_tables(self.key)
        self.indirection = (np.arange(indirection_size, dtype=np.int64)
                            % n_shards)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def hash_columns(self, src_ip, dst_ip, src_port,
                     dst_port) -> np.ndarray:
        """One Toeplitz hash per row of the given 5-tuple columns.

        Columns may be any integer dtype (the dataplane's uint64
        batch view, the scenario engine's uint32/int64 columns);
        values are truncated to their wire widths exactly as the byte
        serialisation would truncate them.
        """
        src = np.asarray(src_ip).astype(np.uint64)
        dst = np.asarray(dst_ip).astype(np.uint64)
        sport = np.asarray(src_port).astype(np.uint64)
        dport = np.asarray(dst_port).astype(np.uint64)
        t = self._tables
        h = t[0][((src >> _U24) & _MASK8).astype(np.intp)]
        h = h ^ t[1][((src >> _U16) & _MASK8).astype(np.intp)]
        h = h ^ t[2][((src >> _U8) & _MASK8).astype(np.intp)]
        h = h ^ t[3][(src & _MASK8).astype(np.intp)]
        h = h ^ t[4][((dst >> _U24) & _MASK8).astype(np.intp)]
        h = h ^ t[5][((dst >> _U16) & _MASK8).astype(np.intp)]
        h = h ^ t[6][((dst >> _U8) & _MASK8).astype(np.intp)]
        h = h ^ t[7][(dst & _MASK8).astype(np.intp)]
        h = h ^ t[8][((sport >> _U8) & _MASK8).astype(np.intp)]
        h = h ^ t[9][(sport & _MASK8).astype(np.intp)]
        h = h ^ t[10][((dport >> _U8) & _MASK8).astype(np.intp)]
        h = h ^ t[11][(dport & _MASK8).astype(np.intp)]
        return h

    def hash_tuple(self, src_ip: int, dst_ip: int, src_port: int,
                   dst_port: int) -> int:
        """The hash of one 5-tuple (scalar convenience)."""
        return int(self.hash_columns(
            np.array([src_ip], dtype=np.uint64),
            np.array([dst_ip], dtype=np.uint64),
            np.array([src_port], dtype=np.uint64),
            np.array([dst_port], dtype=np.uint64))[0])

    # ------------------------------------------------------------------
    # Steering
    # ------------------------------------------------------------------
    def shard_of_columns(self, src_ip, dst_ip, src_port,
                         dst_port) -> np.ndarray:
        """Shard index per row: ``indirection[hash % table_size]``."""
        h = self.hash_columns(src_ip, dst_ip, src_port, dst_port)
        return self.indirection[
            (h % np.uint32(len(self.indirection))).astype(np.intp)]

    def shard_of_tuple(self, src_ip: int, dst_ip: int, src_port: int,
                       dst_port: int) -> int:
        """Shard index of one 5-tuple."""
        return int(self.shard_of_columns(
            np.array([src_ip], dtype=np.uint64),
            np.array([dst_ip], dtype=np.uint64),
            np.array([src_port], dtype=np.uint64),
            np.array([dst_port], dtype=np.uint64))[0])


def _byte_tables(key: bytes) -> np.ndarray:
    """Fold the Toeplitz definition into per-byte lookup tables.

    ``tables[b][v]`` is the XOR of the key windows of every bit set
    in byte value ``v`` at byte position ``b`` — so the hash of an
    input is the XOR of twelve table gathers, bit-exactly equal to
    the per-bit sliding-window definition.
    """
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    tables = np.zeros((_INPUT_BYTES, 256), dtype=np.uint32)
    values = np.arange(256, dtype=np.uint32)
    for byte_pos in range(_INPUT_BYTES):
        for bit in range(8):
            pos = byte_pos * 8 + bit
            window = np.uint32(
                (key_int >> (key_bits - 32 - pos)) & 0xFFFFFFFF)
            has_bit = (values >> np.uint32(7 - bit)) & np.uint32(1)
            tables[byte_pos] ^= np.where(has_bit == 1, window,
                                         np.uint32(0))
    return tables
