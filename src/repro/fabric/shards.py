"""Shard plumbing shared by both fabric execution modes.

A *shard* is one full ``build_switch`` product — its own runtime,
flow cache, energy ledger and telemetry domain — hidden behind a
small command surface the fabric drives:

* ``begin_packets`` / ``begin_columns`` then ``finish`` — process one
  sub-chunk (always as a single admission chunk; the fabric chunks at
  serial boundaries *before* scattering, which is what keeps dedup
  sets, cache sequences and energy multisets identical to the serial
  walk);
* ``stage`` / ``flip`` — the two phases of a transactional fabric
  programming;
* ``snapshot`` / ``extremes`` / ``dequeue`` — observability and
  egress service.

Everything a shard sends back is plain data (verdict codes, port
integers, picklable snapshots), so the in-process shard here and the
worker-process shard in :mod:`repro.fabric.workers` are
interchangeable behind the same protocol.
"""

from __future__ import annotations

import numpy as np

from repro.dataplane.results import ProcessResult, Verdict
from repro.energy.ledger import EnergyLedger
from repro.simnet.workloads import ChunkColumns

__all__ = [
    "FABRIC_OPS",
    "InProcessShard",
    "VERDICTS",
    "apply_op",
    "extremes_of",
    "merge_telemetry",
    "process_columns_on",
    "process_packets_on",
    "snapshot_of",
]

#: Stable verdict order: a verdict's wire code is its index here.
VERDICTS: tuple[Verdict, ...] = tuple(Verdict)
_CODE_OF: dict[Verdict, int] = {v: i for i, v in enumerate(VERDICTS)}

#: Programming operations the fabric controller may stage.  Every op
#: is a picklable ``(name, args)`` pair applied identically on every
#: shard, so one committed transaction leaves all shards in the same
#: configuration.
FABRIC_OPS = frozenset({
    "add_route",
    "add_firewall_rule",
    "invalidate_flow_cache",
    "retarget",
    "reprogram_intended",
})


def _analog(aqm):
    """The analog AQM inside a possibly-degradation-wrapped table."""
    return getattr(aqm, "analog", aqm)


def apply_op(processor, op: tuple[str, tuple]) -> None:
    """Apply one staged programming op to a shard's processor."""
    name, args = op
    if name == "add_route":
        processor.add_route(*args)
    elif name == "add_firewall_rule":
        processor.add_firewall_rule(*args)
    elif name == "invalidate_flow_cache":
        processor.invalidate_flow_cache()
    elif name == "retarget":
        manager = processor.traffic_manager
        for port in range(manager.n_ports):
            _analog(manager.aqm(port)).retarget(*args)
    elif name == "reprogram_intended":
        manager = processor.traffic_manager
        for port in range(manager.n_ports):
            _analog(manager.aqm(port)).reprogram_intended(*args)
    else:
        raise ValueError(f"unknown fabric op {name!r}; "
                         f"known: {sorted(FABRIC_OPS)}")


# ----------------------------------------------------------------------
# Processing kernels (one code path for both modes)
# ----------------------------------------------------------------------
def _encode(results) -> tuple[np.ndarray, np.ndarray]:
    codes = np.fromiter((_CODE_OF[r.verdict] for r in results),
                        dtype=np.uint8, count=len(results))
    ports = np.fromiter((-1 if r.port is None else r.port
                         for r in results),
                        dtype=np.int16, count=len(results))
    return codes, ports


def process_packets_on(processor, packets, now: float
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Run one sub-chunk of packets as a single admission chunk."""
    results = processor.process_batch(packets, now=now,
                                      chunk_size=max(len(packets), 1))
    return _encode(results)


def process_columns_on(processor, columns: dict, now: float
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Run one sub-chunk of SoA columns as a single admission chunk.

    ``columns`` maps the :class:`~repro.simnet.workloads.ChunkColumns`
    schema to row-sliced arrays; materialisation goes through
    ``ChunkColumns.to_packets`` so a scattered chunk builds exactly
    the packets the serial walk would have built.
    """
    packets = ChunkColumns(**columns).to_packets()
    return process_packets_on(processor, packets, now)


def decode_results(codes: np.ndarray, ports: np.ndarray) -> list:
    """Wire codes back to :class:`ProcessResult` values."""
    return [ProcessResult(verdict=VERDICTS[code],
                          port=None if port < 0 else int(port))
            for code, port in zip(codes.tolist(), ports.tolist())]


# ----------------------------------------------------------------------
# Observability payloads
# ----------------------------------------------------------------------
def snapshot_of(processor) -> dict:
    """One shard's complete observable state, as picklable data."""
    cache = processor.flow_cache
    manager = processor.traffic_manager
    ports = range(manager.n_ports)
    return {
        "ledger": processor.ledger,
        "telemetry": processor.telemetry.snapshot(),
        "verdict_counts": {v.value: c for v, c
                           in processor.verdict_counts.items()},
        "processed": processor.processed,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "cache_entries": len(cache) if cache is not None else 0,
        "degraded_tables": tuple(
            processor.controller.degraded_tables()),
        "extremes": extremes_of(processor),
        "fallback_events": sum(
            getattr(manager.aqm(p), "fallback_events", 0)
            for p in ports),
        "retries": sum(getattr(manager.aqm(p), "retries", 0)
                       for p in ports),
    }


def extremes_of(processor) -> tuple[float, float, int]:
    """(max delay EWMA, max PDP, max backlog) across a shard's ports."""
    manager = processor.traffic_manager
    ports = range(manager.n_ports)
    return (
        max(_analog(manager.aqm(p)).delay_ewma_s for p in ports),
        max(_analog(manager.aqm(p)).last_pdp for p in ports),
        max(manager.backlog(p) for p in ports),
    )


def merge_telemetry(snapshots: list[dict]) -> dict:
    """Fold per-shard telemetry snapshots into one fabric view.

    Tables and events are pure counters and sum exactly; hit rates
    are recomputed from the summed counters.  Gauges are summed too:
    the only stock gauges are per-port backlogs, and a fabric port's
    backlog *is* the sum of its shards' backlogs.
    """
    tables: dict[str, list] = {}
    gauges: dict[str, float] = {}
    events: dict[str, int] = {}
    for snap in snapshots:
        for name, stats in snap["tables"].items():
            entry = tables.setdefault(name, [0, 0, {}])
            entry[0] += stats["lookups"]
            entry[1] += stats["hits"]
            for verdict, count in stats["verdicts"].items():
                entry[2][verdict] = entry[2].get(verdict, 0) + count
        for name, value in snap["gauges"].items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, count in snap["events"].items():
            events[name] = events.get(name, 0) + count
    return {
        "tables": {name: {"lookups": lookups,
                          "hits": hits,
                          "hit_rate": hits / lookups if lookups else 0.0,
                          "verdicts": verdicts}
                   for name, (lookups, hits, verdicts)
                   in tables.items()},
        "gauges": gauges,
        "events": events,
    }


def merge_ledgers(ledgers) -> EnergyLedger:
    """Fold shard ledgers into one (exact, partition-invariant)."""
    merged = EnergyLedger()
    for ledger in ledgers:
        merged.merge(ledger)
    return merged


# ----------------------------------------------------------------------
# The in-process execution mode
# ----------------------------------------------------------------------
class InProcessShard:
    """A shard living in the caller's process (the test/debug mode)."""

    def __init__(self, shard_factory) -> None:
        self.processor = shard_factory()
        self.n_ports = self.processor.traffic_manager.n_ports
        self._staged: list[tuple[str, tuple]] = []
        self._pending: tuple[np.ndarray, np.ndarray] | None = None

    # -- processing ----------------------------------------------------
    def begin_packets(self, packets, now: float) -> None:
        self._pending = process_packets_on(self.processor, packets, now)

    def begin_columns(self, columns: dict, now: float) -> None:
        self._pending = process_columns_on(self.processor, columns, now)

    def finish(self) -> tuple[np.ndarray, np.ndarray]:
        if self._pending is None:
            raise RuntimeError("finish() without a pending chunk")
        pending, self._pending = self._pending, None
        return pending

    # -- transactional programming ------------------------------------
    def stage(self, ops) -> None:
        for op in ops:
            if op[0] not in FABRIC_OPS:
                raise ValueError(f"unknown fabric op {op[0]!r}")
        self._staged.extend(ops)

    def flip(self) -> None:
        staged, self._staged = self._staged, []
        for op in staged:
            apply_op(self.processor, op)

    @property
    def staged_ops(self) -> int:
        return len(self._staged)

    # -- observability / egress ---------------------------------------
    def snapshot(self) -> dict:
        return snapshot_of(self.processor)

    def extremes(self) -> tuple[float, float, int]:
        return extremes_of(self.processor)

    def dequeue(self, port: int, now: float):
        return self.processor.traffic_manager.dequeue(port, now)

    def close(self) -> None:
        self._pending = None
