"""Fabric processor factories for the scenario engine.

:func:`~repro.simnet.scenarios.run_scenario` accepts a
``processor_factory(spec, seed)`` hook; :func:`fabric_scenario_factory`
builds one that stands a :class:`~repro.fabric.fabric.SwitchFabric`
where the serial engine would have stood a single switch.  Each shard
replicates the engine's default construction — per-port PCAM AQMs
seeded by ``(seed, port, 0xA11A)``, graceful-degradation wrapping,
AQM ledgers folded into the shard's pipeline ledger — so a one-shard
fabric is behaviourally the engine's own switch, and an N-shard
fabric differs only by flow partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.fabric.fabric import SwitchFabric
from repro.fabric.rss import ToeplitzRSS

__all__ = ["build_fabric", "fabric_scenario_factory"]


def build_fabric(spec, seed: int, n_shards: int, *,
                 mode: str = "in_process",
                 rss: ToeplitzRSS | None = None,
                 compile: bool = False) -> SwitchFabric:
    """A fabric of scenario-style switches for one (spec, seed).

    The shard factory mirrors ``run_scenario``'s default switch
    construction.  It is a closure (fresh port iterator per shard, so
    every shard gets the same per-port AQM seeds) and runs inside the
    forked worker in multiprocessing mode — nothing here needs to
    pickle.
    """
    def shard_factory():
        from repro.dataplane.switch import build_switch
        from repro.netfunc.aqm.pcam_aqm import PCAMAQM
        from repro.robustness.degradation import DegradingAQM

        built_ports = iter(range(spec.n_ports))

        def aqm_factory():
            port = next(built_ports)
            analog = PCAMAQM(
                rng=np.random.default_rng((seed, port, 0xA11A)))
            if spec.graceful_degradation:
                return DegradingAQM(analog)
            return analog

        processor = build_switch(spec, aqm_factory=aqm_factory,
                                 compile=compile)
        manager = processor.traffic_manager
        for port in range(spec.n_ports):
            aqm = manager.aqm(port)
            getattr(aqm, "analog", aqm).ledger = processor.ledger
        return processor

    return SwitchFabric(shard_factory, n_shards, mode=mode, rss=rss)


def fabric_scenario_factory(n_shards: int, *, mode: str = "in_process",
                            compile: bool = False):
    """A ``processor_factory`` for ``run_scenario``.

    Usage::

        run_scenario("cache_churn",
                     processor_factory=fabric_scenario_factory(4))
    """
    def factory(spec, seed: int) -> SwitchFabric:
        return build_fabric(spec, seed, n_shards, mode=mode,
                            compile=compile)

    return factory
