"""Sharded multi-switch fabric: RSS steering + transactional control.

The fabric is the repo's horizontal-scale layer: N complete cognitive
switches (each its own runtime, flow cache, energy ledger and
telemetry domain) behind a symmetric Toeplitz RSS front end, with a
two-phase controller that reprograms all shards atomically and a
multiprocessing execution mode that runs shards in separate processes
over shared-memory columns.  See DESIGN.md §14.
"""

from repro.fabric.controller import FabricController
from repro.fabric.fabric import SwitchFabric
from repro.fabric.rss import SYMMETRIC_RSS_KEY, ToeplitzRSS
from repro.fabric.scenario import build_fabric, fabric_scenario_factory
from repro.fabric.shards import FABRIC_OPS, VERDICTS, InProcessShard
from repro.fabric.workers import WorkerShard

__all__ = [
    "FABRIC_OPS",
    "FabricController",
    "InProcessShard",
    "SYMMETRIC_RSS_KEY",
    "SwitchFabric",
    "ToeplitzRSS",
    "VERDICTS",
    "WorkerShard",
    "build_fabric",
    "fabric_scenario_factory",
]
