"""Worker-process shards: fork + pipes + shared-memory columns.

The multiprocessing execution mode gives every shard its own OS
process.  The parent keeps one duplex :class:`~multiprocessing.Pipe`
per worker and drives the same begin/finish, stage/flip protocol as
:class:`~repro.fabric.shards.InProcessShard` — the fabric cannot tell
the modes apart.

Transport choices, in order of what matters:

* **fork start method** — the shard factory is a closure over the
  switch spec (and possibly an RNG seed recipe); fork inherits it
  without pickling.
* **SoA columns ride shared memory** — a scatter materialises each
  shard's row slice into one ``multiprocessing.shared_memory`` block
  (column-major: contiguous per-column segments described by a small
  ``(name, dtype, length, offset)`` manifest sent over the pipe).
  Only verdict codes (1 byte/packet) and egress ports (2 B/packet)
  come back.
* **workers copy, parents unlink** — a worker ``np.frombuffer().copy()``s
  its columns and closes the block immediately; the parent unlinks
  after ``finish`` so no segment outlives its chunk.

Results are byte-identical to the in-process mode because both run
the exact same shard kernels from :mod:`repro.fabric.shards`.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.fabric.shards import (
    process_columns_on,
    process_packets_on,
    snapshot_of,
    extremes_of,
    apply_op,
    FABRIC_OPS,
)

__all__ = ["WorkerShard"]


# ----------------------------------------------------------------------
# Shared-memory column codec
# ----------------------------------------------------------------------
def columns_to_shm(columns: dict) -> tuple[shared_memory.SharedMemory, list]:
    """Pack column arrays into one shared-memory block.

    Returns the block (caller owns close+unlink) and the manifest
    ``[(name, dtype_str, length, offset), ...]`` a worker needs to
    reconstruct the arrays.
    """
    manifest = []
    offset = 0
    arrays = {}
    for name, values in columns.items():
        arr = np.ascontiguousarray(values)
        manifest.append((name, arr.dtype.str, len(arr), offset))
        arrays[name] = arr
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (name, _, _, start), arr in zip(manifest, arrays.values()):
        shm.buf[start:start + arr.nbytes] = arr.tobytes()
    return shm, manifest


def columns_from_shm(name: str, manifest: list) -> dict:
    """Rebuild (and own) column arrays from a shared-memory block."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        columns = {}
        for col, dtype_str, length, offset in manifest:
            dtype = np.dtype(dtype_str)
            end = offset + length * dtype.itemsize
            columns[col] = np.frombuffer(
                shm.buf[offset:end], dtype=dtype).copy()
        return columns
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
def _worker_main(conn, shard_factory) -> None:
    """One shard's process: build the switch, serve pipe commands."""
    processor = shard_factory()
    staged: list = []
    conn.send(("ready", processor.traffic_manager.n_ports))
    while True:
        command = conn.recv()
        kind = command[0]
        if kind == "packets":
            _, packets, now = command
            codes, ports = process_packets_on(processor, packets, now)
            conn.send((codes.tobytes(), ports.tobytes()))
        elif kind == "columns":
            _, shm_name, manifest, now = command
            columns = columns_from_shm(shm_name, manifest)
            codes, ports = process_columns_on(processor, columns, now)
            conn.send((codes.tobytes(), ports.tobytes()))
        elif kind == "stage":
            staged.extend(command[1])
            conn.send(("staged", len(staged)))
        elif kind == "flip":
            ops, staged = list(staged), []
            for op in ops:
                apply_op(processor, op)
            conn.send(("flipped", len(ops)))
        elif kind == "snapshot":
            conn.send(snapshot_of(processor))
        elif kind == "extremes":
            conn.send(extremes_of(processor))
        elif kind == "dequeue":
            _, port, now = command
            conn.send(processor.traffic_manager.dequeue(port, now))
        elif kind == "close":
            conn.send(("closed",))
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            raise ValueError(f"unknown worker command {kind!r}")


class WorkerShard:
    """A shard in its own forked process, driven over a pipe.

    Matches the :class:`InProcessShard` surface; ``begin_*`` sends the
    command and returns immediately, so N worker shards process their
    slices of one chunk in parallel while the parent waits in
    ``finish``.
    """

    def __init__(self, shard_factory) -> None:
        # Start the resource tracker *before* forking so every worker
        # inherits the same tracker.  Attach-side registrations are
        # then idempotent set-adds against the parent's create-side
        # registration, and the parent's unlink clears the one entry;
        # a worker that forked trackerless would spawn a private
        # tracker and "clean up" segments the parent already unlinked.
        resource_tracker.ensure_running()
        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main, args=(child, shard_factory), daemon=True)
        self._process.start()
        child.close()
        kind, self.n_ports = self._conn.recv()
        if kind != "ready":  # pragma: no cover - handshake violation
            raise RuntimeError(f"worker handshake failed: {kind!r}")
        self._staged_count = 0
        self._pending_shm: shared_memory.SharedMemory | None = None
        self._in_flight = False

    # -- processing ----------------------------------------------------
    def begin_packets(self, packets, now: float) -> None:
        self._conn.send(("packets", packets, now))
        self._in_flight = True

    def begin_columns(self, columns: dict, now: float) -> None:
        shm, manifest = columns_to_shm(columns)
        self._pending_shm = shm
        self._conn.send(("columns", shm.name, manifest, now))
        self._in_flight = True

    def finish(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._in_flight:
            raise RuntimeError("finish() without a pending chunk")
        code_bytes, port_bytes = self._conn.recv()
        self._in_flight = False
        if self._pending_shm is not None:
            self._pending_shm.close()
            self._pending_shm.unlink()
            self._pending_shm = None
        return (np.frombuffer(code_bytes, dtype=np.uint8),
                np.frombuffer(port_bytes, dtype=np.int16))

    # -- transactional programming ------------------------------------
    def stage(self, ops) -> None:
        ops = list(ops)
        for op in ops:
            if op[0] not in FABRIC_OPS:
                raise ValueError(f"unknown fabric op {op[0]!r}")
        self._conn.send(("stage", ops))
        _, self._staged_count = self._conn.recv()

    def flip(self) -> None:
        self._conn.send(("flip",))
        self._conn.recv()
        self._staged_count = 0

    @property
    def staged_ops(self) -> int:
        return self._staged_count

    # -- observability / egress ---------------------------------------
    def snapshot(self) -> dict:
        self._conn.send(("snapshot",))
        return self._conn.recv()

    def extremes(self) -> tuple[float, float, int]:
        self._conn.send(("extremes",))
        return self._conn.recv()

    def dequeue(self, port: int, now: float):
        self._conn.send(("dequeue", port, now))
        return self._conn.recv()

    def close(self) -> None:
        if self._process.is_alive():
            try:
                self._conn.send(("close",))
                self._conn.recv()
            except (BrokenPipeError, EOFError):  # pragma: no cover
                pass
        self._conn.close()
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=5.0)
