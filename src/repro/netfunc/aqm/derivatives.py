"""Analog derivative features for the cognitive AQM (paper Sec. 5).

The pCAM-based AQM "computes additional features, like first, second
and third-order derivatives of sojourn time and buffer size, in-order
to estimate the network congestion", computed "by the analog
components" (memristor-based differentiators, [52, 63]).

An analog differentiator is a leaky (band-limited) d/dt: it cannot
produce the unbounded gain of an ideal differentiator, so each stage
here is a smoothed finite difference — an exponential low-pass
followed by differencing — cascaded once per derivative order.  The
smoothing time constant models the RC of the analog stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DerivativeChain", "ExponentialSmoother", "FeatureExtractor"]


class ExponentialSmoother:
    """First-order low-pass with time constant ``tau_s`` (irregular
    sampling supported)."""

    def __init__(self, tau_s: float) -> None:
        if tau_s <= 0:
            raise ValueError(f"tau must be positive: {tau_s!r}")
        self.tau_s = tau_s
        self._value: float | None = None
        self._last_time: float | None = None
        # State of the most recent blend, kept so a coincident sample
        # can replace it (see replace()).
        self._prev_state: float | None = None
        self._last_alpha = 0.0

    @property
    def value(self) -> float:
        """Current smoothed value (0 before the first sample)."""
        return 0.0 if self._value is None else self._value

    def update(self, time_s: float, sample: float) -> float:
        """Feed one (time, value) sample; returns the smoothed value."""
        if self._value is None or self._last_time is None:
            self._value = sample
            self._last_time = time_s
            return self._value
        dt = time_s - self._last_time
        if dt < 0:
            raise ValueError(
                f"samples must be time-ordered: {time_s} < "
                f"{self._last_time}")
        if dt > 0:
            alpha = 1.0 - math.exp(-dt / self.tau_s)
            self._prev_state = self._value
            self._last_alpha = alpha
            self._value += alpha * (sample - self._value)
            self._last_time = time_s
        return self._value

    def replace(self, time_s: float, sample: float) -> float:
        """Last-writer-wins correction at the current timestamp.

        Re-runs the most recent blend as if its sample had been
        ``sample`` — the defined behaviour for coincident samples
        (``dt == 0``), where :meth:`update` deliberately leaves the
        state untouched (a zero-width interval has alpha 0).  A
        replace before any history behaves like a first sample.
        """
        if self._value is None or self._last_time is None:
            return self.update(time_s, sample)
        if time_s != self._last_time:
            raise ValueError(
                f"replace() must target the last sample time "
                f"{self._last_time}, got {time_s}")
        if self._prev_state is None:
            # Correcting the seed sample itself.
            self._value = sample
        else:
            self._value = self._prev_state + self._last_alpha * (
                sample - self._prev_state)
        return self._value

    def reset(self) -> None:
        """Forget all history (fresh smoothing state)."""
        self._value = None
        self._last_time = None
        self._prev_state = None
        self._last_alpha = 0.0


class DerivativeChain:
    """Cascaded smoothed differentiators up to a given order.

    ``update(t, x)`` returns ``[x_s, dx/dt, d2x/dt2, d3x/dt3]`` (up to
    the configured order), each stage smoothed with its own low-pass —
    exactly the structure of a chain of analog RC differentiators.
    """

    def __init__(self, order: int = 3, tau_s: float = 0.05) -> None:
        if not 1 <= order <= 3:
            raise ValueError(f"order must be 1..3: {order!r}")
        self.order = order
        self._smoothers = [ExponentialSmoother(tau_s)
                           for _ in range(order + 1)]
        self._previous: list[float | None] = [None] * (order + 1)
        self._last_time: float | None = None

    def update(self, time_s: float, sample: float) -> list[float]:
        """Feed one sample; returns [value, d1, ..., d_order].

        The first sample seeds *every* stage smoother (with a 0.0
        derivative), so the second sample's raw finite difference is
        blended through the stage low-pass instead of seeding it
        directly — the analog stages are never bypassed.  Coincident
        samples (``dt == 0``) are last-writer-wins: the newest sample
        replaces the level fed to the chain at that instant (and the
        stored previous value the next interval differentiates
        against); the derivative stages hold, because a zero-width
        interval carries no slope information.
        """
        if self._last_time is None:
            value = self._smoothers[0].update(time_s, sample)
            outputs = [value]
            self._last_time = time_s
            self._previous[0] = value
            for index in range(1, self.order + 1):
                seeded = self._smoothers[index].update(time_s, 0.0)
                self._previous[index] = seeded
                outputs.append(seeded)
            return outputs
        dt = time_s - self._last_time
        if dt < 0:
            raise ValueError(
                f"samples must be time-ordered: {time_s} < "
                f"{self._last_time}")
        if dt == 0:
            # Last-writer-wins on the level; derivatives hold.
            value = self._smoothers[0].replace(time_s, sample)
            self._previous[0] = value
            return [value] + [self._smoothers[i].value
                              for i in range(1, self.order + 1)]
        value = self._smoothers[0].update(time_s, sample)
        outputs = [value]
        previous_value = value
        for index in range(1, self.order + 1):
            previous = self._previous[index - 1]
            assert previous is not None
            raw = (previous_value - previous) / dt
            smooth = self._smoothers[index].update(time_s, raw)
            self._previous[index - 1] = previous_value
            previous_value = smooth
            outputs.append(smooth)
        self._previous[self.order] = previous_value
        self._last_time = time_s
        return outputs

    def reset(self) -> None:
        """Forget all history (fresh smoothing state)."""
        for smoother in self._smoothers:
            smoother.reset()
        self._previous = [None] * (self.order + 1)
        self._last_time = None


@dataclass(frozen=True)
class _FeatureNames:
    """The eight feature names of the analog AQM, in pipeline order."""

    sojourn: tuple[str, ...] = ("sojourn_time", "d_sojourn",
                                "d2_sojourn", "d3_sojourn")
    buffer: tuple[str, ...] = ("buffer_size", "d_buffer",
                               "d2_buffer", "d3_buffer")


class FeatureExtractor:
    """Produces the analog AQM's feature vector from queue samples.

    Feeds two derivative chains (sojourn time and buffer size) and
    returns the named eight-feature mapping the pCAM pipeline reads::

        sojourn_time, d_sojourn, d2_sojourn, d3_sojourn,
        buffer_size,  d_buffer,  d2_buffer,  d3_buffer
    """

    NAMES = _FeatureNames()

    def __init__(self, order: int = 3, tau_s: float = 0.05) -> None:
        self.order = order
        self._sojourn_chain = DerivativeChain(order=order, tau_s=tau_s)
        self._buffer_chain = DerivativeChain(order=order, tau_s=tau_s)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """The feature names produced, in pipeline order."""
        return (self.NAMES.sojourn[:self.order + 1]
                + self.NAMES.buffer[:self.order + 1])

    def update(self, time_s: float, sojourn_s: float,
               buffer_packets: float) -> dict[str, float]:
        """Feed one queue observation; returns the feature mapping."""
        sojourn_values = self._sojourn_chain.update(time_s, sojourn_s)
        buffer_values = self._buffer_chain.update(time_s, buffer_packets)
        features: dict[str, float] = {}
        for name, value in zip(self.NAMES.sojourn, sojourn_values):
            features[name] = value
        for name, value in zip(self.NAMES.buffer, buffer_values):
            features[name] = value
        return features

    def reset(self) -> None:
        """Forget all history (fresh smoothing state)."""
        self._sojourn_chain.reset()
        self._buffer_chain.reset()
