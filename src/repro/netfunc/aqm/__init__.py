"""Active queue management: digital baselines and the analog pCAM AQM."""

from repro.netfunc.aqm.base import AQMAlgorithm, QueueView, TailDropAQM
from repro.netfunc.aqm.codel import CoDelAqm
from repro.netfunc.aqm.derivatives import (
    DerivativeChain,
    ExponentialSmoother,
    FeatureExtractor,
)
from repro.netfunc.aqm.pcam_aqm import (
    DEFAULT_MAX_DEVIATION_S,
    DEFAULT_TARGET_DELAY_S,
    PCAMAQM,
    StageSpec,
    default_stage_programs,
)
from repro.netfunc.aqm.pie import PIEAqm
from repro.netfunc.aqm.red import REDAqm

__all__ = [
    "AQMAlgorithm",
    "CoDelAqm",
    "DEFAULT_MAX_DEVIATION_S",
    "DEFAULT_TARGET_DELAY_S",
    "DerivativeChain",
    "ExponentialSmoother",
    "FeatureExtractor",
    "PCAMAQM",
    "PIEAqm",
    "QueueView",
    "REDAqm",
    "StageSpec",
    "TailDropAQM",
    "default_stage_programs",
]
