"""The pCAM-based analog AQM (paper Sec. 5, Figures 6 and 8).

Data flow (Figure 6): the traffic manager collects **sojourn time**
and **buffer size**, analog differentiators derive their 1st/2nd/3rd
order derivatives, every feature is mapped to a hardware voltage
(DAC), and the series pCAM pipeline outputs the Packet Drop
Probability (PDP) directly — ``drop = pipeline { pCAM(sojourn_time),
pCAM(d/dt(sojourn_time)), ..., pCAM(d3/dt3(buffer_size)) }``.

Programming (the default produced by :func:`default_stage_programs`):

* The two zeroth-order stages carry the latency objective — "pCAM has
  been programmed to maintain an average delay of 20 ms with a
  maximum deviation of 10 ms": PDP ramps from 0 at
  ``target - deviation`` to 1 at ``target + deviation``.
* The derivative stages are *veto* stages: their acceptance plateau
  covers "congestion not improving" (derivative above a small
  negative threshold) and their response falls toward ``pmin`` when
  the derivative is strongly negative — i.e. when delay is already
  collapsing, dropping more packets is pointless.  This is how the
  higher-order features adapt the PDP to the congestion *dynamics*,
  not just its level.

The run-time ``update_pCAM()`` action implements the cognitive
controller: it watches the measured delay EWMA and reprograms the
zeroth-order thresholds when the delay leaves the programmed band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.calibration import FeatureScaler, scale_params
from repro.core.pcam_cell import PCAMParams, prog_pcam
from repro.core.pcam_fold import fold_pipeline
from repro.core.pcam_pipeline import PCAMPipeline
from repro.core.programming import update_pcam
from repro.packet import Packet
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView
from repro.netfunc.aqm.derivatives import FeatureExtractor

__all__ = [
    "DEFAULT_MAX_DEVIATION_S",
    "DEFAULT_TARGET_DELAY_S",
    "PCAMAQM",
    "StageSpec",
    "default_stage_programs",
]

#: The paper's programmed latency objective (Figure 8).
DEFAULT_TARGET_DELAY_S = 0.020
DEFAULT_MAX_DEVIATION_S = 0.010

#: Hardware voltage window features are mapped into (inside the
#: device's encodable range).
_V_LO, _V_HI = -1.8, 3.8
#: Per-cell analog search energy at the dataset's low-energy states.
_DEFAULT_ENERGY_PER_CELL_J = 1e-17
#: Two threshold memristors per pCAM cell.
_CELLS_PER_STAGE = 2


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: feature-domain parameters plus the feature
    range its DAC scaler covers."""

    params: PCAMParams
    feature_lo: float
    feature_hi: float

    def __post_init__(self) -> None:
        if self.feature_lo >= self.feature_hi:
            raise ValueError("empty feature range")
        if self.params.m1 < self.feature_lo \
                or self.params.m4 > self.feature_hi:
            raise ValueError(
                f"stage thresholds [{self.params.m1}, {self.params.m4}] "
                f"exceed the scaler range "
                f"[{self.feature_lo}, {self.feature_hi}]")


def default_stage_programs(
        target_delay_s: float = DEFAULT_TARGET_DELAY_S,
        max_deviation_s: float = DEFAULT_MAX_DEVIATION_S,
        order: int = 3,
        use_buffer: bool = True) -> dict[str, StageSpec]:
    """The paper's AQM program in feature units.

    Returns stage specs keyed by feature name, in pipeline order.
    ``order`` limits how many derivative stages are built (0 = only
    the zeroth-order features; the A1 ablation sweeps this).
    """
    if target_delay_s <= 0:
        raise ValueError(f"target must be positive: {target_delay_s!r}")
    if not 0 < max_deviation_s < target_delay_s:
        raise ValueError(
            f"deviation must be in (0, target): {max_deviation_s!r}")
    if not 0 <= order <= 3:
        raise ValueError(f"order must be 0..3: {order!r}")

    lo = target_delay_s - max_deviation_s
    hi = target_delay_s + max_deviation_s
    # The PDP plateau extends well past the band; the falling edge sits
    # beyond any delay the scaler can express, so it is never reached.
    delay_range = (0.0, 10.0 * target_delay_s)
    delay_params = prog_pcam(m1=lo, m2=hi,
                             m3=8.0 * target_delay_s,
                             m4=9.5 * target_delay_s)

    # Derivative veto stages: full weight unless the derivative is
    # clearly negative (congestion already collapsing).  Scales grow
    # by the differentiation bandwidth per order.
    def veto(scale: float, pmin: float) -> StageSpec:
        params = prog_pcam(m1=-10.0 * scale, m2=-0.5 * scale,
                           m3=80.0 * scale, m4=95.0 * scale,
                           pmin=pmin, pmax=1.0)
        return StageSpec(params=params, feature_lo=-20.0 * scale,
                         feature_hi=100.0 * scale)

    sojourn_specs = [
        StageSpec(params=delay_params,
                  feature_lo=delay_range[0], feature_hi=delay_range[1]),
        veto(scale=0.1, pmin=0.10),    # d/dt sojourn   [s/s]
        veto(scale=2.0, pmin=0.25),    # d2/dt2 sojourn [s/s^2]
        veto(scale=40.0, pmin=0.40),   # d3/dt3 sojourn [s/s^3]
    ]
    buffer_specs = [
        StageSpec(params=delay_params,
                  feature_lo=delay_range[0], feature_hi=delay_range[1]),
        veto(scale=0.1, pmin=0.10),
        veto(scale=2.0, pmin=0.25),
        veto(scale=40.0, pmin=0.40),
    ]
    names = FeatureExtractor.NAMES
    programs: dict[str, StageSpec] = {}
    for index in range(order + 1):
        programs[names.sojourn[index]] = sojourn_specs[index]
    if use_buffer:
        for index in range(order + 1):
            programs[names.buffer[index]] = buffer_specs[index]
    return programs


class PCAMAQM(AQMAlgorithm):
    """Active queue management on the analog pCAM pipeline.

    Parameters
    ----------
    target_delay_s, max_deviation_s:
        The latency objective (paper: 20 ms +- 10 ms).
    order:
        Highest derivative order used as a feature (0..3).
    use_buffer:
        Include the buffer-size feature family.
    composition:
        Stage composition rule (paper: ``"product"``).
    adaptation:
        Enable the run-time ``update_pCAM()`` controller.
    adaptation_interval_s:
        How often the controller may reprogram the hardware.
    priority_weights:
        Multiplier on the PDP per priority class; defaults to
        ``{0: 0.5}`` so class-0 (high priority) traffic sees half the
        drop probability, as the paper describes.
    stage_programs:
        Override the default program entirely (expert knob for the
        ablations).
    ledger:
        Energy ledger charged per analog search.
    energy_per_cell_j:
        Per-cell read energy (calibrate from the dataset with
        :func:`repro.core.calibration.analog_read_energy_j`).
    ecn_enabled:
        Mark ECN-capable packets (``ect`` field) with Congestion
        Experienced instead of dropping them — the action a responsive
        sender (:class:`repro.simnet.responsive.AIMDFlowGenerator`)
        reacts to.
    rng:
        Random generator for the Bernoulli drop decisions.
    """

    name = "pCAM-AQM"

    def __init__(self,
                 target_delay_s: float = DEFAULT_TARGET_DELAY_S,
                 max_deviation_s: float = DEFAULT_MAX_DEVIATION_S,
                 order: int = 3,
                 use_buffer: bool = True,
                 composition: str = "product",
                 adaptation: bool = True,
                 adaptation_interval_s: float = 0.25,
                 priority_weights: dict[int, float] | None = None,
                 stage_programs: dict[str, StageSpec] | None = None,
                 ledger: EnergyLedger | None = None,
                 energy_per_cell_j: float = _DEFAULT_ENERGY_PER_CELL_J,
                 feature_tau_s: float = 0.02,
                 ecn_enabled: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        self.target_delay_s = target_delay_s
        self.max_deviation_s = max_deviation_s
        self.order = order
        self.use_buffer = use_buffer
        self.adaptation = adaptation
        self.adaptation_interval_s = adaptation_interval_s
        self.priority_weights = (priority_weights if priority_weights
                                 is not None else {0: 0.5})
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.energy_per_cell_j = energy_per_cell_j
        self.feature_tau_s = feature_tau_s
        self.ecn_enabled = ecn_enabled
        self._rng = rng or np.random.default_rng()
        #: Observation hook: called with (voltage-domain feature batch,
        #: raw PDP array) after every pipeline evaluation, before
        #: priority weighting.  The graceful-degradation shadow oracle
        #: attaches here; None disables monitoring.
        self.output_monitor: Callable[[dict[str, np.ndarray], np.ndarray],
                                      None] | None = None
        # The compiled admission lane (enabled by the pipeline
        # compiler, never by default): uniform chunks are judged by
        # one constant-folded scalar evaluation broadcast over the
        # chunk instead of n redundant identical rows.  Inert until
        # :meth:`enable_compiled_lane`, and silently demoted back to
        # the batch kernel whenever the fold cannot prove exactness
        # (fault injected, monitor attached, device cells, DACs).
        self._compiled_lane = False
        self._folded = None

        self._base_specs = (dict(stage_programs)
                            if stage_programs is not None
                            else default_stage_programs(
                                target_delay_s, max_deviation_s,
                                order=order, use_buffer=use_buffer))
        self._scalers = {
            name: FeatureScaler(spec.feature_lo, spec.feature_hi,
                                _V_LO, _V_HI)
            for name, spec in self._base_specs.items()}
        # Saturate each feature inside its stage's deterministic
        # plateau: a congestion signal beyond all bounds must read as
        # "maximum drop weight", never wrap past M4 into the falling
        # mismatch region of the five-region cell.
        self._input_caps = {
            name: spec.params.m3
            for name, spec in self._base_specs.items()}
        voltage_params = {
            name: scale_params(spec.params, self._scalers[name])
            for name, spec in self._base_specs.items()}
        self.pipeline = PCAMPipeline.from_params(
            voltage_params, composition=composition)
        self._extractor = FeatureExtractor(order=max(order, 1),
                                           tau_s=feature_tau_s)
        self.reset_runtime_state()

    def reset_runtime_state(self) -> None:
        """Clear controller state without touching the programs."""
        self._delay_ewma: float | None = None
        self._last_adaptation: float | None = None
        self._threshold_shift = 1.0
        self.adaptations = 0
        self.evaluations = 0
        self.last_pdp = 0.0
        self.ecn_marks = 0

    def reset(self) -> None:
        """Restore the base program and clear controller state."""
        self.reset_runtime_state()
        self._extractor.reset()
        self._reprogram_delay_stages(1.0)

    def retarget(self, target_delay_s: float,
                 max_deviation_s: float | None = None) -> None:
        """Change the latency objective at run time.

        Rebuilds the zeroth-order stage programs (and their scalers)
        for the new band and pushes them through ``update_pCAM`` —
        the knob a closed-loop controller turns when an operator
        intent changes.  Derivative veto stages are unaffected.
        """
        if max_deviation_s is None:
            # Preserve the relative band width.
            max_deviation_s = (self.max_deviation_s
                               / self.target_delay_s * target_delay_s)
        fresh = default_stage_programs(target_delay_s, max_deviation_s,
                                       order=self.order,
                                       use_buffer=self.use_buffer)
        names = FeatureExtractor.NAMES
        for name in (names.sojourn[0], names.buffer[0]):
            if name not in fresh:
                continue
            spec = fresh[name]
            self._base_specs[name] = spec
            self._scalers[name] = FeatureScaler(
                spec.feature_lo, spec.feature_hi, _V_LO, _V_HI)
            self._input_caps[name] = spec.params.m3
            update_pcam(self.pipeline, name,
                        scale_params(spec.params, self._scalers[name]))
        self.target_delay_s = target_delay_s
        self.max_deviation_s = max_deviation_s
        self._threshold_shift = 1.0

    # ------------------------------------------------------------------
    # Feature path
    # ------------------------------------------------------------------
    def _raw_features(self, queue: QueueView,
                      now: float) -> dict[str, float]:
        """Extractor output in feature units (pre-cap, pre-DAC)."""
        backlog_delay = 8.0 * queue.backlog_bytes / queue.service_rate_bps
        # The arriving packet will wait at least the current backlog's
        # drain time; before the first departure the measured sojourn
        # is still zero, so the backlog estimate is the floor.
        sojourn = max(queue.last_sojourn_s, backlog_delay)
        return self._extractor.update(now, sojourn, backlog_delay)

    def _features(self, queue: QueueView, now: float) -> dict[str, float]:
        raw = self._raw_features(queue, now)
        features: dict[str, float] = {}
        for name in self.pipeline.stage_names:
            capped = min(raw[name], self._input_caps[name])
            features[name] = self._scalers[name].to_voltage(capped)
        return features

    def _charge_searches(self, n: int) -> None:
        """Book ``n`` per-packet pipeline searches.

        One quantum per packet (all stages' cells), identical in the
        batch kernel and the folded lane, booked via
        :meth:`~repro.energy.ledger.EnergyLedger.charge_quanta` so the
        joules are bit-identical however the same packets are chunked
        or sharded.
        """
        self.ledger.charge_quanta(
            "pcam_aqm.search",
            len(self.pipeline) * _CELLS_PER_STAGE * self.energy_per_cell_j,
            n)

    def drop_probabilities(self, features: "Mapping[str, np.ndarray]",
                           priorities: np.ndarray | None = None
                           ) -> np.ndarray:
        """Batch Packet Drop Probabilities from feature-unit arrays.

        ``features`` maps each stage name to an array of raw feature
        values (same units the extractor produces — seconds of sojourn
        time, etc.); each is capped into its stage's deterministic
        plateau, DAC-scaled to voltages, and evaluated through the
        pipeline's batch kernel in one pass.  With ``priorities`` the
        per-class drop weights are applied element-wise, matching the
        scalar enqueue path.
        """
        names = self.pipeline.stage_names
        batch: dict[str, np.ndarray] = {}
        for name in names:
            if name not in features:
                raise KeyError(f"missing feature {name!r}")
            raw = np.atleast_1d(np.asarray(features[name], dtype=float))
            capped = np.minimum(raw, self._input_caps[name])
            batch[name] = self._scalers[name].to_voltage_array(capped)
        pdps = self.pipeline.evaluate_batch(batch)
        n = int(pdps.shape[0])
        self.evaluations += n
        self._charge_searches(n)
        self.last_pdp = float(pdps[-1])
        if self.output_monitor is not None:
            self.output_monitor(batch, pdps)
        if priorities is not None:
            weights = np.array([self.priority_weights.get(int(p), 1.0)
                                for p in np.atleast_1d(priorities)])
            pdps = pdps * weights
        return pdps

    def enable_compiled_lane(self) -> bool:
        """Opt in to folded uniform admission (the compiler's hook).

        Returns whether the pipeline folds *right now*; the lane
        re-checks validity on every chunk regardless, so a later
        reprogramming or fault injection demotes that chunk to the
        batch kernel transparently.
        """
        self._compiled_lane = True
        self._folded = None
        return fold_pipeline(self.pipeline) is not None

    def disable_compiled_lane(self) -> None:
        """Return to the always-batch admission path."""
        self._compiled_lane = False
        self._folded = None

    @property
    def compiled_lane(self) -> bool:
        """True when folded uniform admission is enabled."""
        return self._compiled_lane

    def _folded_drop_probabilities(self, raw: Mapping[str, float],
                                   n: int,
                                   priorities: np.ndarray) -> \
            np.ndarray | None:
        """PDPs via the constant-folded scalar kernel, or None.

        Bit-identical to ``drop_probabilities`` over ``np.full``
        columns: one scalar cap/DAC-scale/five-region evaluation per
        stage, broadcast over the chunk, with identical evaluation
        counters, ledger charge, ``last_pdp`` and priority weighting.
        ``None`` demotes the chunk to the batch kernel (fold invalid,
        monitor attached, or a DAC-routed scaler whose quantisation
        the fold does not model).
        """
        if self.output_monitor is not None:
            return None
        folded = self._folded
        if folded is None or not folded.matches(self.pipeline):
            folded = fold_pipeline(self.pipeline)
            self._folded = folded
            if folded is None:
                return None
        values = []
        for name in folded.stage_names:
            scaler = self._scalers[name]
            if scaler.dac is not None:
                return None
            capped = min(raw[name], self._input_caps[name])
            values.append(scaler.to_voltage(capped))
        pdp = float(folded.evaluate_uniform(values, count=n))
        self.evaluations += n
        self._charge_searches(n)
        self.last_pdp = pdp
        pdps = np.full(n, pdp)
        weights = np.array([self.priority_weights.get(int(p), 1.0)
                            for p in priorities])
        return pdps * weights

    def pdp(self, queue: QueueView, now: float) -> float:
        """Evaluate the pipeline: the raw Packet Drop Probability."""
        raw = self._raw_features(queue, now)
        batch = {name: np.array([raw[name]])
                 for name in self.pipeline.stage_names}
        return float(self.drop_probabilities(batch)[0])

    def drop_decisions(self, drop_probabilities: np.ndarray,
                       rng: np.random.Generator | None = None
                       ) -> np.ndarray:
        """Vectorised Bernoulli drop draws, one uniform per packet.

        Consumes exactly one variate per element from the generator's
        stream, in order — so a batch draw reproduces the decisions a
        scalar loop would make from the same seeded stream.
        """
        p = np.atleast_1d(np.asarray(drop_probabilities, dtype=float))
        generator = rng if rng is not None else self._rng
        return generator.random(p.shape[0]) < p

    def reprogram_intended(self,
                           write_energy_per_cell_j: float = 1e-12) -> int:
        """Re-run ``prog_pCAM`` on every stage with its intended params.

        This is the retry action of the graceful-degradation path: a
        refresh scrub that clears transient faults (drift) and
        resamples programming variance, while stuck cells stay stuck.
        Charges the write energy to the ledger and returns the number
        of stages reprogrammed.
        """
        count = 0
        for name in self.pipeline.stage_names:
            stage = self.pipeline.stage(name)
            intended = getattr(stage, "intended_params", stage.params)
            stage.program(intended)
            count += 1
        self.ledger.charge_quanta(
            "pcam_aqm.reprogram",
            _CELLS_PER_STAGE * write_energy_per_cell_j, count)
        return count

    # ------------------------------------------------------------------
    # The update_pCAM() controller
    # ------------------------------------------------------------------
    def _reprogram_delay_stages(self, shift: float) -> None:
        """Scale the zeroth-order thresholds by ``shift`` and program."""
        names = FeatureExtractor.NAMES
        for name in (names.sojourn[0], names.buffer[0]):
            if name not in self._base_specs:
                continue
            base = self._base_specs[name].params
            scaled = PCAMParams.canonical(
                m1=base.m1 * shift, m2=base.m2 * shift,
                m3=base.m3, m4=base.m4,
                pmax=base.pmax, pmin=base.pmin)
            update_pcam(self.pipeline, name,
                        scale_params(scaled, self._scalers[name]))
        self._threshold_shift = shift

    def _maybe_adapt(self, now: float) -> None:
        if not self.adaptation or self._delay_ewma is None:
            return
        if self._last_adaptation is not None and \
                now - self._last_adaptation < self.adaptation_interval_s:
            return
        self._last_adaptation = now
        error = self._delay_ewma - self.target_delay_s
        if abs(error) <= self.max_deviation_s:
            return
        # Delay above the band -> drop earlier (shrink thresholds);
        # below the band with active shift -> relax back toward 1.0.
        if error > 0:
            shift = max(0.4, self._threshold_shift * 0.8)
        else:
            shift = min(1.0, self._threshold_shift * 1.25)
        if shift != self._threshold_shift:
            self._reprogram_delay_stages(shift)
            self.adaptations += 1

    # ------------------------------------------------------------------
    # AQM hooks
    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        """Bernoulli drop (or ECN mark) from the analog PDP."""
        return bool(self.on_enqueue_batch([packet], queue, now)[0])

    def on_enqueue_batch(self, packets: Sequence[Packet],
                         queue: QueueView, now: float) -> np.ndarray:
        """Batched admission: one pipeline search for a packet chunk.

        All packets in the chunk are judged against the queue state at
        chunk start (the scalar loop re-reads the backlog after every
        admission; a chunk trades that refresh for one vectorised
        evaluation).  One uniform variate is consumed per packet, in
        packet order, so seeded runs stay reproducible chunk size
        aside — and a chunk of one is exactly the scalar path.
        """
        n = len(packets)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if queue.backlog_packets <= 2:
            return np.zeros(n, dtype=bool)
        raw = self._raw_features(queue, now)
        priorities = np.array([packet.priority for packet in packets])
        pdps = None
        if self._compiled_lane:
            pdps = self._folded_drop_probabilities(raw, n, priorities)
        if pdps is None:
            features = {name: np.full(n, raw[name])
                        for name in self.pipeline.stage_names}
            pdps = self.drop_probabilities(features,
                                           priorities=priorities)
        self._maybe_adapt(now)
        congested = self.drop_decisions(pdps)
        drops = np.array(congested, dtype=bool)
        if self.ecn_enabled:
            for index, packet in enumerate(packets):
                if drops[index] and packet.field("ect", False):
                    # Congestion Experienced: signal, don't discard.
                    packet.fields["ce"] = True
                    self.ecn_marks += 1
                    drops[index] = False
        return drops

    def on_dequeue(self, packet: Packet, queue: QueueView,
                   now: float, sojourn_s: float) -> bool:
        # Never drops at the head; just tracks the measured delay for
        # the adaptation controller.
        """Track the measured delay EWMA (never drops at head)."""
        if self._delay_ewma is None:
            self._delay_ewma = sojourn_s
        else:
            self._delay_ewma += 0.05 * (sojourn_s - self._delay_ewma)
        return False

    @property
    def delay_ewma_s(self) -> float:
        """The controller's running estimate of the queue delay."""
        return self._delay_ewma if self._delay_ewma is not None else 0.0

    @property
    def threshold_shift(self) -> float:
        """Current multiplier applied to the zeroth-order thresholds."""
        return self._threshold_shift
