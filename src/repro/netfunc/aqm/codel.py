"""Controlled Delay AQM (CoDel, RFC 8289) — digital baseline.

CoDel works on *sojourn time* at dequeue: when the minimum sojourn
stays above ``target`` for a full ``interval``, it enters a dropping
state and drops at increasing frequency (next drop after
``interval / sqrt(count)``) until the delay recovers.
"""

from __future__ import annotations

import math

from repro.packet import Packet
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView

__all__ = ["CoDelAqm"]


class CoDelAqm(AQMAlgorithm):
    """CoDel per RFC 8289 (target 5 ms, interval 100 ms by default)."""

    name = "CoDel"

    def __init__(self, target_s: float = 0.005,
                 interval_s: float = 0.100,
                 mtu_bytes: int = 1500) -> None:
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target and interval must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        self.mtu_bytes = mtu_bytes
        self.reset()

    def reset(self) -> None:
        """Return to the initial (non-dropping) controller state."""
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._last_count = 0
        self._dropping = False

    @property
    def dropping(self) -> bool:
        """True while in the dropping state."""
        return self._dropping

    def _control_law(self, time_s: float, count: int) -> float:
        return time_s + self.interval_s / math.sqrt(max(count, 1))

    def _should_drop(self, queue: QueueView, now: float,
                     sojourn_s: float) -> bool:
        """RFC 8289's ok_to_drop: sustained delay above target?"""
        if sojourn_s < self.target_s or queue.backlog_bytes <= self.mtu_bytes:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval_s
            return False
        return now >= self._first_above_time

    def on_dequeue(self, packet: Packet, queue: QueueView,
                   now: float, sojourn_s: float) -> bool:
        """RFC 8289 dequeue logic: True discards the head packet."""
        ok_to_drop = self._should_drop(queue, now, sojourn_s)
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
                return False
            if now >= self._drop_next:
                self._count += 1
                self._drop_next = self._control_law(self._drop_next,
                                                    self._count)
                return True
            return False
        if ok_to_drop:
            self._dropping = True
            # Resume the drop frequency reached last time if the bad
            # episode is recent (RFC 8289's count reuse heuristic).
            if (self._count > 2
                    and now - self._drop_next < 8.0 * self.interval_s):
                self._count = self._count - 2
            else:
                self._count = 1
            self._last_count = self._count
            self._drop_next = self._control_law(now, self._count)
            return True
        return False
