"""Proportional Integral controller Enhanced (PIE, RFC 8033) — baseline.

PIE estimates queueing delay from the backlog and drain rate, updates
a drop probability with a PI controller every ``t_update``, and drops
arriving packets with that probability.  Includes RFC 8033's
auto-scaling of the controller gains at small probabilities, the
exponential decay when the queue empties, and the burst allowance.
"""

from __future__ import annotations

import numpy as np

from repro.packet import Packet
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView

__all__ = ["PIEAqm"]


class PIEAqm(AQMAlgorithm):
    """PIE per RFC 8033 (target 15 ms, update period 15 ms defaults)."""

    name = "PIE"

    def __init__(self, target_delay_s: float = 0.015,
                 t_update_s: float = 0.015,
                 alpha: float = 0.125, beta: float = 1.25,
                 max_burst_s: float = 0.150,
                 rng: np.random.Generator | None = None) -> None:
        if target_delay_s <= 0 or t_update_s <= 0:
            raise ValueError("target delay and update period "
                             "must be positive")
        self.target_delay_s = target_delay_s
        self.t_update_s = t_update_s
        self.alpha = alpha
        self.beta = beta
        self.max_burst_s = max_burst_s
        self._rng = rng or np.random.default_rng()
        self.reset()

    def reset(self) -> None:
        """Return to the initial controller state (burst allowance refilled)."""
        self._p = 0.0
        self._qdelay_old = 0.0
        self._burst_allowance = self.max_burst_s
        self._last_update: float | None = None

    @property
    def drop_probability(self) -> float:
        """The PI controller's current drop probability."""
        return self._p

    def _queue_delay(self, queue: QueueView) -> float:
        return 8.0 * queue.backlog_bytes / queue.service_rate_bps

    def _scaled_gains(self) -> tuple[float, float]:
        """RFC 8033 4.2: shrink the gains while p is small."""
        if self._p < 0.000001:
            factor = 1.0 / 2048
        elif self._p < 0.00001:
            factor = 1.0 / 512
        elif self._p < 0.0001:
            factor = 1.0 / 128
        elif self._p < 0.001:
            factor = 1.0 / 32
        elif self._p < 0.01:
            factor = 1.0 / 8
        elif self._p < 0.1:
            factor = 1.0 / 2
        else:
            factor = 1.0
        return self.alpha * factor, self.beta * factor

    def _update(self, queue: QueueView, now: float) -> None:
        if self._last_update is not None \
                and now - self._last_update < self.t_update_s:
            return
        qdelay = self._queue_delay(queue)
        alpha, beta = self._scaled_gains()
        self._p += (alpha * (qdelay - self.target_delay_s)
                    + beta * (qdelay - self._qdelay_old))
        # Exponential decay when the queue has fully drained.
        if qdelay == 0.0 and self._qdelay_old == 0.0:
            self._p *= 0.98
        self._p = min(1.0, max(0.0, self._p))
        self._qdelay_old = qdelay
        if self._burst_allowance > 0.0:
            self._burst_allowance = max(
                0.0, self._burst_allowance - self.t_update_s)
        self._last_update = now

    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        """RFC 8033 enqueue logic: True drops the arriving packet."""
        self._update(queue, now)
        if self._burst_allowance > 0.0:
            return False
        # RFC 8033 safeguards: never drop tiny queues.
        if (self._queue_delay(queue) < 0.5 * self.target_delay_s
                and self._p < 0.2):
            return False
        if queue.backlog_packets <= 2:
            return False
        return bool(self._rng.random() < self._p)
