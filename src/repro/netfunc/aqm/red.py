"""Random Early Detection (Floyd & Jacobson 1993) — digital baseline.

The classic probabilistic AQM the paper cites [10]: an EWMA of the
queue length is compared against two thresholds; between them the
drop probability ramps linearly, with the count-based correction that
spreads drops uniformly in time.
"""

from __future__ import annotations

import numpy as np

from repro.packet import Packet
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView

__all__ = ["REDAqm"]


class REDAqm(AQMAlgorithm):
    """RED with the gentle linear ramp and idle-time decay.

    Parameters follow the original paper's recommendations:
    ``weight`` = 0.002, ``max_p`` = 0.1, thresholds in packets.
    """

    name = "RED"

    def __init__(self, min_threshold_packets: float = 50.0,
                 max_threshold_packets: float = 150.0,
                 max_p: float = 0.1, weight: float = 0.002,
                 rng: np.random.Generator | None = None) -> None:
        if min_threshold_packets >= max_threshold_packets:
            raise ValueError("min threshold must be below max threshold")
        if not 0.0 < max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1]: {max_p!r}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1]: {weight!r}")
        self.min_threshold = min_threshold_packets
        self.max_threshold = max_threshold_packets
        self.max_p = max_p
        self.weight = weight
        self._rng = rng or np.random.default_rng()
        self.reset()

    def reset(self) -> None:
        """Clear the EWMA and drop-spacing state."""
        self._avg = 0.0
        self._count = -1
        self._idle_since: float | None = 0.0

    @property
    def average_queue(self) -> float:
        """Current EWMA of the queue length [packets]."""
        return self._avg

    def _update_average(self, queue: QueueView, now: float) -> None:
        backlog = queue.backlog_packets
        if backlog == 0:
            if self._idle_since is None:
                self._idle_since = now
            return
        if self._idle_since is not None:
            # Decay the average across the idle period as if m small
            # packets had been transmitted (RED's idle handling).
            transmission_s = 8.0 * 500.0 / queue.service_rate_bps
            m = (now - self._idle_since) / transmission_s
            self._avg *= (1.0 - self.weight) ** m
            self._idle_since = None
        self._avg += self.weight * (backlog - self._avg)

    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        """RED admission: True drops the arriving packet."""
        self._update_average(queue, now)
        if self._avg < self.min_threshold:
            self._count = -1
            return False
        if self._avg >= self.max_threshold:
            self._count = 0
            return True
        self._count += 1
        fraction = ((self._avg - self.min_threshold)
                    / (self.max_threshold - self.min_threshold))
        p_b = self.max_p * fraction
        denominator = 1.0 - self._count * p_b
        p_a = p_b / denominator if denominator > 0 else 1.0
        if self._rng.random() < p_a:
            self._count = 0
            return True
        return False
