"""AQM algorithm interface and the trivial tail-drop baseline.

Every AQM in this package — the digital baselines (RED, CoDel, PIE)
and the paper's pCAM-based analog AQM — implements the same two hooks:

* :meth:`AQMAlgorithm.on_enqueue` — called before a packet is admitted;
  returning True drops it at the door (RED, PIE, pCAM-AQM style).
* :meth:`AQMAlgorithm.on_dequeue` — called when a packet reaches the
  head of line; returning True discards it instead of serving it
  (CoDel style).

The queue exposes itself to the algorithm through the narrow
:class:`QueueView` protocol so AQMs cannot reach into scheduling
internals.
"""

from __future__ import annotations

import abc
from typing import Protocol, Sequence

import numpy as np

from repro.packet import Packet

__all__ = ["AQMAlgorithm", "QueueView", "TailDropAQM"]


class QueueView(Protocol):
    """What an AQM algorithm may observe about its queue."""

    @property
    def backlog_packets(self) -> int:
        """Packets currently queued."""
        ...

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued."""
        ...

    @property
    def capacity_packets(self) -> int:
        """Hard buffer limit in packets."""
        ...

    @property
    def service_rate_bps(self) -> float:
        """Drain rate of the output line [bits/s]."""
        ...

    @property
    def last_sojourn_s(self) -> float:
        """Sojourn time of the most recently served packet [s]."""
        ...


class AQMAlgorithm(abc.ABC):
    """Base class for active queue management policies."""

    #: Human-readable algorithm name (used in benchmark tables).
    name: str = "aqm"

    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        """Return True to drop the arriving packet."""
        return False

    def on_enqueue_batch(self, packets: Sequence[Packet],
                         queue: QueueView, now: float) -> np.ndarray:
        """Per-packet drop verdicts for a chunk of arrivals.

        The default consults :meth:`on_enqueue` packet by packet;
        batch-capable algorithms (the pCAM AQM) override this with a
        vectorised evaluation.
        """
        return np.array([self.on_enqueue(packet, queue, now)
                         for packet in packets], dtype=bool)

    def on_dequeue(self, packet: Packet, queue: QueueView,
                   now: float, sojourn_s: float) -> bool:
        """Return True to discard the head packet instead of serving it."""
        return False

    def reset(self) -> None:
        """Clear any controller state between runs."""


class TailDropAQM(AQMAlgorithm):
    """No active management: drop only on buffer overflow.

    The queue itself enforces the capacity limit; this policy never
    drops proactively, making it the "without AQM" curve of Figure 8.
    """

    name = "tail-drop"
