"""Cognitive load balancing on pCAM probabilistic matches.

One of Figure 5's analog network functions: backend selection weighs
*partial* matches of the current load state against per-backend
acceptance profiles.  Each backend stores one pCAM word whose cell
accepts the backend's comfortable load region; a query with the
backend's instantaneous load returns a *fitness* in [0, 1], and
traffic is split proportionally to fitness — something a digital
match/mismatch TCAM cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pcam_cell import PCAMCell, prog_pcam
from repro.energy.ledger import EnergyLedger

__all__ = ["Backend", "PCAMLoadBalancer"]

#: Per-decision analog search energy (two device reads per cell).
_ENERGY_PER_DECISION_J = 2e-17


@dataclass
class Backend:
    """One server behind the balancer."""

    name: str
    capacity: float = 1.0
    active: float = 0.0
    served: int = 0

    @property
    def utilisation(self) -> float:
        """Instantaneous load fraction (can exceed 1 under overload)."""
        return self.active / self.capacity if self.capacity > 0 else 1.0


class PCAMLoadBalancer:
    """Probabilistic least-loaded selection via pCAM fitness matching.

    Each backend's cell is programmed to fully match utilisation below
    ``comfort`` and fall off linearly to zero at ``saturation``; the
    pick is a weighted draw over the per-backend fitness values.
    """

    def __init__(self, backends: list[Backend],
                 comfort: float = 0.7, saturation: float = 1.2,
                 ledger: EnergyLedger | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if not backends:
            raise ValueError("need at least one backend")
        if not 0.0 < comfort < saturation:
            raise ValueError(
                f"need 0 < comfort < saturation: {comfort}, {saturation}")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names: {names}")
        self.backends = list(backends)
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._rng = rng or np.random.default_rng()
        # Acceptance cell: full match for util <= comfort, ramp to
        # zero at saturation.  (Utilisation is never negative, so the
        # rising edge sits below zero and is never exercised.)
        self._cell = PCAMCell(prog_pcam(
            m1=-2.0, m2=-1.0, m3=comfort, m4=saturation))
        self.decisions = 0

    def fitness(self) -> np.ndarray:
        """Per-backend analog match values for the current loads."""
        self.ledger.charge("load_balancer.search",
                           len(self.backends) * _ENERGY_PER_DECISION_J)
        return np.array([self._cell.response(backend.utilisation)
                         for backend in self.backends])

    def pick(self) -> Backend:
        """Draw a backend proportionally to its analog fitness.

        When every backend is saturated (all fitness zero) the least
        utilised one is returned — the best partial match, which is
        exactly the "closest matching stored policy for a query with
        zero matches" capability of RQ1.
        """
        weights = self.fitness()
        total = float(weights.sum())
        if total <= 0.0:
            index = int(np.argmin(
                [backend.utilisation for backend in self.backends]))
        else:
            index = int(self._rng.choice(len(self.backends),
                                         p=weights / total))
        backend = self.backends[index]
        backend.served += 1
        self.decisions += 1
        return backend

    def assign(self, load: float = 0.05) -> Backend:
        """Pick a backend and account ``load`` units of active work."""
        if load < 0:
            raise ValueError(f"load must be non-negative: {load!r}")
        backend = self.pick()
        backend.active += load
        return backend

    def release(self, backend: Backend, load: float = 0.05) -> None:
        """Return ``load`` units of capacity to a backend."""
        backend.active = max(0.0, backend.active - load)
