"""Longest-prefix-match IP lookup on the digital TCAM.

One of the high-precision functions that stays in the digital domain
(RQ2): routes are stored as ternary prefixes (prefix bits cared-for,
host bits wildcarded) with priority = prefix length, so the TCAM's
highest-priority match *is* the longest prefix.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

import numpy as np

from repro.energy.ledger import EnergyLedger
from repro.tcam.tcam import TCAM, TernaryPattern, key_from_int, key_matrix

__all__ = ["IPLookup", "Route"]


@dataclass(frozen=True)
class Route:
    """A routing entry: prefix -> next hop."""

    prefix: str
    next_hop: str

    def __post_init__(self) -> None:
        ipaddress.ip_network(self.prefix, strict=False)  # validates


class IPLookup:
    """An LPM forwarding table over a 32-bit TCAM.

    Parameters
    ----------
    tcam:
        Optionally inject a TCAM variant (e.g.
        :class:`repro.tcam.MemristorTCAM`) to compare energy; defaults
        to a transistor TCAM.
    """

    WIDTH = 32

    def __init__(self, tcam: TCAM | None = None,
                 ledger: EnergyLedger | None = None) -> None:
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.tcam = tcam if tcam is not None else TCAM(
            self.WIDTH, ledger=self.ledger)
        self._next_hops: list[str] = []
        self._routes: list[Route] = []

    def __len__(self) -> int:
        return len(self._routes)

    @property
    def generation(self) -> int:
        """Version of the forwarding table; bumps on every mutation.

        The data-plane flow cache keys on this so route updates
        invalidate cached next hops.
        """
        return self.tcam.generation

    def add_route(self, prefix: str, next_hop: str) -> None:
        """Install ``prefix`` (e.g. ``"10.1.0.0/16"``) -> ``next_hop``."""
        route = Route(prefix=prefix, next_hop=next_hop)
        network = ipaddress.ip_network(prefix, strict=False)
        if network.version != 4:
            raise ValueError(f"only IPv4 prefixes supported: {prefix!r}")
        length = network.prefixlen
        value = int(network.network_address)
        mask = ((1 << length) - 1) << (self.WIDTH - length) \
            if length else 0
        pattern = TernaryPattern.from_value(value, self.WIDTH, mask=mask)
        # Longer prefixes must win: priority = 32 - prefix length.
        self.tcam.add(pattern, priority=self.WIDTH - length)
        self._next_hops.append(next_hop)
        self._routes.append(route)

    def lookup(self, address: str) -> str | None:
        """Next hop for ``address``, or None if no route matches."""
        value = int(ipaddress.ip_address(address))
        result = self.tcam.search(key_from_int(value, self.WIDTH))
        if result.best_index is None:
            return None
        return self._next_hops[result.best_index]

    def lookup_batch(self, addresses: np.ndarray) -> list[str | None]:
        """Next hops for a column of uint32 destination addresses.

        One vectorised longest-prefix-match pass; per-address results
        and charged energy are identical to looping :meth:`lookup`.
        """
        result = self.tcam.search_batch(
            key_matrix(addresses, self.WIDTH))
        return [self._next_hops[index] if index >= 0 else None
                for index in result.best_indices]

    @property
    def routes(self) -> tuple[Route, ...]:
        """All installed routes, in insertion order."""
        return tuple(self._routes)
