"""Network functions: digital (lookup, firewall) and cognitive
(AQM, load balancing, traffic analysis)."""

from repro.netfunc.decision_tree import (
    AnalogDecisionTree,
    CARTTree,
    tree_to_boxes,
)
from repro.netfunc.firewall import Action, Firewall, FirewallRule
from repro.netfunc.load_balancer import Backend, PCAMLoadBalancer
from repro.netfunc.lookup import IPLookup, Route
from repro.netfunc.pattern_match import Match, PatternMatcher
from repro.netfunc.traffic_analysis import (
    FlowFeatures,
    TrafficClassProfile,
    TrafficClassifier,
)

__all__ = [
    "Action",
    "AnalogDecisionTree",
    "Backend",
    "CARTTree",
    "Match",
    "PatternMatcher",
    "tree_to_boxes",
    "Firewall",
    "FirewallRule",
    "FlowFeatures",
    "IPLookup",
    "PCAMLoadBalancer",
    "Route",
    "TrafficClassProfile",
    "TrafficClassifier",
]
