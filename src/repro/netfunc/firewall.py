"""5-tuple ACL firewall on the digital TCAM.

The second high-precision, deterministic function of Figure 5 ("IP
Filtering", "Hard Network Policies"): first matching rule wins, with
an explicit default action.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass

import numpy as np

from repro.packet import Packet
from repro.energy.ledger import EnergyLedger
from repro.tcam.tcam import TCAM, TernaryPattern, key_from_int

__all__ = ["Action", "Firewall", "FirewallRule"]


class Action(enum.Enum):
    """Verdict of an ACL rule: permit or deny."""
    PERMIT = "permit"
    DENY = "deny"


def _prefix_bits(prefix: str | None, width: int) -> tuple[int, int]:
    """(value, mask) of an IPv4 prefix, or fully wildcarded."""
    if prefix is None:
        return 0, 0
    network = ipaddress.ip_network(prefix, strict=False)
    mask = (((1 << network.prefixlen) - 1)
            << (width - network.prefixlen)) if network.prefixlen else 0
    return int(network.network_address), mask


def _exact_bits(value: int | None, width: int) -> tuple[int, int]:
    """(value, mask) of an exact field, or fully wildcarded."""
    if value is None:
        return 0, 0
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return value, (1 << width) - 1


@dataclass(frozen=True)
class FirewallRule:
    """One ACL line; ``None`` fields are wildcards."""

    action: Action
    src_prefix: str | None = None
    dst_prefix: str | None = None
    src_port: int | None = None
    dst_port: int | None = None
    protocol: int | None = None


class Firewall:
    """First-match 5-tuple ACL over a 104-bit TCAM.

    Key layout (MSB -> LSB): src_ip(32) dst_ip(32) src_port(16)
    dst_port(16) protocol(8).
    """

    WIDTH = 32 + 32 + 16 + 16 + 8

    def __init__(self, default_action: Action = Action.DENY,
                 tcam: TCAM | None = None,
                 ledger: EnergyLedger | None = None) -> None:
        self.default_action = default_action
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.tcam = tcam if tcam is not None else TCAM(
            self.WIDTH, ledger=self.ledger)
        self._actions: list[Action] = []
        self._rules: list[FirewallRule] = []

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def generation(self) -> int:
        """Version of the rule set; bumps whenever the table mutates.

        Classification results cached outside the firewall (the
        data-plane flow cache) key on this to invalidate on update.
        """
        return self.tcam.generation

    def add_rule(self, rule: FirewallRule) -> None:
        """Append an ACL line (earlier lines take precedence)."""
        sections = (
            _prefix_bits(rule.src_prefix, 32),
            _prefix_bits(rule.dst_prefix, 32),
            _exact_bits(rule.src_port, 16),
            _exact_bits(rule.dst_port, 16),
            _exact_bits(rule.protocol, 8),
        )
        widths = (32, 32, 16, 16, 8)
        value = 0
        mask = 0
        for (section_value, section_mask), width in zip(sections, widths):
            value = (value << width) | section_value
            mask = (mask << width) | section_mask
        pattern = TernaryPattern.from_value(value, self.WIDTH, mask=mask)
        self.tcam.add(pattern, priority=len(self._rules))
        self._actions.append(rule.action)
        self._rules.append(rule)

    def _key_for(self, packet: Packet) -> int:
        src = int(ipaddress.ip_address(packet.field("src_ip", "0.0.0.0")))
        dst = int(ipaddress.ip_address(packet.field("dst_ip", "0.0.0.0")))
        sport = int(packet.field("src_port", 0))
        dport = int(packet.field("dst_port", 0))
        proto = int(packet.field("protocol", 0))
        key = src
        key = (key << 32) | dst
        key = (key << 16) | sport
        key = (key << 16) | dport
        key = (key << 8) | proto
        return key

    def check(self, packet: Packet) -> Action:
        """First-match decision for a parsed packet."""
        result = self.tcam.search(
            key_from_int(self._key_for(packet), self.WIDTH))
        if result.best_index is None:
            return self.default_action
        return self._actions[result.best_index]

    def check_batch(self, key_bits: np.ndarray) -> list[Action]:
        """First-match decisions for a (batch, WIDTH) bit-key matrix.

        One vectorised TCAM pass over the whole batch; per-key match
        semantics and charged energy are identical to calling
        :meth:`check` in a loop.  Build the key matrix columnar-style
        with :class:`repro.dataplane.fastpath.PacketBatch`.
        """
        result = self.tcam.search_batch(key_bits)
        return [self._actions[index] if index >= 0 else
                self.default_action for index in result.best_indices]

    def permits(self, packet: Packet) -> bool:
        """True when the ACL verdict for the packet is PERMIT."""
        return self.check(packet) is Action.PERMIT
