"""Multi-pattern payload matching on (memristor) TCAMs.

Sec. 7 cites the memristor-TCAM regular-expression engines for
network intrusion detection (Graves et al. [15-17], 12x throughput
over FPGAs).  This module implements the core of that idea: a set of
byte patterns — literals with single-character wildcards (``?``) —
compiled into ternary TCAM words, matched against every sliding
window of a payload in one search per offset.

Each pattern byte becomes 8 ternary bits; a ``?`` byte becomes 8
don't-cares, and patterns shorter than the window are padded with
don't-cares, so one TCAM search simultaneously tests *every* stored
signature at an offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.ledger import EnergyLedger
from repro.tcam.mtcam import MemristorTCAM
from repro.tcam.tcam import TCAM, TernaryPattern

__all__ = ["Match", "PatternMatcher", "compile_pattern"]

#: Wildcard byte in pattern strings.
WILDCARD_BYTE = ord("?")


def compile_pattern(pattern: bytes, window_bytes: int) -> TernaryPattern:
    """Compile a byte pattern into a ternary word of 8*window bits.

    ``?`` bytes match anything; the tail beyond the pattern length is
    padded with don't-cares.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if len(pattern) > window_bytes:
        raise ValueError(
            f"pattern of {len(pattern)} bytes exceeds the "
            f"{window_bytes}-byte window")
    bits = np.zeros(8 * window_bytes, dtype=bool)
    care = np.zeros(8 * window_bytes, dtype=bool)
    for index, byte in enumerate(pattern):
        if byte == WILDCARD_BYTE:
            continue
        for bit in range(8):
            position = 8 * index + bit
            bits[position] = (byte >> (7 - bit)) & 1 == 1
            care[position] = True
    return TernaryPattern(bits=bits, care=care)


def _window_key(window: bytes, window_bytes: int) -> np.ndarray:
    key = np.zeros(8 * window_bytes, dtype=bool)
    for index, byte in enumerate(window):
        for bit in range(8):
            key[8 * index + bit] = (byte >> (7 - bit)) & 1 == 1
    return key


@dataclass(frozen=True)
class Match:
    """One pattern hit in a scanned payload."""

    offset: int
    pattern_index: int
    pattern: bytes


class PatternMatcher:
    """A TCAM-backed multi-pattern scanner.

    Parameters
    ----------
    window_bytes:
        TCAM word width in bytes; must cover the longest pattern.
    use_memristor_tcam:
        Back the scanner with the memristor TCAM (the cited designs)
        instead of a transistor TCAM.
    """

    def __init__(self, window_bytes: int = 8, *,
                 use_memristor_tcam: bool = True,
                 ledger: EnergyLedger | None = None) -> None:
        if window_bytes < 1:
            raise ValueError(
                f"window must be >= 1 byte: {window_bytes!r}")
        self.window_bytes = window_bytes
        self.ledger = ledger if ledger is not None else EnergyLedger()
        width = 8 * window_bytes
        if use_memristor_tcam:
            self._tcam: TCAM = MemristorTCAM(width, ledger=self.ledger)
        else:
            self._tcam = TCAM(width, ledger=self.ledger)
        self._patterns: list[bytes] = []

    def __len__(self) -> int:
        return len(self._patterns)

    def add_pattern(self, pattern: bytes | str) -> int:
        """Install a signature; returns its index."""
        if isinstance(pattern, str):
            pattern = pattern.encode()
        self._tcam.add(compile_pattern(pattern, self.window_bytes))
        self._patterns.append(pattern)
        return len(self._patterns) - 1

    def _pattern_span(self, index: int) -> int:
        return len(self._patterns[index])

    def scan(self, payload: bytes) -> list[Match]:
        """All pattern occurrences in the payload.

        One TCAM search per byte offset; each search tests every
        stored signature in parallel (the TCAM's whole point).
        """
        matches: list[Match] = []
        if not self._patterns:
            return matches
        length = len(payload)
        for offset in range(length):
            window = payload[offset:offset + self.window_bytes]
            # Pad the tail so end-of-payload windows stay searchable;
            # padded bytes only meet don't-care tail bits of patterns
            # short enough to fit, and candidate hits are re-checked
            # against the true span below.
            padded = window.ljust(self.window_bytes, b"\x00")
            result = self._tcam.search(
                _window_key(padded, self.window_bytes))
            for index in result.matched_indices:
                if offset + self._pattern_span(index) <= length:
                    matches.append(Match(
                        offset=offset, pattern_index=index,
                        pattern=self._patterns[index]))
        return matches

    def contains(self, payload: bytes) -> bool:
        """True when any signature occurs in the payload."""
        return bool(self.scan(payload))

    @property
    def search_energy_j(self) -> float:
        """Cumulative TCAM search energy for all scans."""
        return self.ledger.total
