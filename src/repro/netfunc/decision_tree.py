"""Decision-tree inference on the analog CAM (paper Sec. 7).

The related work the pCAM builds on used analog CAMs as "hardware
accelerator(s) ... for decision tree computation" (Graves et al. [14],
Pedretti et al. [40]): every root-to-leaf path of a tree is a box of
per-feature intervals, so the whole tree becomes one CAM search —
each stored word encodes one leaf's box and the matching word's class
is the prediction, in a single analog cycle.

This module provides the full path:

* :class:`CARTTree` — a small, dependency-free CART learner (Gini
  impurity, axis-aligned splits),
* :func:`tree_to_boxes` — root-to-leaf path extraction,
* :class:`AnalogDecisionTree` — the boxes compiled into a
  :class:`~repro.core.pcam_array.PCAMArray`, with graded fall-off at
  the box edges so out-of-distribution inputs still classify to the
  nearest leaf (RQ1's partial match).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.core.pcam_cell import PCAMParams
from repro.energy.ledger import EnergyLedger

__all__ = ["AnalogDecisionTree", "CARTTree", "TreeNode",
           "tree_to_boxes"]


@dataclass
class TreeNode:
    """One node of a fitted CART tree."""

    #: Index of the feature this node splits on (None at a leaf).
    feature: int | None = None
    #: Split threshold: left subtree takes ``x[feature] <= threshold``.
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    #: Majority class at a leaf.
    prediction: int | None = None

    @property
    def is_leaf(self) -> bool:
        """True when the node carries a class prediction."""
        return self.prediction is not None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    fractions = counts / labels.size
    return float(1.0 - np.sum(fractions ** 2))


class CARTTree:
    """A minimal CART classifier (Gini impurity, binary splits)."""

    def __init__(self, max_depth: int = 4,
                 min_samples_leaf: int = 4) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth!r}")
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1: {min_samples_leaf!r}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: TreeNode | None = None
        self.n_features = 0

    @property
    def root(self) -> TreeNode:
        """The fitted root node (RuntimeError before fit())."""
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return self._root

    @classmethod
    def from_root(cls, root: TreeNode,
                  n_features: int) -> "CARTTree":
        """Wrap a hand-built (or generated) node tree as a fitted tree.

        Lets property tests and compilers exercise arbitrary tree
        shapes without going through the learner.
        """
        if n_features < 1:
            raise ValueError(
                f"n_features must be >= 1: {n_features!r}")
        tree = cls()
        tree._root = root
        tree.n_features = n_features
        return tree

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "CARTTree":
        """Grow the tree on (n_samples, n_features) data."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.size == 0:
            raise ValueError(
                f"bad training shapes: {x.shape}, {y.shape}")
        self.n_features = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray,
              depth: int) -> TreeNode:
        majority = int(np.bincount(y.astype(int)).argmax())
        if (depth >= self.max_depth
                or y.size < 2 * self.min_samples_leaf
                or _gini(y) == 0.0):
            return TreeNode(prediction=majority)
        best = self._best_split(x, y)
        if best is None:
            return TreeNode(prediction=majority)
        feature, threshold = best
        mask = x[:, feature] <= threshold
        return TreeNode(
            feature=feature, threshold=threshold,
            left=self._grow(x[mask], y[mask], depth + 1),
            right=self._grow(x[~mask], y[~mask], depth + 1))

    def _best_split(self, x: np.ndarray,
                    y: np.ndarray) -> tuple[int, float] | None:
        parent = _gini(y)
        best_gain = 1e-9
        best: tuple[int, float] | None = None
        for feature in range(x.shape[1]):
            values = np.unique(x[:, feature])
            if values.size < 2:
                continue
            midpoints = 0.5 * (values[:-1] + values[1:])
            for threshold in midpoints:
                mask = x[:, feature] <= threshold
                n_left = int(mask.sum())
                n_right = y.size - n_left
                if (n_left < self.min_samples_leaf
                        or n_right < self.min_samples_leaf):
                    continue
                gain = parent - (n_left * _gini(y[mask])
                                 + n_right * _gini(y[~mask])) / y.size
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    def predict_one(self, sample: Sequence[float]) -> int:
        """Class of a single sample by tree traversal."""
        node = self.root
        while not node.is_leaf:
            assert node.feature is not None
            if sample[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
            assert node is not None
        assert node.prediction is not None
        return node.prediction

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Classes for an (n_samples, n_features) array."""
        x = np.asarray(features, dtype=float)
        return np.array([self.predict_one(row) for row in x])

    def predict_leaf_one(self, sample: Sequence[float]) -> int:
        """Depth-first (left-first) leaf index reached by one sample.

        This numbering is the row order the aCAM compiler stores
        leaves in, so it is the digital side of the leaf-for-leaf
        equivalence check.
        """
        node = self.root
        index = 0
        while not node.is_leaf:
            assert node.feature is not None
            assert node.left is not None and node.right is not None
            if sample[node.feature] <= node.threshold:
                node = node.left
            else:
                index += _count_leaves(node.left)
                node = node.right
        return index

    def predict_leaves(self, features: np.ndarray) -> np.ndarray:
        """Depth-first leaf index per row of a feature matrix."""
        x = np.asarray(features, dtype=float)
        return np.array([self.predict_leaf_one(row) for row in x],
                        dtype=int)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return _count_leaves(self.root)


def _count_leaves(node: TreeNode) -> int:
    if node.is_leaf:
        return 1
    assert node.left is not None and node.right is not None
    return _count_leaves(node.left) + _count_leaves(node.right)


def tree_to_boxes(tree: CARTTree,
                  feature_ranges: Sequence[tuple[float, float]]
                  ) -> list[tuple[int, list[tuple[float, float]]]]:
    """Extract (class, per-feature interval box) per leaf."""
    if len(feature_ranges) != tree.n_features:
        raise ValueError(
            f"need one range per feature: {len(feature_ranges)} != "
            f"{tree.n_features}")
    boxes: list[tuple[int, list[tuple[float, float]]]] = []

    def walk(node: TreeNode,
             bounds: list[tuple[float, float]]) -> None:
        if node.is_leaf:
            boxes.append((node.prediction, [tuple(b) for b in bounds]))
            return
        assert node.feature is not None
        lo, hi = bounds[node.feature]
        left_bounds = list(bounds)
        left_bounds[node.feature] = (lo, min(hi, node.threshold))
        walk(node.left, left_bounds)
        right_bounds = list(bounds)
        right_bounds[node.feature] = (max(lo, node.threshold), hi)
        walk(node.right, right_bounds)

    walk(tree.root, [tuple(r) for r in feature_ranges])
    return boxes


class AnalogDecisionTree:
    """A fitted CART tree compiled into a pCAM policy array.

    Every leaf box becomes one stored word; classification is one
    parallel analog search.  ``fade_fraction`` controls how far the
    probabilistic ramps extend beyond each box edge (as a fraction of
    the feature range), which is what lets out-of-range inputs fall
    to the *nearest* leaf instead of nothing.
    """

    def __init__(self, tree: CARTTree,
                 feature_names: Sequence[str],
                 feature_ranges: Sequence[tuple[float, float]],
                 fade_fraction: float = 0.05,
                 ledger: EnergyLedger | None = None) -> None:
        if len(feature_names) != tree.n_features:
            raise ValueError("need one name per feature")
        if not 0.0 < fade_fraction < 1.0:
            raise ValueError(
                f"fade fraction must be in (0, 1): {fade_fraction!r}")
        self.feature_names = tuple(feature_names)
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._array = PCAMArray(self.feature_names)
        self._classes: list[int] = []
        for prediction, box in tree_to_boxes(tree, feature_ranges):
            params: dict[str, PCAMParams] = {}
            for name, (lo, hi), (range_lo, range_hi) in zip(
                    self.feature_names, box, feature_ranges):
                fade = fade_fraction * (range_hi - range_lo)
                params[name] = PCAMParams.canonical(
                    m1=lo - fade, m2=lo, m3=hi, m4=hi + fade)
            self._array.add(PCAMWord.from_params(params))
            self._classes.append(prediction)

    @property
    def n_words(self) -> int:
        """Stored pCAM words (one per tree leaf)."""
        return len(self._array)

    def classify(self, sample: Mapping[str, float]
                 ) -> tuple[int, float]:
        """(predicted class, match probability) in one analog search."""
        result = self._array.search(
            {name: float(sample[name]) for name in self.feature_names})
        self.ledger.charge("decision_tree.search", result.energy_j)
        if result.best_index is None:
            raise RuntimeError("compiled tree has no leaves")
        return (self._classes[result.best_index],
                result.best_probability)

    def agreement_with(self, tree: CARTTree,
                       features: np.ndarray) -> float:
        """Fraction of samples where the analog search matches the
        digital tree traversal."""
        x = np.asarray(features, dtype=float)
        digital = tree.predict(x)
        hits = 0
        for row, expected in zip(x, digital):
            sample = dict(zip(self.feature_names, row))
            predicted, _ = self.classify(sample)
            hits += int(predicted == expected)
        return hits / len(digital)
