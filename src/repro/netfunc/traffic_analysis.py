"""Cognitive traffic analysis via pCAM partial matching.

Figure 5 lists traffic analysis among the analog network functions:
classify flows by how *closely* their feature vector (packet size,
inter-arrival time, burstiness) matches stored class profiles.  A
digital TCAM can only answer "inside/outside the profile box"; the
pCAM array returns a graded similarity per class, so a flow that
matches no profile exactly is still assigned to the nearest one —
the RQ1 "zero matches" capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.core.pcam_cell import PCAMParams
from repro.energy.ledger import EnergyLedger

__all__ = ["FlowFeatures", "TrafficClassProfile", "TrafficClassifier"]

#: The feature fields every profile constrains.
FEATURES = ("mean_packet_size", "mean_interarrival_s", "burstiness")


@dataclass(frozen=True)
class FlowFeatures:
    """Aggregate statistics of one observed flow."""

    mean_packet_size: float
    mean_interarrival_s: float
    burstiness: float

    def as_query(self) -> dict[str, float]:
        """The features as a pCAM query mapping."""
        return {
            "mean_packet_size": self.mean_packet_size,
            "mean_interarrival_s": self.mean_interarrival_s,
            "burstiness": self.burstiness,
        }

    @classmethod
    def from_samples(cls, sizes: np.ndarray,
                     arrival_times: np.ndarray) -> "FlowFeatures":
        """Compute features from raw per-packet observations.

        Burstiness is the coefficient of variation of inter-arrival
        times (1.0 for Poisson, > 1 for bursty traffic).
        """
        sizes = np.asarray(sizes, dtype=float)
        times = np.sort(np.asarray(arrival_times, dtype=float))
        if sizes.size == 0 or times.size < 2:
            raise ValueError("need at least 2 packets to build features")
        gaps = np.diff(times)
        mean_gap = float(gaps.mean())
        burstiness = (float(gaps.std() / mean_gap)
                      if mean_gap > 0 else 0.0)
        return cls(mean_packet_size=float(sizes.mean()),
                   mean_interarrival_s=mean_gap,
                   burstiness=burstiness)


@dataclass(frozen=True)
class TrafficClassProfile:
    """A stored class: per-feature acceptance windows.

    Each window is (accept_lo, accept_hi, fade) — full match inside
    [accept_lo, accept_hi], linear falloff over ``fade`` on both
    sides.
    """

    name: str
    windows: Mapping[str, tuple[float, float, float]]

    def __post_init__(self) -> None:
        missing = [f for f in FEATURES if f not in self.windows]
        if missing:
            raise ValueError(f"profile {self.name!r} missing windows "
                             f"for: {missing}")

    def to_word(self) -> PCAMWord:
        """Compile the profile's windows into a pCAM word."""
        params: dict[str, PCAMParams] = {}
        for feature, (lo, hi, fade) in self.windows.items():
            if lo > hi or fade <= 0:
                raise ValueError(
                    f"bad window for {feature!r}: {(lo, hi, fade)}")
            params[feature] = PCAMParams.canonical(
                m1=lo - fade, m2=lo, m3=hi, m4=hi + fade)
        return PCAMWord.from_params(params)


class TrafficClassifier:
    """Nearest-profile flow classification on a pCAM array."""

    def __init__(self, profiles: list[TrafficClassProfile],
                 ledger: EnergyLedger | None = None) -> None:
        if not profiles:
            raise ValueError("need at least one profile")
        names = [profile.name for profile in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate profile names: {names}")
        self.profiles = list(profiles)
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._array = PCAMArray(FEATURES)
        for profile in profiles:
            self._array.add(profile.to_word())

    def scores(self, flow: FlowFeatures) -> dict[str, float]:
        """Graded similarity of the flow to every stored class."""
        result = self._array.search(flow.as_query())
        self.ledger.charge("traffic_analysis.search", result.energy_j)
        return {profile.name: float(probability)
                for profile, probability in
                zip(self.profiles, result.probabilities)}

    def classify(self, flow: FlowFeatures) -> tuple[str, float]:
        """(best class name, its match probability).

        A flow outside every profile box still classifies — to the
        class with the highest partial match.
        """
        scores = self.scores(flow)
        best = max(scores, key=scores.get)  # type: ignore[arg-type]
        return best, scores[best]
