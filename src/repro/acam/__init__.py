"""Analog CAM: interval cells, one-shot row search, tree compilation.

The pCAM of the paper is one instance of a broader primitive the
related work develops (Li et al., "Analog content addressable
memories with memristors"; Bazzi et al., "Efficient Analog CAM
Design"; Pedretti et al., tree inference in aCAM): cells that store
an analog *interval* as two programmable memristor conductances, and
rows that match an entire feature vector in a single search cycle.

This package builds that primitive on top of the repo's pCAM
machinery and maps :mod:`repro.netfunc.decision_tree` onto it:

* :mod:`repro.acam.cell`    — interval cells (conductance-bounded
  windows with analog margin/sharpness skirts);
* :mod:`repro.acam.array`   — vectorised multi-row search with
  seedable fault-plan hooks and a differential row oracle;
* :mod:`repro.acam.compiler`— root-to-leaf paths flattened to rows,
  so tree inference is one ``search_batch`` per chunk;
* :mod:`repro.acam.energy`  — the published-figure energy model;
* :mod:`repro.acam.comparison` — the Table-1-style comparison vs the
  digital tree walk and a range-expanded TCAM.
"""

from repro.acam.array import (
    ACAMArray,
    ACAMBatchResult,
    ACAMFaultPlan,
    ACAMSearchResult,
)
from repro.acam.cell import (
    ACAMCell,
    ACAMInterval,
    ConductanceMap,
    UNBOUNDED,
)
from repro.acam.comparison import (
    EnergyTableRow,
    build_energy_table,
    energy_table_json,
    format_energy_table,
    reference_classifier,
)
from repro.acam.compiler import (
    ACAMDecisionTree,
    TreePath,
    compile_tree,
    tree_paths,
)
from repro.acam.energy import ACAMEnergyModel, published_acam_energy

__all__ = [
    "ACAMArray",
    "ACAMBatchResult",
    "ACAMCell",
    "ACAMDecisionTree",
    "ACAMEnergyModel",
    "ACAMFaultPlan",
    "ACAMInterval",
    "ACAMSearchResult",
    "ConductanceMap",
    "EnergyTableRow",
    "TreePath",
    "UNBOUNDED",
    "build_energy_table",
    "compile_tree",
    "energy_table_json",
    "format_energy_table",
    "published_acam_energy",
    "reference_classifier",
    "tree_paths",
]
