"""The aCAM interval cell: a conductance-bounded analog window.

Li et al.'s 6T2M analog CAM cell stores an *interval* as two memristor
conductances: the low-bound transistor conducts while the search
voltage is above the lower threshold, the high-bound one while it is
below the upper, and the match line stays high only when the input
falls between them.  This module realises the same abstraction on top
of the repo's pCAM transfer function:

* the deterministic-match window ``[M2, M3]`` is the stored interval;
* an unbounded side ("any value above lo") maps to a sentinel far
  outside every feature scale, exactly like a TCAM wildcard bit;
* an analog *margin* widens ``[M1, M4]`` beyond the window so
  near-miss inputs produce a graded sub-1.0 response instead of a
  hard zero (the paper's RQ1 partial match), with *sharpness*
  steepening the skirt.

Ramp responses are strictly below ``pmax``, so a deterministic match
is only ever produced *inside* the stored interval — the property the
one-shot decision-tree equivalence proof rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams

__all__ = ["ACAMCell", "ACAMInterval", "ConductanceMap", "UNBOUNDED"]

#: Sentinel magnitude for an unbounded interval side.  Far outside any
#: feature scale this repo produces, yet finite so the pCAM transfer
#: function never sees an inf/nan.
UNBOUNDED = 1e30

#: Relative width of the hairline ramp a zero-margin interval keeps on
#: each finite side.  The pCAM transfer function reads ``x >= m4`` (and
#: ``x <= m1``) as mismatch, so a genuinely zero-width ramp would make
#: the stored window *open* at its bounds; a hairline ramp keeps the
#: closed-interval semantics (``x == hi`` matches deterministically)
#: that the decision-tree equivalence proof needs, while anything
#: measurably outside the window still responds strictly below pmax.
_EDGE_EPS = 1e-9


@dataclass(frozen=True)
class ConductanceMap:
    """Linear map between threshold values and cell conductances.

    The programmable window of a real aCAM cell is stored as two
    memristor conductances inside the device's resistance window
    (kilo-ohms to giga-ohms for the Nb:SrTiO3 devices of the paper).
    The map is linear in conductance across ``[v_min, v_max]``;
    values outside the span clip to the rails, which is exactly what
    programming a threshold beyond the storable range does in silicon.
    """

    v_min: float = 0.0
    v_max: float = 1.0
    g_min_s: float = 1e-9
    g_max_s: float = 1e-3

    def __post_init__(self) -> None:
        if not self.v_min < self.v_max:
            raise ValueError(
                f"need v_min < v_max: {self.v_min!r}, {self.v_max!r}")
        if not 0.0 < self.g_min_s < self.g_max_s:
            raise ValueError(
                f"need 0 < g_min < g_max: {self.g_min_s!r}, "
                f"{self.g_max_s!r}")

    def conductance(self, value: float) -> float:
        """Stored conductance for a threshold value [S]."""
        t = (value - self.v_min) / (self.v_max - self.v_min)
        t = min(max(t, 0.0), 1.0)
        return self.g_min_s + t * (self.g_max_s - self.g_min_s)

    def value(self, conductance_s: float) -> float:
        """Threshold value realised by a stored conductance."""
        t = ((conductance_s - self.g_min_s)
             / (self.g_max_s - self.g_min_s))
        t = min(max(t, 0.0), 1.0)
        return self.v_min + t * (self.v_max - self.v_min)


@dataclass(frozen=True)
class ACAMInterval:
    """One stored analog interval, optionally unbounded on a side.

    ``None`` bounds are wildcards ("don't care" below/above), the
    aCAM generalisation of a TCAM X bit.  ``margin`` extends an
    analog skirt beyond each *finite* bound, in feature units;
    ``sharpness`` divides the skirt width, so higher sharpness means
    a steeper ramp.  ``margin=0`` degenerates to a purely digital
    window.
    """

    lo: float | None = None
    hi: float | None = None
    margin: float = 0.0
    sharpness: float = 1.0

    def __post_init__(self) -> None:
        for name in ("lo", "hi"):
            bound = getattr(self, name)
            if bound is not None and not np.isfinite(bound):
                raise ValueError(
                    f"{name} must be finite or None: {bound!r}")
        if self.lo is not None and self.hi is not None \
                and self.lo > self.hi:
            raise ValueError(
                f"need lo <= hi: {self.lo!r} > {self.hi!r}")
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0: {self.margin!r}")
        if self.sharpness <= 0:
            raise ValueError(
                f"sharpness must be > 0: {self.sharpness!r}")

    @classmethod
    def wildcard(cls) -> "ACAMInterval":
        """An interval matching every input (both sides unbounded)."""
        return cls(lo=None, hi=None)

    @property
    def skirt(self) -> float:
        """Width of the analog ramp beyond each finite bound."""
        return self.margin / self.sharpness

    def to_pcam_params(self) -> PCAMParams:
        """The pCAM programming realising this interval.

        The deterministic window ``[M2, M3]`` is the interval itself
        (sentinels standing in for unbounded sides); the skirt only
        extends beyond *finite* bounds — a wildcard side has nothing
        to fade towards — and a zero margin degrades to the hairline
        ramp of :data:`_EDGE_EPS` so the window stays closed.
        """
        m2 = -UNBOUNDED if self.lo is None else float(self.lo)
        m3 = UNBOUNDED if self.hi is None else float(self.hi)

        def skirt_for(bound: float) -> float:
            if self.skirt > 0.0:
                return self.skirt
            return _EDGE_EPS * max(1.0, abs(bound))

        m1 = m2 if self.lo is None else m2 - skirt_for(m2)
        m4 = m3 if self.hi is None else m3 + skirt_for(m3)
        return PCAMParams.canonical(m1=m1, m2=m2, m3=m3, m4=m4)

    def contains(self, values: np.ndarray) -> np.ndarray:
        """Digital membership test (closed on both finite bounds)."""
        x = np.asarray(values, dtype=float)
        inside = np.ones(x.shape, dtype=bool)
        if self.lo is not None:
            inside &= x >= self.lo
        if self.hi is not None:
            inside &= x <= self.hi
        return inside


class ACAMCell:
    """One interval cell: an :class:`ACAMInterval` held in a pCAM cell.

    The underlying :class:`~repro.core.pcam_cell.PCAMCell` is the
    fault-injection surface — robustness models attach to it exactly
    as they do to any other pCAM cell, and ``intended_interval``
    stays clean for the differential oracle.
    """

    def __init__(self, interval: ACAMInterval) -> None:
        self._interval = interval
        self._pcam = PCAMCell(interval.to_pcam_params())

    @classmethod
    def from_conductances(cls, g_lo_s: float, g_hi_s: float,
                          cmap: ConductanceMap, *,
                          margin: float = 0.0,
                          sharpness: float = 1.0) -> "ACAMCell":
        """Program a cell from its two stored conductances."""
        return cls(ACAMInterval(lo=cmap.value(g_lo_s),
                                hi=cmap.value(g_hi_s),
                                margin=margin, sharpness=sharpness))

    @property
    def pcam(self) -> PCAMCell:
        """The underlying pCAM cell (fault-injection surface)."""
        return self._pcam

    @property
    def intended_interval(self) -> ACAMInterval:
        """The interval the programmer asked for (fault-free)."""
        return self._interval

    @property
    def fault(self):
        """The injected fault instance, or None on a healthy cell."""
        return self._pcam.fault

    def program(self, interval: ACAMInterval) -> None:
        """Reprogram the stored interval (faults decide the outcome)."""
        self._interval = interval
        self._pcam.program(interval.to_pcam_params())

    def inject_fault(self, fault) -> None:
        """Attach a materialised cell fault to the underlying cell."""
        self._pcam.inject_fault(fault)

    def clear_fault(self) -> None:
        """Detach any fault and restore the intended interval."""
        self._pcam.clear_fault()

    def conductance_bounds(self, cmap: ConductanceMap
                           ) -> tuple[float, float]:
        """The two stored conductances realising the interval [S].

        Unbounded sides clip to the map's rails — the hardware
        realisation of a wildcard is a bound programmed to the edge
        of the storable window.
        """
        lo = -UNBOUNDED if self._interval.lo is None \
            else self._interval.lo
        hi = UNBOUNDED if self._interval.hi is None \
            else self._interval.hi
        return cmap.conductance(lo), cmap.conductance(hi)

    def match_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorised analog response over an input array."""
        return self._pcam.response_array(np.asarray(values, dtype=float))

    def match(self, value: float) -> float:
        """Analog response for one input (batch of one)."""
        return float(self.match_batch(np.asarray([value]))[0])

    def __repr__(self) -> str:
        i = self._interval
        lo = "-inf" if i.lo is None else f"{i.lo:g}"
        hi = "+inf" if i.hi is None else f"{i.hi:g}"
        return (f"ACAMCell([{lo}, {hi}], margin={i.margin:g}, "
                f"sharpness={i.sharpness:g})")
