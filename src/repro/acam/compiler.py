"""Tree-to-aCAM compilation: one root-to-leaf path per stored row.

Pedretti et al. showed decision-tree inference collapses onto an
analog CAM: every root-to-leaf path is a conjunction of per-feature
threshold constraints — an axis-aligned *box* — and a box is exactly
one aCAM row of interval cells.  Classification of a whole feature
batch is then a single ``search_batch`` instead of a per-sample,
per-node traversal.

Equivalence with the digital traversal is exact, not approximate,
and rests on three properties:

1. paths are emitted **depth-first, left child first** — the same
   order :meth:`repro.netfunc.decision_tree.CARTTree.predict_leaf_one`
   numbers leaves;
2. boxes tile the whole feature space (root constraints are
   unbounded), and interval matching is closed on both ends, so a
   query on a split boundary ``x == t`` deterministically matches
   *both* children's boxes — and the argmax tie-break to the lowest
   row index picks the left one, exactly like the digital
   ``x <= t -> left`` rule;
3. analog margin skirts respond strictly below ``pmax``, so a ramp
   can never outrank a row the query deterministically matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.acam.array import ACAMArray
from repro.acam.cell import ACAMInterval
from repro.acam.energy import ACAMEnergyModel
from repro.energy.ledger import EnergyLedger
from repro.netfunc.decision_tree import CARTTree, TreeNode

__all__ = ["ACAMDecisionTree", "TreePath", "compile_tree",
           "tree_paths"]


@dataclass(frozen=True)
class TreePath:
    """One root-to-leaf path flattened to a per-feature box.

    ``intervals[j]`` is the ``(lo, hi)`` constraint accumulated on
    feature ``j`` along the path; ``None`` bounds are unconstrained.
    ``leaf`` is the depth-first (left-first) leaf index — the row
    index the path compiles to.
    """

    leaf: int
    label: int
    depth: int
    intervals: tuple[tuple[float | None, float | None], ...]


def tree_paths(tree: CARTTree) -> tuple[TreePath, ...]:
    """Flatten every root-to-leaf path, depth-first and left-first."""
    paths: list[TreePath] = []

    def walk(node: TreeNode, depth: int,
             bounds: list[tuple[float | None, float | None]]) -> None:
        if node.is_leaf:
            assert node.prediction is not None
            paths.append(TreePath(leaf=len(paths),
                                  label=int(node.prediction),
                                  depth=depth,
                                  intervals=tuple(bounds)))
            return
        assert node.feature is not None
        assert node.left is not None and node.right is not None
        lo, hi = bounds[node.feature]
        threshold = float(node.threshold)
        left = list(bounds)
        left[node.feature] = (
            lo, threshold if hi is None else min(hi, threshold))
        walk(node.left, depth + 1, left)
        right = list(bounds)
        right[node.feature] = (
            threshold if lo is None else max(lo, threshold), hi)
        walk(node.right, depth + 1, right)

    walk(tree.root, 0, [(None, None)] * tree.n_features)
    return tuple(paths)


def compile_tree(tree: CARTTree, feature_names: Sequence[str], *,
                 margin: float = 0.0, sharpness: float = 1.0,
                 energy_model: ACAMEnergyModel | None = None,
                 ledger: EnergyLedger | None = None,
                 account: str = "acam.search"
                 ) -> tuple[ACAMArray, np.ndarray, tuple[TreePath, ...]]:
    """Compile a fitted tree into (bank, leaf labels, paths)."""
    if len(feature_names) != tree.n_features:
        raise ValueError(
            f"need one name per feature: {len(feature_names)} != "
            f"{tree.n_features}")
    paths = tree_paths(tree)
    array = ACAMArray(feature_names, energy_model=energy_model,
                      ledger=ledger, account=account)
    for path in paths:
        array.add_row([ACAMInterval(lo=lo, hi=hi, margin=margin,
                                    sharpness=sharpness)
                       for lo, hi in path.intervals])
    labels = np.array([path.label for path in paths], dtype=int)
    return array, labels, paths


class ACAMDecisionTree:
    """A fitted CART tree compiled for one-shot aCAM inference.

    ``predict_batch`` runs one bank search per chunk — every leaf box
    evaluated in parallel per query — and maps the winning row back
    to its class.  ``margin`` adds the analog nearest-leaf fall-off
    beyond each box face (out-of-envelope inputs still classify to
    the closest leaf instead of nothing), without ever disturbing the
    in-envelope digital equivalence.
    """

    def __init__(self, tree: CARTTree,
                 feature_names: Sequence[str], *,
                 margin: float = 0.0, sharpness: float = 1.0,
                 energy_model: ACAMEnergyModel | None = None,
                 ledger: EnergyLedger | None = None,
                 account: str = "acam.search") -> None:
        self.feature_names = tuple(feature_names)
        self.array, self.labels, self.paths = compile_tree(
            tree, feature_names, margin=margin, sharpness=sharpness,
            energy_model=energy_model, ledger=ledger, account=account)

    @property
    def n_rows(self) -> int:
        """Stored rows (one per tree leaf)."""
        return self.array.n_rows

    def _matrix(self, features: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if x.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature matrix has {x.shape[1]} columns, tree has "
                f"{len(self.feature_names)} features")
        return x

    def predict_leaves(self, features: np.ndarray,
                       chunk_size: int | None = None) -> np.ndarray:
        """Winning row (== depth-first leaf index) per sample."""
        x = self._matrix(features)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1: {chunk_size!r}")
        step = len(x) if chunk_size is None else chunk_size
        leaves = [self.array.search_batch(x[start:start + step]).best_rows
                  for start in range(0, len(x), max(step, 1))]
        return np.concatenate(leaves) if leaves \
            else np.zeros(0, dtype=int)

    def predict_batch(self, features: np.ndarray,
                      chunk_size: int | None = None) -> np.ndarray:
        """Classes for a feature matrix, one bank search per chunk."""
        return self.labels[self.predict_leaves(features, chunk_size)]

    def predict(self, sample: Sequence[float]) -> int:
        """Class of one sample — a batch of one through the bank."""
        return int(self.predict_batch(
            np.asarray(sample, dtype=float).reshape(1, -1))[0])
