"""The aCAM energy model, anchored to the published figures.

Two figures carry the whole model, both already committed elsewhere in
this repo so the comparison tables stay internally consistent:

* the dataset's low-energy analog read — "the lowest energy
  consumption states require only about 0.01 fJ/bit" (Table 1 pCAM
  row, :data:`repro.tcam.baselines.TABLE1_PCAM_PUBLISHED`, and the
  default ``energy_per_cell_j`` of
  :class:`~repro.core.pcam_array.PCAMArray`) — charged per interval
  cell per search;
* a match-line precharge an order of magnitude above the cell read
  (0.1 fJ/row), the term Li et al. identify as the dominant aCAM
  search cost: every row's match line is precharged whether or not
  the row ends up matching.

Search latency is the 1 ns reference read shared with the pCAM row.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ACAMEnergyModel", "published_acam_energy"]

#: The dataset's low-energy analog read (0.01 fJ), per cell per search.
CELL_SEARCH_J = 1e-17
#: Match-line precharge per stored row per search (0.1 fJ).
ROW_PRECHARGE_J = 1e-16
#: Reference search latency shared with the measured pCAM row.
SEARCH_LATENCY_S = 1e-9


@dataclass(frozen=True)
class ACAMEnergyModel:
    """Per-search energy of an aCAM bank.

    One search against ``n_rows`` rows of ``n_cells`` interval cells
    costs ``n_rows * n_cells`` cell reads plus ``n_rows`` match-line
    precharges; all rows are evaluated in parallel in one
    ``search_latency_s`` cycle.
    """

    cell_search_j: float = CELL_SEARCH_J
    row_precharge_j: float = ROW_PRECHARGE_J
    search_latency_s: float = SEARCH_LATENCY_S
    reference: str = "Li et al. / Table 1 low-energy analog read"

    def __post_init__(self) -> None:
        for name in ("cell_search_j", "row_precharge_j",
                     "search_latency_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0: "
                                 f"{getattr(self, name)!r}")

    def per_classification_j(self, n_rows: int,
                             n_cells_per_row: int) -> float:
        """Energy of one query searched against the whole bank [J]."""
        if n_rows < 0 or n_cells_per_row < 0:
            raise ValueError(
                f"geometry must be >= 0: {n_rows!r} x "
                f"{n_cells_per_row!r}")
        return (n_rows * n_cells_per_row * self.cell_search_j
                + n_rows * self.row_precharge_j)

    def search_energy_j(self, n_rows: int, n_cells_per_row: int,
                        n_queries: int = 1) -> float:
        """Energy of a query batch against the whole bank [J]."""
        if n_queries < 0:
            raise ValueError(f"queries must be >= 0: {n_queries!r}")
        return n_queries * self.per_classification_j(n_rows,
                                                     n_cells_per_row)


def published_acam_energy() -> ACAMEnergyModel:
    """The default model built from the published anchor figures."""
    return ACAMEnergyModel()
