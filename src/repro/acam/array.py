"""The aCAM bank: interval rows searched in one analog cycle.

A row matches iff **every** feature of the query falls inside that
row's stored interval — the per-cell responses multiply on the match
line, so one sub-threshold cell pulls the whole row down.  The bank
composes a :class:`~repro.core.pcam_array.PCAMArray` over the very
same cells, which buys three things for free:

* the vectorised match kernel (one ``(n_queries, n_rows)`` pass);
* the robustness fault-injection surface
  (:class:`~repro.robustness.injector.FaultInjector` walks pCAM
  words/cells and never learns aCAM exists);
* the clean-twin discipline (``intended`` parameters survive faults).

Fault plans are seeded value objects so a campaign seed reproduces
the exact defect population; the differential row oracle reuses the
robustness :class:`~repro.robustness.oracle.DeviationReport` /
:class:`~repro.robustness.oracle.DegradationEnvelope` vocabulary to
flag out-of-envelope rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.acam.cell import ACAMCell, ACAMInterval, UNBOUNDED
from repro.acam.energy import ACAMEnergyModel, published_acam_energy
from repro.core.pcam_array import PCAMArray, PCAMWord
from repro.energy.ledger import EnergyLedger
from repro.robustness.injector import FaultInjector, InjectionReport
from repro.robustness.models import FaultModel
from repro.robustness.oracle import DegradationEnvelope, DeviationReport

__all__ = ["ACAMArray", "ACAMBatchResult", "ACAMFaultPlan",
           "ACAMSearchResult"]


@dataclass(frozen=True)
class ACAMBatchResult:
    """Outcome of one batched search against every stored row.

    ``probabilities`` has shape ``(n_queries, n_rows)``;
    ``best_rows`` is the argmax row per query (ties resolve to the
    lowest row index, the priority-encoder convention);
    ``first_match_rows`` is the lowest row whose analog response
    clears the deterministic threshold, or -1 when none does.
    """

    probabilities: np.ndarray
    best_rows: np.ndarray
    best_probabilities: np.ndarray
    deterministic_mask: np.ndarray
    first_match_rows: np.ndarray
    energy_j: float
    latency_s: float

    def __len__(self) -> int:
        return int(self.probabilities.shape[0])


@dataclass(frozen=True)
class ACAMSearchResult:
    """Scalar view of one query searched against every stored row."""

    probabilities: np.ndarray
    best_row: int
    best_probability: float
    first_match_row: int
    energy_j: float
    latency_s: float

    @property
    def matched(self) -> bool:
        """True when some row matched deterministically."""
        return self.first_match_row >= 0


@dataclass(frozen=True)
class ACAMFaultPlan:
    """A seeded, reproducible defect population for one bank.

    ``rows=None`` exposes every row to the coin flip; a tuple of row
    indices restricts the plan to those rows (the targeted-defect
    legs of the golden suite).  Selection and fault materialisation
    both draw from one ``default_rng(seed)`` stream in row-major cell
    order, so a plan is a pure function of (bank geometry, plan).
    """

    model: FaultModel
    cell_fraction: float = 1.0
    seed: int = 0
    rows: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.cell_fraction <= 1.0:
            raise ValueError(
                f"cell fraction must be in [0, 1]: "
                f"{self.cell_fraction!r}")


class ACAMArray:
    """A bank of interval rows over named feature fields.

    Parameters
    ----------
    fields:
        Ordered feature names; every row stores one interval cell per
        field, and matrix queries map columns to fields in this order.
    match_threshold:
        Analog response at or above which a row counts as a
        deterministic match.
    energy_model:
        Per-search energy model; defaults to the published figures.
    ledger / account:
        When a ledger is given, every search charges its energy to
        ``account`` — wiring the bank into a switch's
        :class:`~repro.energy.ledger.EnergyLedger` makes the joules
        show up in the pipeline's breakdown and the observability
        collectors with no further plumbing.
    """

    def __init__(self, fields: Sequence[str], *,
                 match_threshold: float = 0.99,
                 energy_model: ACAMEnergyModel | None = None,
                 ledger: EnergyLedger | None = None,
                 account: str = "acam.search") -> None:
        if not fields:
            raise ValueError("array needs at least one field")
        if len(set(fields)) != len(tuple(fields)):
            raise ValueError(f"duplicate fields: {tuple(fields)!r}")
        self.fields = tuple(fields)
        self.energy_model = energy_model or published_acam_energy()
        self.ledger = ledger
        self.account = account
        self._rows: list[tuple[ACAMCell, ...]] = []
        self._pcam = PCAMArray(
            self.fields, match_threshold=match_threshold,
            energy_per_cell_j=self.energy_model.cell_search_j,
            search_latency_s=self.energy_model.search_latency_s)
        self._searches = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def n_rows(self) -> int:
        """Number of stored interval rows."""
        return len(self._rows)

    @property
    def match_threshold(self) -> float:
        """Deterministic-match response threshold."""
        return self._pcam.match_threshold

    @property
    def searches(self) -> int:
        """Number of queries searched so far."""
        return self._searches

    @property
    def pcam(self) -> PCAMArray:
        """The composed pCAM array (fault-injection surface)."""
        return self._pcam

    @property
    def rows(self) -> tuple[tuple[ACAMCell, ...], ...]:
        """All stored rows, each a tuple of cells in field order."""
        return tuple(self._rows)

    def row(self, index: int) -> tuple[ACAMCell, ...]:
        """One stored row by index."""
        if not 0 <= index < len(self._rows):
            raise IndexError(f"row {index} out of range")
        return self._rows[index]

    def add_row(self, intervals: "Sequence[ACAMInterval] | "
                                 "Mapping[str, ACAMInterval]") -> int:
        """Store one interval row; returns its row index."""
        if isinstance(intervals, Mapping):
            missing = [f for f in self.fields if f not in intervals]
            if missing:
                raise KeyError(f"row missing field {missing[0]!r}")
            ordered = tuple(intervals[f] for f in self.fields)
        else:
            ordered = tuple(intervals)
            if len(ordered) != len(self.fields):
                raise ValueError(
                    f"row arity {len(ordered)} != "
                    f"{len(self.fields)} fields")
        cells = tuple(ACAMCell(interval) for interval in ordered)
        self._rows.append(cells)
        self._pcam.add(PCAMWord({field: cell.pcam for field, cell
                                 in zip(self.fields, cells)}))
        return len(self._rows) - 1

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _as_columns(self, queries: "Mapping[str, np.ndarray] | np.ndarray"
                    ) -> dict[str, np.ndarray]:
        if isinstance(queries, Mapping):
            return {field: np.atleast_1d(
                np.asarray(queries[field], dtype=float))
                for field in self.fields if field in queries}
        matrix = np.atleast_2d(np.asarray(queries, dtype=float))
        if matrix.shape[1] != len(self.fields):
            raise ValueError(
                f"query matrix has {matrix.shape[1]} columns, "
                f"array has {len(self.fields)} fields")
        return {field: matrix[:, j]
                for j, field in enumerate(self.fields)}

    def search_batch(self, queries: "Mapping[str, np.ndarray] | np.ndarray"
                     ) -> ACAMBatchResult:
        """Search a query batch against every row in one cycle each.

        ``queries`` is either a mapping of per-field value arrays or
        an ``(n_queries, n_fields)`` matrix in field order.
        """
        columns = self._as_columns(queries)
        if not self._rows:
            raise RuntimeError("cannot search an empty aCAM bank")
        probabilities = self._pcam.match_batch(columns)
        n_queries = probabilities.shape[0]
        best = np.argmax(probabilities, axis=1)
        mask = probabilities >= self._pcam.match_threshold
        any_match = mask.any(axis=1)
        first = np.where(any_match, np.argmax(mask, axis=1), -1)
        energy = self.energy_model.search_energy_j(
            self.n_rows, len(self.fields), n_queries)
        if self.ledger is not None:
            self.ledger.charge(self.account, energy)
        self._searches += n_queries
        return ACAMBatchResult(
            probabilities=probabilities,
            best_rows=best,
            best_probabilities=probabilities[np.arange(n_queries), best],
            deterministic_mask=mask,
            first_match_rows=first,
            energy_j=energy,
            latency_s=self.energy_model.search_latency_s)

    def search(self, query: "Mapping[str, float] | Sequence[float]"
               ) -> ACAMSearchResult:
        """Search one query — literally a batch of one."""
        if isinstance(query, Mapping):
            columns: "Mapping[str, np.ndarray] | np.ndarray" = {
                field: np.asarray([float(query[field])])
                for field in self.fields if field in query}
        else:
            columns = np.asarray(query, dtype=float).reshape(1, -1)
        result = self.search_batch(columns)
        return ACAMSearchResult(
            probabilities=result.probabilities[0],
            best_row=int(result.best_rows[0]),
            best_probability=float(result.best_probabilities[0]),
            first_match_row=int(result.first_match_rows[0]),
            energy_j=result.energy_j,
            latency_s=result.latency_s)

    # ------------------------------------------------------------------
    # Fault plans and the differential row oracle
    # ------------------------------------------------------------------
    def apply_fault_plan(self, plan: ACAMFaultPlan) -> InjectionReport:
        """Inject the plan's defect population; returns what was hit."""
        rng = np.random.default_rng(plan.seed)
        injector = FaultInjector(plan.model,
                                 cell_fraction=plan.cell_fraction,
                                 rng=rng)
        selected = set(plan.rows) if plan.rows is not None else None
        report = InjectionReport(model=plan.model.name)
        for index, row in enumerate(self._rows):
            if selected is not None and index not in selected:
                continue
            for field, cell in zip(self.fields, row):
                if plan.cell_fraction >= 1.0 \
                        or rng.random() < plan.cell_fraction:
                    injector.inject_cell(cell.pcam)
                    report.array_cells.append((index, field))
        return report

    def clear_faults(self) -> None:
        """Detach every fault and restore the intended intervals."""
        FaultInjector.clear_array(self._pcam)

    def clone_ideal(self) -> "ACAMArray":
        """A healthy copy rebuilt from every row's intended interval."""
        clone = ACAMArray(self.fields,
                          match_threshold=self._pcam.match_threshold,
                          energy_model=self.energy_model)
        for row in self._rows:
            clone.add_row([cell.intended_interval for cell in row])
        return clone

    def probe_grid(self, n_probes: int,
                   rng: np.random.Generator,
                   margin: float = 0.25) -> dict[str, np.ndarray]:
        """Seeded per-field probes covering every finite bound.

        Spans the union of each field's finite interval bounds,
        widened by ``margin`` of the span each side; a field with
        only wildcard cells probes [0, 1].  Sentinel bounds are
        excluded — probing at 1e30 exercises nothing.
        """
        if n_probes < 1:
            raise ValueError(f"need at least one probe: {n_probes!r}")
        probes: dict[str, np.ndarray] = {}
        for j, field in enumerate(self.fields):
            bounds = [b for row in self._rows
                      for b in (row[j].intended_interval.lo,
                                row[j].intended_interval.hi)
                      if b is not None and abs(b) < UNBOUNDED]
            lo, hi = (min(bounds), max(bounds)) if bounds else (0.0, 1.0)
            span = max(hi - lo, 1e-6)
            probes[field] = rng.uniform(lo - margin * span,
                                        hi + margin * span, n_probes)
        return probes

    def row_reports(self, probes: Mapping[str, np.ndarray]
                    ) -> list[DeviationReport]:
        """Per-row deviation of this bank against its healthy twin.

        Three legs per row, mirroring the robustness oracle: the
        clean twin batched (reference), the clean twin scalar
        (vectorisation check), and this — possibly faulted — bank
        batched.  Reduced into one
        :class:`~repro.robustness.oracle.DeviationReport` per row.
        """
        columns = self._as_columns(probes)
        ideal = self.clone_ideal()
        faulty = self._pcam.match_batch(columns)
        ideal_batch = ideal.pcam.match_batch(columns)
        n_probes = faulty.shape[0]
        reports = []
        for index in range(self.n_rows):
            word = ideal.pcam.word(index)
            scalar = np.array([
                word.match({f: float(columns[f][i]) for f in columns})
                for i in range(n_probes)])
            deviation = faulty[:, index] - scalar
            reports.append(DeviationReport(
                n_probes=n_probes,
                mean_abs_error=float(np.mean(np.abs(deviation))),
                bias=float(np.mean(deviation)),
                max_abs_error=float(np.max(np.abs(deviation),
                                           initial=0.0)),
                rmse=float(np.sqrt(np.mean(deviation ** 2))),
                scalar_batch_max_diff=float(np.max(
                    np.abs(ideal_batch[:, index] - scalar),
                    initial=0.0))))
        return reports

    def out_of_envelope(self, probes: Mapping[str, np.ndarray],
                        envelope: DegradationEnvelope | None = None
                        ) -> tuple[int, ...]:
        """Row indices whose deviation breaks the declared envelope."""
        envelope = envelope or DegradationEnvelope()
        return tuple(index for index, report
                     in enumerate(self.row_reports(probes))
                     if not report.within(envelope))
