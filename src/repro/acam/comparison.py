"""Table-1-style energy comparison: aCAM vs digital tree vs TCAM.

Three realisations of the *same* fitted decision tree, costed per
classification with the repo's committed energy anchors:

* **aCAM (this work)** — every leaf box is one row; a classification
  is one parallel search: ``leaves x features`` cell reads at the
  published 0.01 fJ low-energy analog read plus one match-line
  precharge per row (:mod:`repro.acam.energy`).
* **Digital tree walk** — sequential root-to-leaf traversal on the
  best published digital CAM technology (Arsovski, 0.58 fJ/bit,
  :data:`repro.device.energy.BEST_DIGITAL_ENERGY_J_PER_BIT`): one
  W-bit compare per visited node, scaled by the data-movement factor
  of the paper's Figure 1 (up to ~90% of digital packet-processing
  energy is moving operands between storage and compute, so the
  compare itself is ~10% of the true cost).
* **TCAM one-shot** — the classic way to make lookup single-cycle:
  discretise every threshold to W bits and expand each leaf box into
  ternary prefixes.  A width-W range needs up to ``2(W-1)`` prefixes
  (the textbook range-to-prefix blowup) and the expansions multiply
  across features, so the row count explodes while every expanded
  row burns ``features x W`` bit-compares per search.

The committed golden table pins these numbers byte-for-byte; the
acceptance gate is that the aCAM row is the cheapest of the three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.acam.compiler import TreePath, tree_paths
from repro.acam.energy import ACAMEnergyModel, published_acam_energy
from repro.device.energy import BEST_DIGITAL_ENERGY_J_PER_BIT
from repro.energy.units import joules_to_femtojoules
from repro.netfunc.decision_tree import CARTTree

__all__ = ["DIGITAL_TREE_MOVEMENT_FACTOR", "EnergyTableRow",
           "build_energy_table", "energy_table_json",
           "format_energy_table", "reference_classifier"]

#: Figure 1's point, as a multiplier: data movement between storage
#: and compute is up to ~90% of digital packet-processing energy, so
#: a traversal's compare energy is ~10% of what the node visit costs.
DIGITAL_TREE_MOVEMENT_FACTOR = 10.0


@dataclass(frozen=True)
class EnergyTableRow:
    """One design point: a whole classification, costed end to end."""

    name: str
    computation: str
    rows: int
    unit_ops: int
    energy_fj_per_classification: float
    latency_ns: float
    reference: str

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "computation": self.computation,
            "rows": self.rows,
            "unit_ops": self.unit_ops,
            "energy_fj_per_classification": round(
                self.energy_fj_per_classification, 6),
            "latency_ns": round(self.latency_ns, 4),
            "reference": self.reference,
        }


def _quantise(bound: float, lo: float, hi: float, bits: int) -> float:
    """Map a threshold into the [0, 2^bits) integer code space."""
    span = hi - lo
    code = (bound - lo) / span * ((1 << bits) - 1)
    return float(np.clip(code, 0, (1 << bits) - 1))


def prefix_cover_count(lo: int, hi: int, bits: int) -> int:
    """Minimal ternary prefixes covering the integer range [lo, hi].

    The classic greedy cover: repeatedly take the largest aligned
    power-of-two block starting at ``lo`` that fits inside the range.
    A width-W range needs at most ``2(W-1)`` prefixes.
    """
    if not 0 <= lo <= hi < (1 << bits):
        raise ValueError(
            f"range [{lo}, {hi}] outside {bits}-bit space")
    count = 0
    position = lo
    while position <= hi:
        size = position & -position if position > 0 else 1 << bits
        while position + size - 1 > hi:
            size >>= 1
        count += 1
        position += size
    return count


def tcam_rows_for_paths(paths: Sequence[TreePath],
                        feature_ranges: Sequence[tuple[float, float]],
                        bits: int) -> int:
    """Expanded TCAM row count for a set of leaf boxes.

    Each feature's interval is discretised to ``bits`` and covered by
    prefixes; the per-feature prefix counts multiply (a TCAM row
    stores one prefix per feature, so a box needs the cross product).
    """
    total = 0
    top = (1 << bits) - 1
    for path in paths:
        rows = 1
        for (lo, hi), (range_lo, range_hi) in zip(path.intervals,
                                                  feature_ranges):
            lo_code = 0 if lo is None else int(
                np.ceil(_quantise(lo, range_lo, range_hi, bits)))
            hi_code = top if hi is None else int(
                np.floor(_quantise(hi, range_lo, range_hi, bits)))
            hi_code = max(hi_code, lo_code)
            rows *= prefix_cover_count(lo_code, hi_code, bits)
        total += rows
    return total


def build_energy_table(tree: CARTTree,
                       feature_ranges: Sequence[tuple[float, float]],
                       *, bits: int = 8,
                       model: ACAMEnergyModel | None = None
                       ) -> list[EnergyTableRow]:
    """Cost one fitted tree under all three realisations."""
    if bits < 1:
        raise ValueError(f"need at least one bit: {bits!r}")
    if len(feature_ranges) != tree.n_features:
        raise ValueError(
            f"need one range per feature: {len(feature_ranges)} != "
            f"{tree.n_features}")
    model = model or published_acam_energy()
    paths = tree_paths(tree)
    n_leaves = len(paths)
    n_features = tree.n_features
    mean_depth = float(np.mean([path.depth for path in paths]))
    digital_bit_j = BEST_DIGITAL_ENERGY_J_PER_BIT

    acam_cells = n_leaves * n_features
    acam_j = model.per_classification_j(n_leaves, n_features)
    digital_ops = int(round(mean_depth * bits))
    digital_j = (mean_depth * bits * digital_bit_j
                 * DIGITAL_TREE_MOVEMENT_FACTOR)
    tcam_rows = tcam_rows_for_paths(paths, feature_ranges, bits)
    tcam_ops = tcam_rows * n_features * bits
    tcam_j = tcam_ops * digital_bit_j
    return [
        EnergyTableRow(
            name="aCAM one-shot", computation="analog",
            rows=n_leaves, unit_ops=acam_cells,
            energy_fj_per_classification=joules_to_femtojoules(acam_j),
            latency_ns=model.search_latency_s * 1e9,
            reference=model.reference),
        EnergyTableRow(
            name="digital tree walk", computation="digital",
            rows=n_leaves, unit_ops=digital_ops,
            energy_fj_per_classification=joules_to_femtojoules(
                digital_j),
            latency_ns=mean_depth * 1.0,
            reference="Arsovski 0.58 fJ/bit x Fig.1 movement factor"),
        EnergyTableRow(
            name="TCAM range-expanded", computation="digital",
            rows=tcam_rows, unit_ops=tcam_ops,
            energy_fj_per_classification=joules_to_femtojoules(tcam_j),
            latency_ns=1.0,
            reference="Arsovski 0.58 fJ/bit, 2(W-1) prefix expansion"),
    ]


def format_energy_table(rows: Sequence[EnergyTableRow]) -> list[str]:
    """Render the comparison as aligned text lines."""
    header = (f"{'Design':<22}{'Comp':>8}{'Rows':>8}{'Ops':>10}"
              f"{'Energy (fJ/cls)':>18}{'Latency (ns)':>14}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<22}{row.computation:>8}{row.rows:>8}"
            f"{row.unit_ops:>10}"
            f"{row.energy_fj_per_classification:>18.4g}"
            f"{row.latency_ns:>14g}")
    cheapest = min(rows,
                   key=lambda r: r.energy_fj_per_classification)
    lines.append(f"(cheapest per classification: {cheapest.name})")
    return lines


def energy_table_json(rows: Sequence[EnergyTableRow]) -> dict:
    """The table as the JSON document the golden test pins."""
    cheapest = min(rows,
                   key=lambda r: r.energy_fj_per_classification)
    return {
        "rows": [row.to_json() for row in rows],
        "cheapest": cheapest.name,
    }


def reference_classifier() -> tuple[
        CARTTree, tuple[str, ...], tuple[tuple[float, float], ...]]:
    """The fixed seeded classifier the golden artifacts are built on.

    A three-feature synthetic traffic-classification task (packet
    size, inter-arrival gap, port entropy) with a deterministic
    label rule, fitted by the deterministic CART learner — so the
    tree, the compiled bank, and the energy table are all pure
    functions of this module.
    """
    rng = np.random.default_rng(7)
    n = 240
    features = np.column_stack([
        rng.uniform(64.0, 1500.0, n),     # packet size [B]
        rng.uniform(0.0, 20.0, n),        # inter-arrival gap [ms]
        rng.uniform(0.0, 8.0, n),         # port entropy [bits]
    ])
    labels = np.where(
        features[:, 0] > 1100.0, 2,
        np.where((features[:, 1] < 8.0) & (features[:, 2] > 3.0),
                 1, 0))
    tree = CARTTree(max_depth=4, min_samples_leaf=8)
    tree.fit(features, labels)
    names = ("size_bytes", "gap_ms", "port_entropy")
    ranges = ((64.0, 1500.0), (0.0, 20.0), (0.0, 8.0))
    return tree, names, ranges
