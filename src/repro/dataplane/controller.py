"""Deprecated re-export: the controller lives in :mod:`repro.control`.

The cognitive network controller — compile-time placement plus the
run-time ``update_pCAM`` reprogram surface — moved to
:mod:`repro.control.cognitive` when the control plane was unified
into the top-level ``repro.control`` package.  Every internal import
now uses ``repro.control`` directly, and this path is kept only so
old external imports keep resolving — with a
:class:`DeprecationWarning` telling them where to go.
"""

import warnings

from repro.control.cognitive import (
    CognitiveNetworkController,
    RegisteredFunction,
)

__all__ = ["CognitiveNetworkController", "RegisteredFunction"]

warnings.warn(
    "repro.dataplane.controller is deprecated; import "
    "CognitiveNetworkController and RegisteredFunction from "
    "repro.control instead",
    DeprecationWarning, stacklevel=2)
