"""Packet parser: raw bytes -> header fields (Figure 5's "Parser").

Parses Ethernet / IPv4 / {TCP, UDP} far enough to extract the fields
the match-action tables consume (the 5-tuple plus TTL and DSCP), and
provides builders so tests and examples can fabricate wire-format
packets without external dependencies.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Sequence

from repro.packet import Packet

__all__ = [
    "HeaderParser",
    "ParseError",
    "build_ethernet_frame",
    "build_ipv4_packet",
]

ETHERTYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_FIXED = struct.Struct("!BBHHHBBH4s4s")
_PORTS = struct.Struct("!HH")


class ParseError(ValueError):
    """Raised when a frame cannot be parsed into header fields."""


def build_ethernet_frame(payload: bytes,
                         eth_dst: str = "ff:ff:ff:ff:ff:ff",
                         eth_src: str = "00:00:00:00:00:01",
                         ethertype: int = ETHERTYPE_IPV4) -> bytes:
    """Wrap a payload in an Ethernet II header."""
    def mac(text: str) -> bytes:
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"bad MAC address: {text!r}")
        return bytes(int(part, 16) for part in parts)

    return _ETH_HEADER.pack(mac(eth_dst), mac(eth_src), ethertype) + payload


def build_ipv4_packet(src_ip: str, dst_ip: str, protocol: int = PROTO_UDP,
                      src_port: int = 1234, dst_port: int = 80,
                      payload: bytes = b"", ttl: int = 64,
                      dscp: int = 0) -> bytes:
    """An IPv4 packet with a minimal TCP/UDP transport header."""
    if protocol in (PROTO_TCP, PROTO_UDP):
        transport = _PORTS.pack(src_port, dst_port)
        if protocol == PROTO_UDP:
            transport += struct.pack("!HH", 8 + len(payload), 0)
        else:
            # Remaining 16 bytes of a minimal TCP header.
            transport += struct.pack("!IIBBHHH", 0, 0, 5 << 4, 0, 0, 0, 0)
    else:
        transport = b""
    body = transport + payload
    total_length = 20 + len(body)
    header = _IPV4_FIXED.pack(
        (4 << 4) | 5,            # version + IHL
        dscp << 2,               # DSCP in the TOS byte
        total_length,
        0, 0,                    # identification, flags/fragment
        ttl,
        protocol,
        0,                       # checksum (not validated by parser)
        ipaddress.ip_address(src_ip).packed,
        ipaddress.ip_address(dst_ip).packed)
    return header + body


class HeaderParser:
    """Extracts match fields from wire-format frames.

    ``parse_frame`` accepts an Ethernet frame; ``parse_ipv4`` accepts a
    bare IPv4 packet.  Both return a :class:`Packet` whose ``fields``
    dict carries everything the tables read.
    """

    def __init__(self) -> None:
        self.parsed = 0
        self.errors = 0

    def parse_frame(self, frame: bytes, created_at: float = 0.0) -> Packet:
        """Parse Ethernet + IPv4 (+ transport)."""
        if len(frame) < _ETH_HEADER.size:
            self.errors += 1
            raise ParseError(f"frame too short: {len(frame)} bytes")
        dst, src, ethertype = _ETH_HEADER.unpack_from(frame)
        if ethertype != ETHERTYPE_IPV4:
            self.errors += 1
            raise ParseError(f"unsupported ethertype 0x{ethertype:04x}")
        packet = self.parse_ipv4(frame[_ETH_HEADER.size:],
                                 created_at=created_at,
                                 frame_overhead=_ETH_HEADER.size)
        packet.fields["eth_dst"] = dst.hex(":")
        packet.fields["eth_src"] = src.hex(":")
        return packet

    def parse_frames(self, frames: Sequence[bytes],
                     created_at: float = 0.0
                     ) -> list[Packet | None]:
        """Parse a chunk of frames; malformed ones become ``None``.

        Positional results stay aligned with the input so batch
        callers can issue per-frame parse-drop verdicts; counters
        (``parsed``/``errors``) advance exactly as per-frame parsing
        would.
        """
        packets: list[Packet | None] = []
        for frame in frames:
            try:
                packets.append(self.parse_frame(frame,
                                                created_at=created_at))
            except ParseError:
                packets.append(None)
        return packets

    def parse_ipv4(self, data: bytes, created_at: float = 0.0,
                   frame_overhead: int = 0) -> Packet:
        """Parse a bare IPv4 packet into match fields."""
        if len(data) < _IPV4_FIXED.size:
            self.errors += 1
            raise ParseError(f"IPv4 packet too short: {len(data)} bytes")
        (version_ihl, tos, total_length, _ident, _frag, ttl, protocol,
         _checksum, src, dst) = _IPV4_FIXED.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            self.errors += 1
            raise ParseError(f"not IPv4 (version {version})")
        ihl_bytes = (version_ihl & 0x0F) * 4
        if ihl_bytes < 20 or len(data) < ihl_bytes:
            self.errors += 1
            raise ParseError(f"bad IHL: {ihl_bytes} bytes")
        fields: dict[str, object] = {
            "src_ip": str(ipaddress.ip_address(src)),
            "dst_ip": str(ipaddress.ip_address(dst)),
            "protocol": protocol,
            "ttl": ttl,
            "dscp": tos >> 2,
        }
        if protocol in (PROTO_TCP, PROTO_UDP) \
                and len(data) >= ihl_bytes + _PORTS.size:
            src_port, dst_port = _PORTS.unpack_from(data, ihl_bytes)
            fields["src_port"] = src_port
            fields["dst_port"] = dst_port
        self.parsed += 1
        size = max(total_length + frame_overhead, len(data))
        # DSCP class selector -> scheduling priority (CS6/CS7 highest).
        priority = 0 if tos >> 5 >= 6 else 1
        return Packet(size_bytes=size, priority=priority, fields=fields,
                      created_at=created_at)
