"""Match-action tables of the switch model.

Two table species, mirroring Figure 5:

* :class:`DigitalMatchActionTable` — TCAM-backed: ternary key match,
  per-entry action, binary verdicts.  (The analog species,
  :class:`repro.core.match_action.AnalogMatchActionTable`, lives in
  the core package because it *is* the contribution.)
* :class:`FieldKeySpec` — declares how packet fields concatenate into
  the TCAM search key, so tables stay protocol-agnostic.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.packet import Packet
from repro.energy.ledger import EnergyLedger
from repro.tcam.tcam import TCAM, TernaryPattern, key_from_int, key_matrix

__all__ = ["DigitalMatchActionTable", "FieldKeySpec", "TableLookup"]

#: An action mutates the packet and/or returns a verdict string.
TableAction = Callable[[Packet], str | None]


@dataclass(frozen=True)
class FieldKeySpec:
    """How one packet field contributes bits to the search key.

    ``encoder`` turns the field value into an unsigned int of
    ``width`` bits; IP address strings are handled natively.
    """

    field: str
    width: int
    encoder: Callable[[object], int] | None = None

    def encode(self, value: object) -> int:
        """The field value as an unsigned int of ``width`` bits."""
        if self.encoder is not None:
            encoded = self.encoder(value)
        elif isinstance(value, str) and self.width == 32:
            encoded = int(ipaddress.ip_address(value))
        elif isinstance(value, bool):
            encoded = int(value)
        elif isinstance(value, int):
            encoded = value
        else:
            raise TypeError(
                f"cannot encode field {self.field!r} value {value!r}")
        if encoded < 0 or encoded >= (1 << self.width):
            raise ValueError(
                f"field {self.field!r} value {encoded} does not fit in "
                f"{self.width} bits")
        return encoded


@dataclass(frozen=True)
class TableLookup:
    """Outcome of one digital table lookup."""

    hit: bool
    verdict: str | None
    entry_index: int | None
    energy_j: float


class DigitalMatchActionTable:
    """A TCAM-backed match-action table with per-entry actions."""

    def __init__(self, name: str, key_spec: Sequence[FieldKeySpec],
                 tcam: TCAM | None = None,
                 default_verdict: str | None = None,
                 ledger: EnergyLedger | None = None) -> None:
        if not name:
            raise ValueError("table needs a name")
        if not key_spec:
            raise ValueError("table needs at least one key field")
        self.name = name
        self.key_spec = tuple(key_spec)
        self.width = sum(spec.width for spec in key_spec)
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.tcam = tcam if tcam is not None else TCAM(
            self.width, ledger=self.ledger)
        if self.tcam.width_bits != self.width:
            raise ValueError(
                f"TCAM width {self.tcam.width_bits} != key width "
                f"{self.width}")
        self.default_verdict = default_verdict
        self._actions: list[TableAction | None] = []
        self._verdicts: list[str | None] = []
        self._lookups = 0

    def __len__(self) -> int:
        return len(self._actions)

    @property
    def lookups(self) -> int:
        """Number of lookups performed."""
        return self._lookups

    def add_entry(self, pattern: TernaryPattern | str,
                  verdict: str | None = None,
                  action: TableAction | None = None,
                  priority: int | None = None) -> int:
        """Install a ternary entry with an optional action callable."""
        index = self.tcam.add(pattern, priority=priority)
        self._actions.append(action)
        self._verdicts.append(verdict)
        return index

    def key_for(self, packet: Packet) -> int:
        """Concatenate the packet's fields into the search key."""
        key = 0
        for spec in self.key_spec:
            value = packet.field(spec.field)
            if value is None:
                raise KeyError(
                    f"packet missing field {spec.field!r} for table "
                    f"{self.name!r}")
            key = (key << spec.width) | spec.encode(value)
        return key

    def lookup(self, packet: Packet) -> TableLookup:
        """Search, run the winning entry's action, return the verdict."""
        result = self.tcam.search(
            key_from_int(self.key_for(packet), self.width))
        self._lookups += 1
        if result.best_index is None:
            return TableLookup(hit=False, verdict=self.default_verdict,
                               entry_index=None, energy_j=result.energy_j)
        verdict = self._verdicts[result.best_index]
        action = self._actions[result.best_index]
        if action is not None:
            action_verdict = action(packet)
            if action_verdict is not None:
                verdict = action_verdict
        return TableLookup(hit=True, verdict=verdict,
                           entry_index=result.best_index,
                           energy_j=result.energy_j)

    def key_bits_for(self, packets: Sequence[Packet]) -> np.ndarray:
        """The (batch, width) key-bit matrix of a packet chunk.

        Fields are encoded column-wise — one :func:`key_matrix` pass
        per key-spec field — and concatenated in spec order, matching
        :meth:`key_for` bit for bit.
        """
        columns = []
        for spec in self.key_spec:
            encoded = np.empty(len(packets), dtype=np.uint64)
            for row, packet in enumerate(packets):
                value = packet.field(spec.field)
                if value is None:
                    raise KeyError(
                        f"packet missing field {spec.field!r} for table "
                        f"{self.name!r}")
                encoded[row] = spec.encode(value)
            columns.append(key_matrix(encoded, spec.width))
        return np.concatenate(columns, axis=1)

    def lookup_batch(self, packets: Sequence[Packet]
                     ) -> list[TableLookup]:
        """Search a whole chunk in one vectorised TCAM pass.

        Per-packet verdicts, actions and charged energy are identical
        to looping :meth:`lookup`; the batch's total search energy is
        attributed evenly across its lookups.
        """
        if not packets:
            return []
        result = self.tcam.search_batch(self.key_bits_for(packets))
        self._lookups += len(packets)
        share = result.energy_j / len(packets)
        outcomes: list[TableLookup] = []
        for packet, index in zip(packets, result.best_indices):
            if index < 0:
                outcomes.append(TableLookup(
                    hit=False, verdict=self.default_verdict,
                    entry_index=None, energy_j=share))
                continue
            verdict = self._verdicts[index]
            action = self._actions[index]
            if action is not None:
                action_verdict = action(packet)
                if action_verdict is not None:
                    verdict = action_verdict
            outcomes.append(TableLookup(hit=True, verdict=verdict,
                                        entry_index=int(index),
                                        energy_j=share))
        return outcomes
