"""In-band telemetry and controller-facing statistics.

The cognitive network controller adapts the analog tables from
run-time observations, so the data plane must export them.  This
module provides:

* :class:`TelemetryCollector` — per-table hit/miss counters, verdict
  tallies and latency-proxy gauges the controller polls;
* INT-style per-packet metadata stamping (:func:`stamp_packet`):
  each traversed component appends its ID and local queue state to
  the packet, so path-level congestion is observable at the sink.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.packet import Packet

__all__ = ["TableStats", "TelemetryCollector", "int_metadata",
           "stamp_packet"]

#: Packet field carrying the in-band telemetry trail.
INT_FIELD = "int_trail"


def stamp_packet(packet: Packet, component_id: str,
                 queue_depth: int, timestamp_s: float) -> None:
    """Append one INT record to the packet's telemetry trail."""
    trail = packet.fields.setdefault(INT_FIELD, [])
    trail.append({"component": component_id,
                  "queue_depth": queue_depth,
                  "timestamp_s": timestamp_s})


def int_metadata(packet: Packet) -> list[dict]:
    """The telemetry trail accumulated by a packet (possibly empty).

    Records are copied per hop, not just the list: callers may freely
    mutate the returned dicts (sinks annotate them) without corrupting
    the packet's in-band trail.
    """
    return [dict(record) for record in packet.fields.get(INT_FIELD, [])]


@dataclass
class TableStats:
    """Counters for one match-action table."""

    lookups: int = 0
    hits: int = 0
    verdicts: Counter = field(default_factory=Counter)

    @property
    def misses(self) -> int:
        """Lookups that matched no entry."""
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class TelemetryCollector:
    """Aggregates data-plane statistics for the controller.

    Components report events through the ``record_*`` methods; the
    controller reads the aggregate views.  Gauges hold the latest
    sample of continuously-varying quantities (queue depth, delay
    EWMA, PDP).
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}
        self._gauges: dict[str, float] = {}
        self._events: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_lookup(self, table: str, hit: bool,
                      verdict: str | None = None) -> None:
        """Count one table lookup (and optionally its verdict)."""
        stats = self._tables.setdefault(table, TableStats())
        stats.lookups += 1
        if hit:
            stats.hits += 1
        if verdict is not None:
            stats.verdicts[verdict] += 1

    def record_lookup_batch(self, table: str, lookups: int, hits: int,
                            verdicts: Counter | dict | None = None
                            ) -> None:
        """Fold pre-aggregated lookup counters into one table.

        The fast path tallies a whole chunk locally and flushes it
        here in one call; totals are indistinguishable from calling
        :meth:`record_lookup` per packet.
        """
        if lookups < 0 or hits < 0 or hits > lookups:
            raise ValueError(
                f"need 0 <= hits <= lookups: {hits!r}/{lookups!r}")
        stats = self._tables.setdefault(table, TableStats())
        stats.lookups += lookups
        stats.hits += hits
        if verdicts:
            stats.verdicts.update(verdicts)

    def record_event(self, name: str, count: int = 1) -> None:
        """Count a named event (drop, mark, adaptation, ...)."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count!r}")
        self._events[name] += count

    def record_events(self, counts: Counter | dict) -> None:
        """Fold a batch of pre-aggregated event counts in one call."""
        for name, count in counts.items():
            self.record_event(name, count)

    def set_gauge(self, name: str, value: float) -> None:
        """Publish the latest value of a continuously-varying signal."""
        self._gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Controller-facing views
    # ------------------------------------------------------------------
    def table(self, name: str) -> TableStats:
        """Statistics of one table (KeyError if never recorded)."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no statistics for table {name!r}; known: "
                           f"{sorted(self._tables)}") from None

    @property
    def tables(self) -> dict[str, TableStats]:
        """Snapshot of every table's statistics."""
        return dict(self._tables)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Latest value of a named gauge."""
        return self._gauges.get(name, default)

    def event_count(self, name: str) -> int:
        """How often a named event was recorded."""
        return self._events.get(name, 0)

    def snapshot(self) -> dict[str, object]:
        """A flat serialisable view of everything (controller poll)."""
        return {
            "tables": {name: {"lookups": stats.lookups,
                              "hits": stats.hits,
                              "hit_rate": stats.hit_rate,
                              "verdicts": dict(stats.verdicts)}
                       for name, stats in self._tables.items()},
            "gauges": dict(self._gauges),
            "events": dict(self._events),
        }

    def reset(self) -> None:
        """Drop all collected statistics."""
        self._tables.clear()
        self._gauges.clear()
        self._events.clear()
