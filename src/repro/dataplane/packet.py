"""Compatibility re-export: the Packet class lives in :mod:`repro.packet`.

Kept so that ``repro.dataplane.packet`` remains a valid import path for
the data-plane-centric view of the class; the implementation moved to
the package root to keep the dependency graph acyclic (network
functions consume packets without depending on the switch model).
"""

from repro.packet import FIVE_TUPLE_FIELDS, Packet

__all__ = ["FIVE_TUPLE_FIELDS", "Packet"]
