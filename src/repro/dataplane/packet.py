"""Deprecated re-export: the Packet class lives in :mod:`repro.packet`.

The implementation moved to the package root to keep the dependency
graph acyclic (network functions consume packets without depending on
the switch model); every internal import now uses ``repro.packet``
directly, and this path is kept only so old external imports keep
resolving — with a :class:`DeprecationWarning` telling them where to
go.
"""

import warnings

from repro.packet import FIVE_TUPLE_FIELDS, Packet

__all__ = ["FIVE_TUPLE_FIELDS", "Packet"]

warnings.warn(
    "repro.dataplane.packet is deprecated; import Packet and "
    "FIVE_TUPLE_FIELDS from repro.packet instead",
    DeprecationWarning, stacklevel=2)
