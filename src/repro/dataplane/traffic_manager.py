"""Traffic managers: scheduling and the cognitive AQM hook (Figure 5/6).

The plain :class:`TrafficManager` schedules egress queues with strict
priority; the :class:`CognitiveTrafficManager` additionally runs an
AQM policy at every egress enqueue — the "Cognitive Traffic Manager"
block of Figure 6, where the pCAM-based AQM lives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.packet import Packet
from repro.dataplane.queues import PacketQueue
from repro.dataplane.telemetry import TelemetryCollector
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView
from repro.observability.tracing import Tracer, maybe_span

__all__ = ["Admission", "CognitiveTrafficManager", "PortStats",
           "TrafficManager"]


class Admission(enum.Enum):
    """Per-packet outcome of a (batched) enqueue attempt."""

    QUEUED = "queued"
    AQM_DROP = "aqm_drop"
    OVERFLOW_DROP = "overflow_drop"

    @property
    def admitted(self) -> bool:
        """True when the packet made it into a queue."""
        return self is Admission.QUEUED


@dataclass
class PortStats:
    """Counters per egress port."""

    enqueued: int = 0
    dequeued: int = 0
    aqm_drops: int = 0
    overflow_drops: int = 0


class TrafficManager:
    """Per-port egress queues with strict-priority scheduling.

    Each port owns one queue per priority class; :meth:`dequeue`
    always serves the lowest-numbered non-empty class.
    """

    def __init__(self, n_ports: int, n_priorities: int = 2,
                 queue_capacity: int = 1024) -> None:
        if n_ports < 1:
            raise ValueError(f"need at least one port: {n_ports!r}")
        if n_priorities < 1:
            raise ValueError(
                f"need at least one priority class: {n_priorities!r}")
        self.n_ports = n_ports
        self.n_priorities = n_priorities
        self._queues = [
            [PacketQueue(name=f"port{port}.prio{prio}",
                         capacity_packets=queue_capacity)
             for prio in range(n_priorities)]
            for port in range(n_ports)]
        self.stats = [PortStats() for _ in range(n_ports)]

    def _classify(self, packet: Packet) -> int:
        return min(packet.priority, self.n_priorities - 1)

    def queue(self, port: int, priority: int) -> PacketQueue:
        """The underlying buffer of one (port, priority) pair."""
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        if not 0 <= priority < self.n_priorities:
            raise IndexError(f"priority {priority} out of range")
        return self._queues[port][priority]

    def enqueue(self, port: int, packet: Packet, now: float = 0.0) -> bool:
        """Admit a packet to its port/class queue."""
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        queue = self._queues[port][self._classify(packet)]
        admitted = queue.push(packet, now)
        if admitted:
            self.stats[port].enqueued += 1
        else:
            self.stats[port].overflow_drops += 1
        return admitted

    def enqueue_batch(self, port: int, packets: Sequence[Packet],
                      now: float = 0.0) -> list[Admission]:
        """Admit a chunk of packets; per-packet outcomes in order."""
        return [Admission.QUEUED if self.enqueue(port, packet, now)
                else Admission.OVERFLOW_DROP for packet in packets]

    def dequeue(self, port: int, now: float = 0.0) -> Packet | None:
        """Serve the highest-priority pending packet of a port."""
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        for queue in self._queues[port]:
            packet = queue.pop(now)
            if packet is not None:
                self.stats[port].dequeued += 1
                return packet
        return None

    def backlog(self, port: int) -> int:
        """Pending packets on a port across all classes."""
        return sum(len(queue) for queue in self._queues[port])


class _PortQueueView:
    """Adapts a port's queue set to the AQM QueueView protocol."""

    def __init__(self, manager: "CognitiveTrafficManager",
                 port: int) -> None:
        self._manager = manager
        self._port = port

    @property
    def backlog_packets(self) -> int:
        """Pending packets across the port's classes."""
        return self._manager.backlog(self._port)

    @property
    def backlog_bytes(self) -> int:
        """Pending bytes across the port's classes."""
        return sum(queue.backlog_bytes
                   for queue in self._manager._queues[self._port])

    @property
    def capacity_packets(self) -> int:
        """Aggregate packet capacity of the port's queues."""
        return sum(queue.capacity_packets
                   for queue in self._manager._queues[self._port])

    @property
    def service_rate_bps(self) -> float:
        """The port's drain rate [bits/s]."""
        return self._manager.port_rate_bps

    @property
    def last_sojourn_s(self) -> float:
        """Sojourn time of the port's most recently served packet [s]."""
        return self._manager.last_sojourn_s(self._port)


class CognitiveTrafficManager(TrafficManager):
    """A traffic manager with an AQM policy at every egress port.

    With a ``telemetry`` collector attached, per-port admission
    outcomes are recorded as events and any degradation-capable AQM
    (one exposing a ``telemetry`` attribute, e.g.
    :class:`repro.robustness.degradation.DegradingAQM`) that has no
    collector of its own is wired to the shared one, so per-table
    fallback events surface alongside the admission counters.
    """

    def __init__(self, n_ports: int, aqm_factory, n_priorities: int = 2,
                 queue_capacity: int = 1024,
                 port_rate_bps: float = 10e9,
                 telemetry: TelemetryCollector | None = None,
                 tracer: Tracer | None = None) -> None:
        super().__init__(n_ports, n_priorities, queue_capacity)
        if port_rate_bps <= 0:
            raise ValueError(
                f"port rate must be positive: {port_rate_bps!r}")
        self.port_rate_bps = port_rate_bps
        self.telemetry = telemetry
        #: Optional span tracer covering AQM consults and queue admits.
        self.tracer = tracer
        self._aqms: list[AQMAlgorithm] = [aqm_factory()
                                          for _ in range(n_ports)]
        if telemetry is not None:
            for aqm in self._aqms:
                if hasattr(aqm, "telemetry") and aqm.telemetry is None:
                    aqm.telemetry = telemetry
        self._views = [_PortQueueView(self, port)
                       for port in range(n_ports)]
        self._last_sojourns = [0.0] * n_ports

    @property
    def degraded_ports(self) -> tuple[int, ...]:
        """Ports whose AQM is currently serving from a fallback path."""
        return tuple(port for port, aqm in enumerate(self._aqms)
                     if getattr(aqm, "degraded", False))

    def aqm(self, port: int) -> AQMAlgorithm:
        """The AQM instance managing one port."""
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        return self._aqms[port]

    def queue_view(self, port: int) -> QueueView:
        """The queue-state view an AQM (or a sensor) consults."""
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        return self._views[port]

    def last_sojourn_s(self, port: int) -> float:
        """Sojourn time of the port's most recently served packet [s]."""
        return self._last_sojourns[port]

    def enqueue(self, port: int, packet: Packet, now: float = 0.0) -> bool:
        """Admit a packet after consulting the port's AQM."""
        return self.enqueue_batch(port, [packet], now)[0].admitted

    def enqueue_batch(self, port: int, packets: Sequence[Packet],
                      now: float = 0.0) -> list[Admission]:
        """Admit a chunk after one batched AQM consultation.

        The port's AQM judges the whole chunk against the chunk-start
        queue state via its vectorised ``on_enqueue_batch`` hook (for
        the pCAM AQM, a single analog-pipeline search for the entire
        chunk); survivors are then pushed per packet so capacity is
        still enforced exactly.  A chunk of one is the scalar path.
        """
        if not 0 <= port < self.n_ports:
            raise IndexError(f"port {port} out of range")
        if not packets:
            return []
        with maybe_span(self.tracer, "tm.enqueue", port=port,
                        n=len(packets)):
            with maybe_span(self.tracer, "tm.aqm", port=port):
                drops = self._aqms[port].on_enqueue_batch(
                    packets, self._views[port], now)
            outcomes: list[Admission] = []
            with maybe_span(self.tracer, "tm.queue", port=port):
                for packet, drop in zip(packets, drops):
                    if drop:
                        packet.dropped = True
                        self.stats[port].aqm_drops += 1
                        outcomes.append(Admission.AQM_DROP)
                    elif super().enqueue(port, packet, now):
                        outcomes.append(Admission.QUEUED)
                    else:
                        outcomes.append(Admission.OVERFLOW_DROP)
        if self.telemetry is not None:
            for outcome in outcomes:
                self.telemetry.record_event(
                    f"port{port}.{outcome.value}")
        return outcomes

    def dequeue(self, port: int, now: float = 0.0) -> Packet | None:
        """Serve the next packet, honouring AQM head drops."""
        with maybe_span(self.tracer, "tm.dequeue", port=port):
            return self._dequeue(port, now)

    def _dequeue(self, port: int, now: float) -> Packet | None:
        while True:
            packet = super().dequeue(port, now)
            if packet is None:
                return None
            sojourn = (now - packet.enqueued_at
                       if packet.enqueued_at is not None else 0.0)
            self._last_sojourns[port] = sojourn
            if self._aqms[port].on_dequeue(packet, self._views[port],
                                           now, sojourn):
                packet.dropped = True
                self.stats[port].aqm_drops += 1
                self.stats[port].dequeued -= 1
                continue
            return packet
