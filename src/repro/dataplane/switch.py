"""Declarative switch assembly: :class:`SwitchSpec` + builder.

Instead of imperative wiring scattered across callers, a switch is
described once — ports, table contents, fault tolerance, supervision
— and :func:`build_switch` assembles an
:class:`~repro.dataplane.pipeline.AnalogPacketProcessor` from the
spec: stages on the shared runtime, middleware registered once, the
controller supervising degradable tables when asked.  The spec is a
frozen value object, so one description can assemble many identical
pipelines (the door to multi-pipeline sharding later).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.dataplane.classify import ClassifierSpec
from repro.netfunc.firewall import FirewallRule
from repro.runtime import SupervisionMiddleware

__all__ = ["SwitchSpec", "build_switch"]


@dataclass(frozen=True)
class SwitchSpec:
    """A declarative description of one Figure 5 switch.

    Attributes
    ----------
    n_ports:
        Number of egress ports.
    routes:
        ``(prefix, port)`` pairs installed into the LPM table.
    firewall_rules:
        ACL rules appended in order (first match wins).
    use_memristor_tcam:
        Memristor TCAMs (the paper) vs transistor TCAMs (baseline).
    port_rate_bps / queue_capacity / flow_cache_size / n_priorities:
        Forwarded to the processor unchanged (``n_priorities=1``
        makes every egress port one FIFO queue — the paper's
        Figure 8 plant, where the AQM alone governs packet delay
        with no strict-priority starvation in the measurement).
    graceful_degradation:
        Wrap each port's AQM in the shadow-monitored
        :class:`~repro.robustness.degradation.DegradingAQM`.
    classifier:
        Optional :class:`~repro.dataplane.classify.ClassifierSpec`.
        When set, an aCAM
        :class:`~repro.dataplane.classify.ClassificationStage` is
        slotted between the digital match-action tables and egress,
        classifying every surviving packet in one analog search per
        chunk and steering mapped classes to their ports.
    supervised:
        Register every degradable AQM with the controller and install
        a :class:`~repro.runtime.SupervisionMiddleware` driving
        ``controller.tick`` once per processed chunk, so
        reprogram-retry backoff advances with traffic.  Requires
        ``graceful_degradation`` (or a degradation-capable
        ``aqm_factory`` passed to :func:`build_switch`).
    """

    n_ports: int = 4
    routes: tuple[tuple[str, int], ...] = ()
    firewall_rules: tuple[FirewallRule, ...] = ()
    use_memristor_tcam: bool = True
    port_rate_bps: float = 10e9
    queue_capacity: int = 4096
    flow_cache_size: int = 4096
    n_priorities: int = 2
    graceful_degradation: bool = False
    supervised: bool = False
    classifier: ClassifierSpec | None = None

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise ValueError(
                f"need at least one port: {self.n_ports!r}")
        for prefix, port in self.routes:
            if not 0 <= port < self.n_ports:
                raise ValueError(
                    f"route {prefix!r} targets port {port}, but the "
                    f"spec has {self.n_ports} port(s)")
        if self.classifier is not None:
            for port in self.classifier.ports:
                if not 0 <= port < self.n_ports:
                    raise ValueError(
                        f"classifier steers to port {port}, but the "
                        f"spec has {self.n_ports} port(s)")

    def with_routes(self, *routes: tuple[str, int]) -> "SwitchSpec":
        """A copy of the spec with routes appended."""
        return replace(self, routes=self.routes + routes)


def build_switch(spec: SwitchSpec, *,
                 controller=None,
                 observability=None,
                 aqm_factory: Callable | None = None,
                 compile: bool = False):
    """Assemble a processor (stages + middleware) from a spec.

    ``controller``/``observability`` are shared infrastructure the
    caller may thread through several switches; ``aqm_factory``
    overrides the per-port AQM construction (and suppresses the
    spec's ``graceful_degradation`` wrapping, like on the processor).

    ``compile=True`` additionally runs the pipeline compiler
    (:mod:`repro.runtime.compile`) over the assembled switch: when the
    stage/middleware shape is provably reproducible the entry points
    dispatch to one fused chunk kernel (byte-identical verdicts,
    telemetry and energy); otherwise — e.g. with an observability hub
    whose tracing middleware needs the staged walk — the processor
    silently stays staged and ``processor.compiled_plan.reasons``
    records why.
    """
    # Deferred import: callers importing only the spec vocabulary
    # (e.g. config modules) need not pull in the whole dataplane.
    from repro.dataplane.pipeline import AnalogPacketProcessor

    if spec.supervised and not spec.graceful_degradation \
            and aqm_factory is None:
        raise ValueError(
            "supervised=True needs degradation-capable AQMs: set "
            "graceful_degradation=True or pass an aqm_factory that "
            "builds them")
    processor = AnalogPacketProcessor(
        spec.n_ports,
        use_memristor_tcam=spec.use_memristor_tcam,
        aqm_factory=aqm_factory,
        port_rate_bps=spec.port_rate_bps,
        queue_capacity=spec.queue_capacity,
        flow_cache_size=spec.flow_cache_size,
        n_priorities=spec.n_priorities,
        graceful_degradation=spec.graceful_degradation,
        controller=controller,
        observability=observability)
    for rule in spec.firewall_rules:
        processor.add_firewall_rule(rule)
    for prefix, port in spec.routes:
        processor.add_route(prefix, port)
    if spec.classifier is not None:
        from repro.dataplane.classify import (ACAMClassifier,
                                              ClassificationStage)
        classifier = ACAMClassifier(spec.classifier,
                                    ledger=processor.ledger)
        processor.insert_stage(ClassificationStage(classifier),
                               before="egress")
        processor.classifier = classifier
    if spec.supervised:
        supervisor = processor.controller
        for port in range(spec.n_ports):
            aqm = processor.traffic_manager.aqm(port)
            if hasattr(aqm, "maybe_retry"):
                table = getattr(aqm, "table", "aqm")
                supervisor.supervise(f"port{port}.{table}", aqm)
        processor.use_middleware(
            processor.default_middleware()
            + [SupervisionMiddleware(supervisor.tick)])
    if compile:
        processor.request_compile()
    return processor
