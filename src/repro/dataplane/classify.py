"""Optional aCAM traffic-classification stage for the staged runtime.

The paper's cognitive network functions go beyond match-action
forwarding: Section 7's decision-tree inference runs *inside* the
dataplane, classifying flows in one analog search per chunk.  This
module packages that as a drop-in pipeline stage:

* :class:`ClassifierSpec` — a frozen, declarative description of the
  compiled bank (features, leaf rows, class-to-port steering), so it
  can ride along on :class:`~repro.dataplane.switch.SwitchSpec`;
* :func:`classifier_spec_from_tree` — flatten a fitted
  :class:`~repro.netfunc.decision_tree.CARTTree` into that spec;
* :class:`ACAMClassifier` — the spec realised as an
  :class:`~repro.acam.ACAMArray` bank plus packet feature extraction;
* :class:`ClassificationStage` — a :class:`~repro.runtime.Stage`
  slotted between the digital match-action tables and egress, which
  re-steers classified packets to per-class egress ports and charges
  its search joules to the processor's ledger under ``acam.search``
  (so energy attribution and observability pick it up like any other
  stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.acam.array import ACAMArray
from repro.acam.cell import ACAMInterval
from repro.acam.compiler import tree_paths
from repro.energy.ledger import EnergyLedger
from repro.netfunc.decision_tree import CARTTree
from repro.packet import Packet
from repro.runtime import StageContext

__all__ = ["ACAMClassifier", "ClassificationStage", "ClassifierSpec",
           "classifier_spec_from_tree"]

#: Ledger account every bank search is charged to.
ACAM_SEARCH_ACCOUNT = "acam.search"

Bound = float | None
Interval = tuple[Bound, Bound]


@dataclass(frozen=True)
class ClassifierSpec:
    """Declarative description of a compiled aCAM classifier.

    ``rows`` holds one ``(class label, per-feature intervals)`` entry
    per stored row — typically one per decision-tree leaf, in
    depth-first order.  ``class_to_port`` maps class labels to egress
    ports; classes without an entry keep the routing decision the
    digital tables already made.  Everything is tuples so the spec is
    hashable and can live on the frozen
    :class:`~repro.dataplane.switch.SwitchSpec`.
    """

    features: tuple[str, ...]
    rows: tuple[tuple[int, tuple[Interval, ...]], ...]
    class_to_port: tuple[tuple[int, int], ...] = ()
    margin: float = 0.0
    sharpness: float = 1.0
    name: str = "acam_classifier"

    def __post_init__(self) -> None:
        if not self.features:
            raise ValueError("classifier needs at least one feature")
        if not self.rows:
            raise ValueError("classifier needs at least one row")
        for label, intervals in self.rows:
            if len(intervals) != len(self.features):
                raise ValueError(
                    f"row for class {label!r} has {len(intervals)} "
                    f"intervals, spec has {len(self.features)} "
                    f"features")
        labels = {label for label, _ in self.rows}
        for label, port in self.class_to_port:
            if label not in labels:
                raise ValueError(
                    f"steering for unknown class {label!r}")
            if port < 0:
                raise ValueError(f"port must be >= 0: {port!r}")
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0: {self.margin!r}")
        if self.sharpness <= 0:
            raise ValueError(
                f"sharpness must be > 0: {self.sharpness!r}")

    @property
    def ports(self) -> tuple[int, ...]:
        """Every egress port the steering map can send traffic to."""
        return tuple(port for _, port in self.class_to_port)


def classifier_spec_from_tree(tree: CARTTree,
                              features: Sequence[str],
                              class_to_port: Sequence[tuple[int, int]]
                              = (), *,
                              margin: float = 0.0,
                              sharpness: float = 1.0,
                              name: str = "acam_classifier"
                              ) -> ClassifierSpec:
    """Flatten a fitted tree's leaves into a classifier spec."""
    if len(features) != tree.n_features:
        raise ValueError(
            f"need one feature name per tree feature: "
            f"{len(features)} != {tree.n_features}")
    rows = tuple((path.label, path.intervals)
                 for path in tree_paths(tree))
    return ClassifierSpec(features=tuple(features), rows=rows,
                          class_to_port=tuple(class_to_port),
                          margin=margin, sharpness=sharpness,
                          name=name)


class ACAMClassifier:
    """A :class:`ClassifierSpec` realised as a searchable aCAM bank."""

    def __init__(self, spec: ClassifierSpec,
                 ledger: EnergyLedger | None = None) -> None:
        self.spec = spec
        self.array = ACAMArray(spec.features, ledger=ledger,
                               account=ACAM_SEARCH_ACCOUNT)
        for _, intervals in spec.rows:
            self.array.add_row([
                ACAMInterval(lo=lo, hi=hi, margin=spec.margin,
                             sharpness=spec.sharpness)
                for lo, hi in intervals])
        self.labels = np.array([label for label, _ in spec.rows],
                               dtype=int)
        self.port_for_class = dict(spec.class_to_port)

    def features_of(self, packet: Packet) -> list[float]:
        """Extract this classifier's feature vector from a packet."""
        values: list[float] = []
        for name in self.spec.features:
            attr = getattr(packet, name, None)
            if attr is not None and not callable(attr):
                values.append(float(attr))
            else:
                values.append(float(packet.field(name) or 0.0))
        return values

    def classify_batch(self, packets: Sequence[Packet]
                       ) -> tuple[np.ndarray, np.ndarray]:
        """(class labels, deterministic-match flags) for a chunk."""
        matrix = np.array([self.features_of(p) for p in packets],
                          dtype=float)
        result = self.array.search_batch(matrix)
        deterministic = result.deterministic_mask[
            np.arange(len(packets)), result.best_rows]
        return self.labels[result.best_rows], deterministic


class ClassificationStage:
    """One-shot aCAM classification between the MATs and egress.

    Every surviving packet is classified in a single bank search per
    chunk; classes with a steering entry override the egress port the
    digital tables resolved, and the per-packet class is published as
    the ``traffic_class`` column for downstream stages and tests.
    Search energy lands on the shared ledger under ``acam.search``,
    which the energy-attribution middleware books to this stage.
    """

    name = "acam_classifier"
    span_name = "dataplane.acam_classify"

    def __init__(self, classifier: ACAMClassifier) -> None:
        self.classifier = classifier

    def span_attributes(self, packets: Sequence[Packet]) -> dict:
        return {"chunk": len(packets),
                "rows": self.classifier.array.n_rows}

    def process_batch(self, packets: Sequence[Packet],
                      ctx: StageContext) -> list[Packet]:
        packets = list(packets)
        if not packets:
            return packets
        labels, deterministic = self.classifier.classify_batch(packets)
        ports = list(ctx.columns["egress_port"])
        port_for_class = self.classifier.port_for_class
        tally = ctx.tally
        for offset, label in enumerate(labels):
            label = int(label)
            tally.lookup("acam_classifier",
                         hit=bool(deterministic[offset]),
                         verdict=str(label))
            steered = port_for_class.get(label)
            if steered is not None:
                ports[offset] = steered
        ctx.columns["egress_port"] = ports
        ctx.columns["traffic_class"] = [int(l) for l in labels]
        return packets
