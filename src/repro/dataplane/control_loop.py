"""Intent-driven closed-loop control of the analog AQM.

The cognitive network controller's run-time half: an operator states
an *intent* — a latency bound and an acceptable loss budget — and the
loop keeps retargeting the pCAM-AQM to satisfy both.  When losses
exceed the budget while latency has slack, the loop trades latency
for loss by raising the AQM's delay target (within the intent bound);
when latency approaches the bound it tightens back.

This closes the Figure 5 loop end to end: telemetry up to the
controller, ``update_pCAM`` back down to the analog tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netfunc.aqm.pcam_aqm import PCAMAQM

__all__ = ["Intent", "IntentController"]


@dataclass(frozen=True)
class Intent:
    """An operator-level objective for one managed queue."""

    #: Hard upper bound on the delay target the loop may set [s].
    max_delay_s: float
    #: Acceptable AQM loss rate before latency is traded away.
    max_drop_rate: float
    #: Lowest delay target worth pursuing [s].
    min_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if not 0.0 < self.min_delay_s < self.max_delay_s:
            raise ValueError(
                f"need 0 < min_delay < max_delay: "
                f"{self.min_delay_s}, {self.max_delay_s}")
        if not 0.0 < self.max_drop_rate < 1.0:
            raise ValueError(
                f"drop-rate budget must be in (0, 1): "
                f"{self.max_drop_rate!r}")


class IntentController:
    """Periodic retargeting of one PCAMAQM against an intent.

    Feed it observations with :meth:`observe` (typically once per
    telemetry poll); it retargets the AQM when the intent is violated
    in either direction.
    """

    #: Multiplicative step applied to the delay target per decision.
    STEP = 1.3

    def __init__(self, aqm: PCAMAQM, intent: Intent,
                 min_interval_s: float = 1.0) -> None:
        if min_interval_s <= 0:
            raise ValueError(
                f"interval must be positive: {min_interval_s!r}")
        self.aqm = aqm
        self.intent = intent
        self.min_interval_s = min_interval_s
        self._last_decision_s: float | None = None
        self._drops_seen = 0
        self._packets_seen = 0
        self.retargets = 0

    @classmethod
    def for_port(cls, processor, port: int, intent: Intent,
                 min_interval_s: float = 1.0) -> "IntentController":
        """Manage one egress port of an assembled switch.

        ``processor`` is an
        :class:`~repro.dataplane.pipeline.AnalogPacketProcessor`
        (e.g. from :func:`~repro.dataplane.switch.build_switch`); a
        degradation wrapper around the port's AQM is unwrapped so the
        loop retargets the analog table itself.
        """
        aqm = processor.traffic_manager.aqm(port)
        analog = getattr(aqm, "analog", aqm)
        return cls(analog, intent, min_interval_s)

    @property
    def observed_drop_rate(self) -> float:
        """Drop fraction over the current observation window."""
        if self._packets_seen == 0:
            return 0.0
        return self._drops_seen / self._packets_seen

    def observe(self, now: float, packets: int, drops: int) -> None:
        """Feed cumulative-interval counters and maybe retarget.

        ``packets``/``drops`` are the counts since the previous call
        (the caller diffs its counters).
        """
        if packets < 0 or drops < 0 or drops > packets:
            raise ValueError(
                f"inconsistent counters: packets={packets}, "
                f"drops={drops}")
        self._packets_seen += packets
        self._drops_seen += drops
        if self._last_decision_s is not None and \
                now - self._last_decision_s < self.min_interval_s:
            return
        self._decide(now)

    def _decide(self, now: float) -> None:
        self._last_decision_s = now
        drop_rate = self.observed_drop_rate
        target = self.aqm.target_delay_s
        if (drop_rate > self.intent.max_drop_rate
                and target < self.intent.max_delay_s):
            # Too lossy, latency has slack: relax the delay target.
            new_target = min(self.intent.max_delay_s,
                             target * self.STEP)
        elif (drop_rate < 0.5 * self.intent.max_drop_rate
                and target > self.intent.min_delay_s):
            # Loss budget underused: chase lower latency.
            new_target = max(self.intent.min_delay_s,
                             target / self.STEP)
        else:
            new_target = target
        if new_target != target:
            self.aqm.retarget(new_target)
            self.retargets += 1
        # Window the statistics so the loop tracks recent behaviour.
        self._drops_seen = 0
        self._packets_seen = 0
