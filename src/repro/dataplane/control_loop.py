"""Deprecated re-export: the intent loop lives in :mod:`repro.control`.

The control plane was unified into the top-level ``repro.control``
package (sense -> decide -> actuate on one shared
:class:`~repro.control.loop.ControlLoop`); ``Intent`` and
``IntentController`` moved to :mod:`repro.control.intent`.  Every
internal import now uses ``repro.control`` directly, and this path
is kept only so old external imports keep resolving — with a
:class:`DeprecationWarning` telling them where to go.
"""

import warnings

from repro.control.intent import Intent, IntentController

__all__ = ["Intent", "IntentController"]

warnings.warn(
    "repro.dataplane.control_loop is deprecated; import Intent and "
    "IntentController from repro.control instead",
    DeprecationWarning, stacklevel=2)
