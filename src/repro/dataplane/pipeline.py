"""The full memristor-based cognitive packet processor (Figure 5).

Wires together every block of the proposed architecture:

    ingress -> Parser -> digital MATs (firewall, IP lookup on
    memristor TCAMs) -> analog MATs (pCAM) -> Cognitive Traffic
    Manager (pCAM-based AQM at egress) -> egress queues

and keeps a per-component energy ledger so experiments can attribute
the cost of each packet to the digital and analog domains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.dataplane.controller import CognitiveNetworkController
from repro.packet import Packet
from repro.dataplane.fastpath import (
    FlowCache,
    PacketBatch,
    TelemetryTally,
    classify_chunk,
)
from repro.dataplane.parser import HeaderParser, ParseError
from repro.dataplane.telemetry import TelemetryCollector, stamp_packet
from repro.dataplane.traffic_manager import (
    Admission,
    CognitiveTrafficManager,
)
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, Firewall, FirewallRule
from repro.netfunc.lookup import IPLookup
from repro.observability.hub import Observability
from repro.observability.tracing import maybe_span
from repro.tcam.mtcam import MemristorTCAM

__all__ = ["AnalogPacketProcessor", "ProcessResult", "Verdict"]


class Verdict(enum.Enum):
    """Fate of a processed packet."""

    QUEUED = "queued"
    DROPPED_PARSE = "dropped_parse"
    DROPPED_ACL = "dropped_acl"
    DROPPED_NO_ROUTE = "dropped_no_route"
    DROPPED_AQM = "dropped_aqm"
    DROPPED_OVERFLOW = "dropped_overflow"


@dataclass(frozen=True)
class ProcessResult:
    """Outcome of one packet's trip through the pipeline."""

    verdict: Verdict
    port: int | None = None
    packet: Packet | None = None

    @property
    def delivered(self) -> bool:
        """True when the packet reached an egress queue."""
        return self.verdict is Verdict.QUEUED


class AnalogPacketProcessor:
    """The Figure 5 switch: digital + analog match-action pipeline.

    Parameters
    ----------
    n_ports:
        Number of egress ports.
    use_memristor_tcam:
        Back the digital tables with memristor TCAMs (the paper's
        architecture) instead of transistor TCAMs (the baseline).
    aqm_factory:
        Builds the per-port AQM; defaults to the pCAM-based AQM.
    port_rate_bps:
        Egress line rate used by the AQM's delay estimator.
    flow_cache_size:
        Capacity of the LRU flow-result cache on the digital tables
        (keyed on flow 5-tuple + table generation); ``0`` disables
        caching so every packet hits the TCAMs.
    observability:
        Optional :class:`~repro.observability.hub.Observability` hub.
        When given, the pipeline's telemetry collector and energy
        ledger are folded onto the hub's registry, degradation-capable
        AQMs are bound as fallback/retry metrics, the shared tracer is
        threaded through every stage (parser -> tables -> traffic
        manager -> queues -> pCAM pipeline), and the batch kernels
        report to the hub's profiler.  Without a hub every hook stays
        inert.
    """

    def __init__(self, n_ports: int = 4, *,
                 use_memristor_tcam: bool = True,
                 aqm_factory=None,
                 port_rate_bps: float = 10e9,
                 queue_capacity: int = 4096,
                 flow_cache_size: int = 4096,
                 controller: CognitiveNetworkController | None = None,
                 observability: Observability | None = None
                 ) -> None:
        if n_ports < 1:
            raise ValueError(f"need at least one port: {n_ports!r}")
        self.ledger = EnergyLedger()
        self.parser = HeaderParser()
        if use_memristor_tcam:
            firewall_tcam = MemristorTCAM(Firewall.WIDTH,
                                          ledger=self.ledger)
            lookup_tcam = MemristorTCAM(IPLookup.WIDTH, ledger=self.ledger)
        else:
            firewall_tcam = None
            lookup_tcam = None
        self.firewall = Firewall(default_action=Action.PERMIT,
                                 tcam=firewall_tcam, ledger=self.ledger)
        self.lookup = IPLookup(tcam=lookup_tcam, ledger=self.ledger)
        factory = aqm_factory or (lambda: PCAMAQM(ledger=self.ledger))
        self.observability = observability
        tracer = observability.tracer if observability else None
        self.traffic_manager = CognitiveTrafficManager(
            n_ports, aqm_factory=factory,
            queue_capacity=queue_capacity,
            port_rate_bps=port_rate_bps,
            tracer=tracer)
        self.controller = controller or CognitiveNetworkController()
        self.telemetry = TelemetryCollector()
        self.flow_cache = FlowCache(flow_cache_size) \
            if flow_cache_size > 0 else None
        self._ports_by_hop: dict[str, int] = {}
        self.processed = 0
        self.verdict_counts: dict[Verdict, int] = {
            verdict: 0 for verdict in Verdict}
        if observability is not None:
            self._wire_observability(observability)

    def _wire_observability(self, obs: Observability) -> None:
        """Bind every pipeline component to the shared hub."""
        obs.watch_telemetry(self.telemetry)
        obs.watch_ledger(self.ledger)
        for port in range(self.traffic_manager.n_ports):
            aqm = self.traffic_manager.aqm(port)
            if hasattr(aqm, "maybe_retry") and hasattr(
                    aqm, "fallback_events"):
                table = getattr(aqm, "table", "pcam_aqm")
                obs.watch_degradation(aqm, table=f"port{port}.{table}")
            # The analog pipeline may sit directly on the AQM or one
            # level down inside a degradation wrapper.
            pipeline = getattr(aqm, "pipeline", None) or getattr(
                getattr(aqm, "analog", None), "pipeline", None)
            if pipeline is not None:
                pipeline.tracer = obs.tracer
                pipeline.profiler = obs.profiler
        self.controller.attach_observability(obs)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_route(self, prefix: str, port: int) -> None:
        """Route a prefix to an egress port (invalidates flow cache)."""
        if not 0 <= port < self.traffic_manager.n_ports:
            raise IndexError(f"port {port} out of range")
        next_hop = f"port{port}"
        self._ports_by_hop[next_hop] = port
        self.lookup.add_route(prefix, next_hop)
        self.invalidate_flow_cache()

    def add_firewall_rule(self, rule: FirewallRule) -> None:
        """Append an ACL rule (invalidates the flow cache)."""
        self.firewall.add_rule(rule)
        self.invalidate_flow_cache()

    def invalidate_flow_cache(self) -> None:
        """Drop every cached digital classification result.

        Table mutations call this automatically; the table generation
        counters would catch a stale entry anyway, so this is the
        explicit belt to the generation braces (and the hook for
        out-of-band invalidation, e.g. after fault injection).
        """
        if self.flow_cache is not None:
            self.flow_cache.clear()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def process_frame(self, frame: bytes, now: float = 0.0
                      ) -> ProcessResult:
        """Parse a wire-format Ethernet frame and process it."""
        obs = self.observability
        if obs is not None:
            obs.set_time(now)
        with maybe_span(obs and obs.tracer, "dataplane.parse"):
            try:
                packet = self.parser.parse_frame(frame, created_at=now)
            except ParseError:
                return self._finish(Verdict.DROPPED_PARSE)
        return self.process(packet, now)

    def process_frames(self, frames: Sequence[bytes], now: float = 0.0,
                       chunk_size: int = 64) -> list[ProcessResult]:
        """Parse and process a burst of wire-format frames.

        Malformed frames yield ``DROPPED_PARSE`` results in place;
        the survivors ride the columnar :meth:`process_batch` path.
        Results are returned in frame order.
        """
        obs = self.observability
        if obs is not None:
            obs.set_time(now)
        with maybe_span(obs and obs.tracer, "dataplane.parse",
                        frames=len(frames)):
            parsed = self.parser.parse_frames(frames, created_at=now)
        packets = [packet for packet in parsed if packet is not None]
        batched = iter(self.process_batch(packets, now,
                                          chunk_size=chunk_size))
        return [next(batched) if packet is not None
                else self._finish(Verdict.DROPPED_PARSE)
                for packet in parsed]

    def process(self, packet: Packet, now: float = 0.0) -> ProcessResult:
        """Run one parsed packet through the match-action pipeline.

        Delegates to the columnar fast path as a batch of one, so the
        scalar and batched paths cannot drift apart.
        """
        obs = self.observability
        if obs is not None:
            obs.set_time(now)
        tracer = obs.tracer if obs else None
        results: list[ProcessResult | None] = [None]
        with maybe_span(tracer, "dataplane.process"):
            self._process_chunk([packet], 0, now, results, tracer)
        assert results[0] is not None
        return results[0]

    def process_batch(self, packets: Sequence[Packet], now: float = 0.0,
                      chunk_size: int = 64) -> list[ProcessResult]:
        """Run many packets through the pipeline in admission chunks.

        Per chunk, the digital match-action tables (ACL, IP lookup)
        are consulted in whole-batch vectorised TCAM passes over a
        columnar packet view, with repeated flows answered from the
        generation-keyed flow cache; egress admission is batched too:
        all survivors of a chunk bound for the same port are judged by
        that port's AQM in one vectorised pCAM search against the
        chunk-start queue state.  Results are returned in input order;
        ``chunk_size=1`` reproduces :meth:`process` exactly.
        """
        if chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1: {chunk_size!r}")
        obs = self.observability
        if obs is not None:
            obs.set_time(now)
        tracer = obs.tracer if obs else None
        results: list[ProcessResult | None] = [None] * len(packets)
        for start in range(0, len(packets), chunk_size):
            chunk = packets[start:start + chunk_size]
            with maybe_span(tracer, "dataplane.process_batch",
                            chunk=len(chunk)):
                self._process_chunk(chunk, start, now, results, tracer)
        return [result for result in results if result is not None]

    def _process_chunk(self, chunk: Sequence[Packet], start: int,
                       now: float,
                       results: list[ProcessResult | None],
                       tracer=None) -> None:
        # Columnar digital MATs: one SoA view, one cached/deduplicated
        # vectorised ACL pass, one LPM pass over the survivors.
        tally = TelemetryTally()
        staged: dict[int, list[tuple[int, Packet]]] = {}
        with maybe_span(tracer, "dataplane.digital_mats",
                        chunk=len(chunk)):
            batch = PacketBatch(chunk)
            actions, hops = classify_chunk(
                batch, self.firewall, self.lookup, self.flow_cache,
                tracer)
            default = self.firewall.default_action
            for offset, packet in enumerate(chunk):
                index = start + offset
                acl = actions[offset]
                tally.lookup("firewall", hit=acl is not default,
                             verdict=acl.value)
                if acl is Action.DENY:
                    packet.dropped = True
                    tally.event("acl_drop")
                    results[index] = self._finish(Verdict.DROPPED_ACL,
                                                  packet=packet)
                    continue
                next_hop = hops[offset]
                tally.lookup("ip_lookup", hit=next_hop is not None,
                             verdict=next_hop)
                if next_hop is None:
                    packet.dropped = True
                    tally.event("no_route_drop")
                    results[index] = self._finish(
                        Verdict.DROPPED_NO_ROUTE, packet=packet)
                    continue
                port = self._ports_by_hop[next_hop]
                stamp_packet(packet, f"egress{port}",
                             self.traffic_manager.backlog(port), now)
                staged.setdefault(port, []).append((index, packet))
        # Batched egress admission per port.
        for port, entries in staged.items():
            outcomes = self.traffic_manager.enqueue_batch(
                port, [packet for _, packet in entries], now)
            self.telemetry.set_gauge(
                f"port{port}.backlog",
                self.traffic_manager.backlog(port))
            for (index, packet), outcome in zip(entries, outcomes):
                if outcome is Admission.QUEUED:
                    results[index] = self._finish(
                        Verdict.QUEUED, port=port, packet=packet)
                elif outcome is Admission.AQM_DROP:
                    tally.event("aqm_drop")
                    results[index] = self._finish(
                        Verdict.DROPPED_AQM, port=port, packet=packet)
                else:
                    tally.event("overflow_drop")
                    results[index] = self._finish(
                        Verdict.DROPPED_OVERFLOW, port=port,
                        packet=packet)
        # One telemetry flush per chunk instead of 3 calls per packet.
        tally.flush(self.telemetry)

    def drain(self, port: int, now: float = 0.0,
              limit: int | None = None) -> list[Packet]:
        """Serve pending packets from one egress port."""
        served: list[Packet] = []
        while limit is None or len(served) < limit:
            packet = self.traffic_manager.dequeue(port, now)
            if packet is None:
                break
            served.append(packet)
        return served

    def _finish(self, verdict: Verdict, port: int | None = None,
                packet: Packet | None = None) -> ProcessResult:
        self.processed += 1
        self.verdict_counts[verdict] += 1
        return ProcessResult(verdict=verdict, port=port, packet=packet)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def energy_total_j(self) -> float:
        """Total energy across all pipeline components [J]."""
        return self.ledger.total

    def energy_breakdown(self) -> dict[str, float]:
        """Per-account energy totals of the whole pipeline [J]."""
        return self.ledger.breakdown()
