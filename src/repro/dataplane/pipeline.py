"""The full memristor-based cognitive packet processor (Figure 5).

Wires together every block of the proposed architecture:

    ingress -> Parser -> digital MATs (firewall, IP lookup on
    memristor TCAMs) -> analog MATs (pCAM) -> Cognitive Traffic
    Manager (pCAM-based AQM at egress) -> egress queues

as stages on one :class:`repro.runtime.PipelineRuntime`.  Every entry
point — ``process`` (scalar), ``process_batch`` (columnar),
``process_frame``/``process_frames`` (wire format) — is a chunk
through the same engine; the scalar path is literally a batch of one,
so the paths cannot drift apart.  Cross-cutting concerns (span
tracing, telemetry flushing, energy attribution) are middleware
registered once at assembly time; a per-component energy ledger
attributes each packet's cost to the digital and analog domains.
"""

from __future__ import annotations

from typing import Sequence

from repro.control.cognitive import CognitiveNetworkController
from repro.dataplane.fastpath import FlowCache, TelemetryTally
from repro.dataplane.results import ProcessResult, Verdict
from repro.dataplane.stages import (
    DigitalMatsStage,
    EgressStage,
    ParserStage,
)
from repro.dataplane.parser import HeaderParser
from repro.dataplane.telemetry import TelemetryCollector
from repro.dataplane.traffic_manager import CognitiveTrafficManager
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.netfunc.firewall import Action, Firewall, FirewallRule
from repro.netfunc.lookup import IPLookup
from repro.observability.hub import Observability
from repro.packet import Packet
from repro.runtime import (
    EnergyAttributionMiddleware,
    PipelineRuntime,
    StageContext,
    TelemetryMiddleware,
    TracingMiddleware,
)
from repro.tcam.mtcam import MemristorTCAM

__all__ = ["AnalogPacketProcessor", "ProcessResult", "Verdict"]


class AnalogPacketProcessor:
    """The Figure 5 switch: digital + analog match-action pipeline.

    Parameters
    ----------
    n_ports:
        Number of egress ports.
    use_memristor_tcam:
        Back the digital tables with memristor TCAMs (the paper's
        architecture) instead of transistor TCAMs (the baseline).
    aqm_factory:
        Builds the per-port AQM; defaults to the pCAM-based AQM.
    port_rate_bps:
        Egress line rate used by the AQM's delay estimator.
    flow_cache_size:
        Capacity of the LRU flow-result cache on the digital tables
        (keyed on flow 5-tuple + table generation); ``0`` disables
        caching so every packet hits the TCAMs.
    graceful_degradation:
        Wrap each port's AQM in a
        :class:`~repro.robustness.degradation.DegradingAQM` (shadow
        oracle + digital CoDel fallback + reprogram-retry backoff).
        Ignored when an explicit ``aqm_factory`` is given.
    observability:
        Optional :class:`~repro.observability.hub.Observability` hub.
        When given, the pipeline's telemetry collector and energy
        ledger are folded onto the hub's registry, degradation-capable
        AQMs are bound as fallback/retry metrics, the shared tracer is
        registered as tracing middleware (parser -> tables -> traffic
        manager -> queues -> pCAM pipeline), and the batch kernels
        report to the hub's profiler.  Without a hub every hook stays
        inert.
    """

    def __init__(self, n_ports: int = 4, *,
                 use_memristor_tcam: bool = True,
                 aqm_factory=None,
                 port_rate_bps: float = 10e9,
                 queue_capacity: int = 4096,
                 flow_cache_size: int = 4096,
                 n_priorities: int = 2,
                 graceful_degradation: bool = False,
                 controller: CognitiveNetworkController | None = None,
                 observability: Observability | None = None
                 ) -> None:
        if n_ports < 1:
            raise ValueError(f"need at least one port: {n_ports!r}")
        self.ledger = EnergyLedger()
        self.parser = HeaderParser()
        if use_memristor_tcam:
            firewall_tcam = MemristorTCAM(Firewall.WIDTH,
                                          ledger=self.ledger)
            lookup_tcam = MemristorTCAM(IPLookup.WIDTH, ledger=self.ledger)
        else:
            firewall_tcam = None
            lookup_tcam = None
        self.firewall = Firewall(default_action=Action.PERMIT,
                                 tcam=firewall_tcam, ledger=self.ledger)
        self.lookup = IPLookup(tcam=lookup_tcam, ledger=self.ledger)
        if aqm_factory is not None:
            factory = aqm_factory
        elif graceful_degradation:
            # Deferred import: robustness sits above the dataplane.
            from repro.robustness.degradation import DegradingAQM
            factory = lambda: DegradingAQM(PCAMAQM(ledger=self.ledger))
        else:
            factory = lambda: PCAMAQM(ledger=self.ledger)
        self.observability = observability
        tracer = observability.tracer if observability else None
        self.traffic_manager = CognitiveTrafficManager(
            n_ports, aqm_factory=factory,
            n_priorities=n_priorities,
            queue_capacity=queue_capacity,
            port_rate_bps=port_rate_bps,
            tracer=tracer)
        self.controller = controller or CognitiveNetworkController()
        self.telemetry = TelemetryCollector()
        self.flow_cache = FlowCache(flow_cache_size) \
            if flow_cache_size > 0 else None
        self._ports_by_hop: dict[str, int] = {}
        self.processed = 0
        self.verdict_counts: dict[Verdict, int] = {
            verdict: 0 for verdict in Verdict}
        # The staged runtime: one engine behind every entry point.
        self._parser_stage = ParserStage(self)
        self._digital_stage = DigitalMatsStage(self)
        self._egress_stage = EgressStage(self)
        self._frame_stages = (self._parser_stage,)
        self._mat_stages = (self._digital_stage, self._egress_stage)
        self.runtime = PipelineRuntime(
            [self._parser_stage, self._digital_stage,
             self._egress_stage],
            self.default_middleware())
        #: Fused chunk kernel (set by :meth:`request_compile` when the
        #: compiler proves the staged walk reproducible); None keeps
        #: every entry point on the staged runtime.
        self._fused = None
        self.compiled_plan = None
        self._compile_requested = False
        if observability is not None:
            self._wire_observability(observability)

    # ------------------------------------------------------------------
    # Runtime assembly
    # ------------------------------------------------------------------
    def default_middleware(self) -> list:
        """The stock middleware set the switch is assembled with.

        Telemetry flushing and energy attribution always; span tracing
        only when an observability hub is attached.  Each concern is
        registered exactly once here instead of being open-coded in
        every stage.
        """
        middleware: list = [
            TelemetryMiddleware(self.telemetry, TelemetryTally)]
        if self.observability is not None:
            middleware.append(
                TracingMiddleware(self.observability.tracer))
        middleware.append(EnergyAttributionMiddleware(self.ledger))
        return middleware

    def insert_stage(self, stage, *, before: str) -> None:
        """Slot an extra stage into the match-action walk.

        The stage lands immediately before the named composed stage —
        both in the runtime's full stage list and in the match-action
        subsequence the packet entry points run — on the *existing*
        runtime object, so observability collectors and middleware
        bound at assembly keep working unchanged.
        """
        anchor = self.runtime.stage(before)
        if any(s.name == stage.name for s in self.runtime.stages):
            raise ValueError(
                f"duplicate stage name: {stage.name!r}")
        self.runtime.stages.insert(
            self.runtime.stages.index(anchor), stage)
        mats = list(self._mat_stages)
        if anchor in mats:
            mats.insert(mats.index(anchor), stage)
        else:
            mats.append(stage)
        self._mat_stages = tuple(mats)
        self._recompile()

    def use_middleware(self, middleware: Sequence) -> None:
        """Replace the runtime's middleware (assembly-time hook).

        The stock middleware are order independent; this exists so
        experiments (and the ordering tests) can permute or extend the
        set without rebuilding the switch.
        """
        self.runtime.set_middleware(middleware)
        self._recompile()

    def request_compile(self):
        """Opt into the fused chunk kernel (when provably exact).

        Runs the pipeline compiler (:mod:`repro.runtime.compile`) over
        the current stage/middleware assembly and returns its
        :class:`~repro.runtime.compile.CompiledPlan`.  When the plan
        fuses, every entry point dispatches to the fused kernel and
        each port AQM's compiled (constant-folded) lane is enabled;
        when it refuses — tracing middleware, exotic stages — the
        staged walk stays in place and ``plan.reasons`` says why.  The
        request is sticky: stage insertion and middleware replacement
        recompile automatically.
        """
        self._compile_requested = True
        return self._recompile()

    def _recompile(self):
        """Re-run the compiler after a structural change (if opted in)."""
        if not self._compile_requested:
            return None
        # Deferred import: the compiler is the one runtime module
        # allowed to see the dataplane, and plain (staged) assembly
        # should not pay for loading it.
        from repro.runtime.compile import compile_processor

        plan = compile_processor(self)
        self.compiled_plan = plan
        self._fused = plan.kernel
        hook_name = ("enable_compiled_lane" if plan.fused
                     else "disable_compiled_lane")
        for port in range(self.traffic_manager.n_ports):
            hook = getattr(self.traffic_manager.aqm(port), hook_name,
                           None)
            if hook is not None:
                hook()
        return plan

    def _wire_observability(self, obs: Observability) -> None:
        """Bind every pipeline component to the shared hub."""
        obs.watch_telemetry(self.telemetry)
        obs.watch_ledger(self.ledger)
        obs.watch_runtime(self.runtime)
        for port in range(self.traffic_manager.n_ports):
            aqm = self.traffic_manager.aqm(port)
            if hasattr(aqm, "maybe_retry") and hasattr(
                    aqm, "fallback_events"):
                table = getattr(aqm, "table", "pcam_aqm")
                obs.watch_degradation(aqm, table=f"port{port}.{table}")
            # DegradingAQM forwards ``pipeline`` to its wrapped analog
            # AQM, so one attribute covers bare and wrapped tables.
            pipeline = getattr(aqm, "pipeline", None)
            if pipeline is not None:
                pipeline.tracer = obs.tracer
                pipeline.profiler = obs.profiler
        self.controller.attach_observability(obs)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_route(self, prefix: str, port: int) -> None:
        """Route a prefix to an egress port (invalidates flow cache)."""
        if not 0 <= port < self.traffic_manager.n_ports:
            raise IndexError(f"port {port} out of range")
        next_hop = f"port{port}"
        self._ports_by_hop[next_hop] = port
        self.lookup.add_route(prefix, next_hop)
        self.invalidate_flow_cache()

    def add_firewall_rule(self, rule: FirewallRule) -> None:
        """Append an ACL rule (invalidates the flow cache)."""
        self.firewall.add_rule(rule)
        self.invalidate_flow_cache()

    def invalidate_flow_cache(self) -> None:
        """Drop every cached digital classification result.

        Table mutations call this automatically; the table generation
        counters would catch a stale entry anyway, so this is the
        explicit belt to the generation braces (and the hook for
        out-of-band invalidation, e.g. after fault injection).
        """
        if self.flow_cache is not None:
            self.flow_cache.clear()

    # ------------------------------------------------------------------
    # Data path (every entry point is a chunk through the runtime)
    # ------------------------------------------------------------------
    def process_frame(self, frame: bytes, now: float = 0.0
                      ) -> ProcessResult:
        """Parse a wire-format Ethernet frame and process it."""
        return self.process_frames([frame], now, chunk_size=1)[0]

    def process_frames(self, frames: Sequence[bytes], now: float = 0.0,
                       chunk_size: int = 64) -> list[ProcessResult]:
        """Parse and process a burst of wire-format frames.

        The whole burst is parsed in one columnar pass (malformed
        frames yield ``DROPPED_PARSE`` results in place); the
        survivors then ride the same chunked match-action walk as
        :meth:`process_batch`.  Results are returned in frame order.
        """
        self._set_time(now)
        if self._fused is not None:
            return self._fused.process_frames(frames, now, chunk_size)
        results: list[ProcessResult | None] = [None] * len(frames)
        ctx = StageContext(now, self._emitter(results),
                           indices=range(len(frames)),
                           entry_name=None)
        packets = self.runtime.run_chunk(list(frames), ctx,
                                         self._frame_stages)
        self._run_chunks(packets, ctx.columns["index"], now,
                         chunk_size, results)
        return results  # type: ignore[return-value]

    def process(self, packet: Packet, now: float = 0.0) -> ProcessResult:
        """Run one parsed packet through the match-action pipeline.

        Literally a batch of one through the staged runtime, so the
        scalar and batched paths cannot drift apart.
        """
        self._set_time(now)
        if self._fused is not None:
            return self._fused.process_one(packet, now)
        results: list[ProcessResult | None] = [None]
        ctx = StageContext(now, self._emitter(results), indices=[0],
                           entry_name="dataplane.process")
        self.runtime.run_chunk([packet], ctx, self._mat_stages)
        assert results[0] is not None
        return results[0]

    def process_batch(self, packets: Sequence[Packet], now: float = 0.0,
                      chunk_size: int = 64) -> list[ProcessResult]:
        """Run many packets through the pipeline in admission chunks.

        Per chunk, the digital match-action tables (ACL, IP lookup)
        are consulted in whole-batch vectorised TCAM passes over a
        columnar packet view, with repeated flows answered from the
        generation-keyed flow cache; egress admission is batched too:
        all survivors of a chunk bound for the same port are judged by
        that port's AQM in one vectorised pCAM search against the
        chunk-start queue state.  Results are returned in input order;
        ``chunk_size=1`` reproduces :meth:`process` exactly.
        """
        self._set_time(now)
        results: list[ProcessResult | None] = [None] * len(packets)
        if self._fused is not None:
            self._fused.run_chunks(packets, range(len(packets)), now,
                                   chunk_size, results)
        else:
            self._run_chunks(packets, range(len(packets)), now,
                             chunk_size, results)
        return results  # type: ignore[return-value]

    def _run_chunks(self, packets: Sequence[Packet],
                    indices: Sequence[int], now: float, chunk_size: int,
                    results: list[ProcessResult | None]) -> None:
        """Chunk packets through the match-action stages."""
        if chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1: {chunk_size!r}")
        emit = self._emitter(results)
        indices = list(indices)
        for start in range(0, len(packets), chunk_size):
            chunk = packets[start:start + chunk_size]
            ctx = StageContext(
                now, emit,
                indices=indices[start:start + chunk_size],
                entry_name="dataplane.process_batch",
                entry_attributes={"chunk": len(chunk)})
            self.runtime.run_chunk(chunk, ctx, self._mat_stages)

    def _emitter(self, results: list[ProcessResult | None]):
        """An emit callback recording verdicts into a result slot list."""
        def emit(index: int, verdict: Verdict, port: int | None = None,
                 packet: Packet | None = None) -> None:
            results[index] = self._finish(verdict, port=port,
                                          packet=packet)
        return emit

    def _set_time(self, now: float) -> None:
        obs = self.observability
        if obs is not None:
            obs.set_time(now)

    def drain(self, port: int, now: float = 0.0,
              limit: int | None = None) -> list[Packet]:
        """Serve pending packets from one egress port."""
        served: list[Packet] = []
        while limit is None or len(served) < limit:
            packet = self.traffic_manager.dequeue(port, now)
            if packet is None:
                break
            served.append(packet)
        return served

    def _finish(self, verdict: Verdict, port: int | None = None,
                packet: Packet | None = None) -> ProcessResult:
        self.processed += 1
        self.verdict_counts[verdict] += 1
        return ProcessResult(verdict=verdict, port=port, packet=packet)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def energy_total_j(self) -> float:
        """Total energy across all pipeline components [J]."""
        return self.ledger.total

    def energy_breakdown(self) -> dict[str, float]:
        """Per-account energy totals of the whole pipeline [J]."""
        return self.ledger.breakdown()

    def energy_by_stage(self) -> dict[str, float]:
        """Joules attributed to each runtime stage (middleware view)."""
        return self.runtime.energy_attribution()
