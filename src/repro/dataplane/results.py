"""Packet verdicts, per-packet results, and derived drop accounting.

The verdict vocabulary and the telemetry drop-counter names used to
live apart (the enum in ``pipeline.py``, the event strings repeated
inline in both the scalar and batched paths).  They are unified here:
:data:`DROP_EVENTS` is *derived* from the :class:`Verdict` enum, so a
new drop reason automatically gets a telemetry counter and can never
drift between paths — there is only one path now anyway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.packet import Packet

__all__ = ["DROP_EVENTS", "ProcessResult", "Verdict", "drop_event"]


class Verdict(enum.Enum):
    """Fate of a processed packet."""

    QUEUED = "queued"
    DROPPED_PARSE = "dropped_parse"
    DROPPED_ACL = "dropped_acl"
    DROPPED_NO_ROUTE = "dropped_no_route"
    DROPPED_AQM = "dropped_aqm"
    DROPPED_OVERFLOW = "dropped_overflow"

    @property
    def dropped(self) -> bool:
        """True for every verdict except delivery to a queue."""
        return self is not Verdict.QUEUED


def drop_event(verdict: Verdict) -> str | None:
    """Telemetry event name counting one drop verdict (None for QUEUED).

    Derived, not hand-written: ``DROPPED_NO_ROUTE`` -> ``no_route_drop``
    and so on, reproducing the historical counter names exactly while
    guaranteeing every future drop verdict gets a counter.
    """
    if not verdict.dropped:
        return None
    return verdict.value.removeprefix("dropped_") + "_drop"


#: Event-counter name per dropping verdict (every member but QUEUED).
DROP_EVENTS: dict[Verdict, str] = {
    verdict: drop_event(verdict)
    for verdict in Verdict if verdict.dropped
}


@dataclass(frozen=True)
class ProcessResult:
    """Outcome of one packet's trip through the pipeline."""

    verdict: Verdict
    port: int | None = None
    packet: Packet | None = None

    @property
    def delivered(self) -> bool:
        """True when the packet reached an egress queue."""
        return self.verdict is Verdict.QUEUED
