"""Ingress/egress packet buffers of the switch model (Figure 5).

Synchronous FIFO buffers used by the packet-processing pipeline (the
event-driven queue with service dynamics lives in
:mod:`repro.simnet.queue_sim`).  Limits are enforced in both packets
and bytes; overflow drops are counted.
"""

from __future__ import annotations

from collections import deque

from repro.packet import Packet

__all__ = ["PacketQueue"]


class PacketQueue:
    """A bounded FIFO with packet- and byte-level occupancy tracking."""

    def __init__(self, name: str, capacity_packets: int = 1024,
                 capacity_bytes: int | None = None) -> None:
        if capacity_packets < 1:
            raise ValueError(
                f"capacity must be >= 1 packet: {capacity_packets!r}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(
                f"byte capacity must be >= 1: {capacity_bytes!r}")
        self.name = name
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True when no packet is buffered."""
        return not self._queue

    @property
    def is_full(self) -> bool:
        """True when a further push would overflow a limit."""
        if len(self._queue) >= self.capacity_packets:
            return True
        return (self.capacity_bytes is not None
                and self._bytes >= self.capacity_bytes)

    def push(self, packet: Packet, now: float = 0.0) -> bool:
        """Enqueue; returns False (and counts a drop) on overflow."""
        if self.is_full:
            packet.dropped = True
            self.dropped += 1
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        self.enqueued += 1
        return True

    def pop(self, now: float = 0.0) -> Packet | None:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        packet.dequeued_at = now
        return packet

    def peek(self) -> Packet | None:
        """The head packet without removing it."""
        return self._queue[0] if self._queue else None

    def __repr__(self) -> str:
        return (f"PacketQueue({self.name!r}, {len(self._queue)}/"
                f"{self.capacity_packets} pkts, {self._bytes} B)")
