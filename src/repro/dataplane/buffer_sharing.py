"""Shared-buffer management across egress queues.

The paper's AQM motivation cites ABM ("Active Buffer Management in
Datacenters", Addanki et al. [1]): switch buffers are *shared*, and
per-queue limits must adapt to the global occupancy.  This module
implements the two classic policies over a common buffer pool:

* **Dynamic Thresholds (DT)** — a queue may grow to
  ``alpha * remaining_buffer``;
* **ABM-style scaling** — DT additionally scaled per priority class
  and divided by the number of congested queues of that class, which
  is what preserves both burst headroom and fairness.

The manager only answers admission questions; the queues themselves
live wherever the caller keeps them (synchronous
:class:`~repro.dataplane.queues.PacketQueue` or the event-driven
simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packet import Packet

__all__ = ["BufferPool", "DynamicThresholdPolicy", "ABMPolicy"]


@dataclass
class _QueueShare:
    """Book-keeping for one queue drawing from the pool."""

    occupancy_bytes: int = 0
    priority: int = 0


class BufferPool:
    """A shared byte pool with per-queue occupancy accounting."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError(
                f"capacity must be positive: {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._queues: dict[str, _QueueShare] = {}

    def register(self, queue_id: str, priority: int = 0) -> None:
        """Add a queue (with its priority class) to the pool."""
        if queue_id in self._queues:
            raise ValueError(f"queue {queue_id!r} already registered")
        self._queues[queue_id] = _QueueShare(priority=priority)

    @property
    def queue_ids(self) -> tuple[str, ...]:
        """Identifiers of every registered queue."""
        return tuple(self._queues)

    @property
    def used_bytes(self) -> int:
        """Bytes currently held across all queues."""
        return sum(share.occupancy_bytes
                   for share in self._queues.values())

    @property
    def free_bytes(self) -> int:
        """Unused pool capacity [bytes]."""
        return self.capacity_bytes - self.used_bytes

    def occupancy(self, queue_id: str) -> int:
        """Bytes currently held by one queue."""
        return self._share(queue_id).occupancy_bytes

    def priority_of(self, queue_id: str) -> int:
        """The priority class a queue registered with."""
        return self._share(queue_id).priority

    def congested_queues(self, priority: int,
                         threshold_bytes: int = 1) -> int:
        """Number of non-empty queues of a priority class."""
        return sum(
            1 for share in self._queues.values()
            if share.priority == priority
            and share.occupancy_bytes >= threshold_bytes)

    def charge(self, queue_id: str, size_bytes: int) -> None:
        """Account an admitted packet."""
        if size_bytes < 1:
            raise ValueError(f"size must be positive: {size_bytes!r}")
        self._share(queue_id).occupancy_bytes += size_bytes

    def release(self, queue_id: str, size_bytes: int) -> None:
        """Account a departed packet."""
        share = self._share(queue_id)
        if size_bytes > share.occupancy_bytes:
            raise ValueError(
                f"releasing {size_bytes} B from queue {queue_id!r} "
                f"holding only {share.occupancy_bytes} B")
        share.occupancy_bytes -= size_bytes

    def _share(self, queue_id: str) -> _QueueShare:
        try:
            return self._queues[queue_id]
        except KeyError:
            raise KeyError(
                f"unknown queue {queue_id!r}; registered: "
                f"{sorted(self._queues)}") from None


class DynamicThresholdPolicy:
    """Classic DT admission: limit = alpha * remaining buffer."""

    def __init__(self, pool: BufferPool, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive: {alpha!r}")
        self.pool = pool
        self.alpha = alpha

    def threshold_bytes(self, queue_id: str) -> float:
        """Current admission limit for one queue [bytes]."""
        return self.alpha * self.pool.free_bytes

    def admits(self, queue_id: str, packet: Packet) -> bool:
        """Admission test; charges the pool when admitted."""
        if packet.size_bytes > self.pool.free_bytes:
            return False
        if (self.pool.occupancy(queue_id) + packet.size_bytes
                > self.threshold_bytes(queue_id)):
            return False
        self.pool.charge(queue_id, packet.size_bytes)
        return True


class ABMPolicy(DynamicThresholdPolicy):
    """ABM: DT scaled per priority and per congested-queue count.

    ``threshold = alpha_p * free / n_congested(p)`` where ``alpha_p``
    decreases for lower-priority classes — high classes keep burst
    headroom, and the division by the congested count keeps the class
    fair when many of its queues back up.
    """

    def __init__(self, pool: BufferPool,
                 alphas_by_priority: dict[int, float] | None = None
                 ) -> None:
        super().__init__(pool, alpha=1.0)
        self.alphas_by_priority = (
            alphas_by_priority if alphas_by_priority is not None
            else {0: 2.0, 1: 1.0, 2: 0.5})
        if any(alpha <= 0 for alpha in self.alphas_by_priority.values()):
            raise ValueError("all alphas must be positive")

    def _alpha_for(self, priority: int) -> float:
        if priority in self.alphas_by_priority:
            return self.alphas_by_priority[priority]
        return min(self.alphas_by_priority.values())

    def threshold_bytes(self, queue_id: str) -> float:
        """Current admission limit for one queue [bytes]."""
        priority = self.pool.priority_of(queue_id)
        congested = max(1, self.pool.congested_queues(priority))
        return (self._alpha_for(priority) * self.pool.free_bytes
                / congested)
