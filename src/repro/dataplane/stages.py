"""The Figure 5 switch blocks as runtime stages.

Each block of the paper's pipeline — parser, digital match-action
tables, egress admission — is one :class:`repro.runtime.Stage`
implementation over a plain list of packets (the columnar
:class:`~repro.dataplane.fastpath.PacketBatch` view is built inside
the digital stage, under its span, exactly where the old fused path
built it).  Stages emit final verdicts through the
:class:`~repro.runtime.stage.StageContext` and tally telemetry
through its per-chunk tally; tracing, flushing, energy attribution
and supervision are middleware on the composing runtime, not code
here.

Stages hold a reference to the owning
:class:`~repro.dataplane.pipeline.AnalogPacketProcessor` and read its
tables, flow cache and traffic manager at call time, so run-time
reconfiguration (route updates, cache invalidation, fault injection)
is always visible to the next chunk.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataplane.fastpath import PacketBatch, classify_chunk
from repro.dataplane.results import DROP_EVENTS, Verdict
from repro.dataplane.telemetry import stamp_packet
from repro.dataplane.traffic_manager import Admission
from repro.netfunc.firewall import Action
from repro.packet import Packet
from repro.runtime import StageContext

__all__ = ["ADMISSION_VERDICTS", "DigitalMatsStage", "EgressStage",
           "ParserStage"]

#: Egress admission outcome -> final packet verdict.
ADMISSION_VERDICTS: dict[Admission, Verdict] = {
    Admission.QUEUED: Verdict.QUEUED,
    Admission.AQM_DROP: Verdict.DROPPED_AQM,
    Admission.OVERFLOW_DROP: Verdict.DROPPED_OVERFLOW,
}


class ParserStage:
    """Wire-format frames -> parsed packets (malformed ones dropped)."""

    name = "parser"
    span_name = "dataplane.parse"

    def __init__(self, switch) -> None:
        self.switch = switch

    def span_attributes(self, frames: Sequence[bytes]) -> dict:
        return {"frames": len(frames)}

    def process_batch(self, frames: Sequence[bytes],
                      ctx: StageContext) -> list[Packet]:
        parsed = self.switch.parser.parse_frames(frames,
                                                 created_at=ctx.now)
        indices = ctx.indices
        survivors: list[Packet] = []
        kept: list[int] = []
        for offset, packet in enumerate(parsed):
            if packet is None:
                ctx.tally.event(DROP_EVENTS[Verdict.DROPPED_PARSE])
                ctx.emit(indices[offset], Verdict.DROPPED_PARSE)
            else:
                survivors.append(packet)
                kept.append(indices[offset])
        ctx.columns["index"] = kept
        return survivors


class DigitalMatsStage:
    """ACL + LPM over the memristor TCAMs, one columnar pass per chunk.

    Emits ``DROPPED_ACL``/``DROPPED_NO_ROUTE`` for the packets the
    digital tables dispose of, INT-stamps the survivors with their
    egress queue state, and publishes the resolved ``egress_port``
    column for the egress stage.
    """

    name = "digital_mats"
    span_name = "dataplane.digital_mats"

    def __init__(self, switch) -> None:
        self.switch = switch

    def span_attributes(self, packets: Sequence[Packet]) -> dict:
        return {"chunk": len(packets)}

    def process_batch(self, packets: Sequence[Packet],
                      ctx: StageContext) -> list[Packet]:
        switch = self.switch
        batch = PacketBatch(packets)
        actions, hops = classify_chunk(
            batch, switch.firewall, switch.lookup, switch.flow_cache,
            ctx.tracer)
        default = switch.firewall.default_action
        manager = switch.traffic_manager
        ports_by_hop = switch._ports_by_hop
        indices = ctx.indices
        tally = ctx.tally
        now = ctx.now
        survivors: list[Packet] = []
        kept: list[int] = []
        ports: list[int] = []
        for offset, packet in enumerate(packets):
            acl = actions[offset]
            tally.lookup("firewall", hit=acl is not default,
                         verdict=acl.value)
            if acl is Action.DENY:
                packet.dropped = True
                tally.event(DROP_EVENTS[Verdict.DROPPED_ACL])
                ctx.emit(indices[offset], Verdict.DROPPED_ACL,
                         packet=packet)
                continue
            next_hop = hops[offset]
            tally.lookup("ip_lookup", hit=next_hop is not None,
                         verdict=next_hop)
            if next_hop is None:
                packet.dropped = True
                tally.event(DROP_EVENTS[Verdict.DROPPED_NO_ROUTE])
                ctx.emit(indices[offset], Verdict.DROPPED_NO_ROUTE,
                         packet=packet)
                continue
            port = ports_by_hop[next_hop]
            stamp_packet(packet, f"egress{port}", manager.backlog(port),
                         now)
            survivors.append(packet)
            kept.append(indices[offset])
            ports.append(port)
        ctx.columns["index"] = kept
        ctx.columns["egress_port"] = ports
        return survivors


class EgressStage:
    """Batched per-port AQM admission into the egress queues.

    Groups the chunk's survivors by resolved port (first-appearance
    order), lets each port's AQM judge its group against the
    chunk-start queue state in one vectorised consultation, and emits
    the final admission verdicts.
    """

    name = "egress"
    span_name = "dataplane.egress"

    def __init__(self, switch) -> None:
        self.switch = switch

    def span_attributes(self, packets: Sequence[Packet]) -> dict:
        return {"chunk": len(packets)}

    def process_batch(self, packets: Sequence[Packet],
                      ctx: StageContext) -> list[Packet]:
        manager = self.switch.traffic_manager
        indices = ctx.indices
        ports = ctx.columns["egress_port"]
        tally = ctx.tally
        staged: dict[int, list[tuple[int, Packet]]] = {}
        for index, packet, port in zip(indices, packets, ports):
            staged.setdefault(port, []).append((index, packet))
        for port, entries in staged.items():
            outcomes = manager.enqueue_batch(
                port, [packet for _, packet in entries], ctx.now)
            tally.gauge(f"port{port}.backlog", manager.backlog(port))
            for (index, packet), outcome in zip(entries, outcomes):
                verdict = ADMISSION_VERDICTS[outcome]
                if verdict.dropped:
                    tally.event(DROP_EVENTS[verdict])
                ctx.emit(index, verdict, port=port, packet=packet)
        ctx.columns["index"] = []
        ctx.columns["egress_port"] = []
        return []
