"""Columnar fast path for the digital match-action stage.

The analog leg of the pipeline was vectorised first (``evaluate_batch``
/ ``enqueue_batch``); this module gives the *digital* front half the
same shape, so a chunk of packets is judged by the ACL and the
forwarding table in whole-batch NumPy passes instead of N interpreted
lookups:

* :class:`PacketBatch` — a structure-of-arrays view over a packet
  chunk: the 5-tuple columns are extracted exactly once (with a
  memoised dotted-quad decoder), then re-used to build the TCAM key
  matrices for the firewall and the LPM lookup.
* :class:`FlowCache` — an LRU of digital classification results keyed
  on (flow key, table generation): repeated flows skip classification
  entirely, and any table mutation bumps the generation, so the next
  probe of a stale entry misses and the cache flushes itself.
* :class:`TelemetryTally` — per-chunk counter aggregation flushed into
  the :class:`~repro.dataplane.telemetry.TelemetryCollector` once per
  chunk instead of three calls per packet.

Everything here is a pure re-expression of the scalar reference:
verdicts, drop reasons and telemetry totals are pinned equal by
``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import ipaddress
from collections import Counter, OrderedDict
from typing import Sequence

import numpy as np

from repro.netfunc.firewall import Action
from repro.observability.tracing import maybe_span
from repro.packet import Packet
from repro.tcam.tcam import key_matrix

__all__ = ["FlowCache", "PacketBatch", "TelemetryTally", "ip_to_u32"]

#: Bound on the dotted-quad -> uint32 memo (flows repeat; header
#: variety does not grow without limit in practice, but a rotating
#: scan must not leak memory).
_IP_MEMO_LIMIT = 1 << 16
_ip_memo: dict[object, int] = {}


def ip_to_u32(value: object) -> int:
    """Decode an IPv4 field (dotted quad or int) to a uint32, memoised.

    Matches the scalar reference (``int(ipaddress.ip_address(v))``)
    exactly, including its rejection of malformed addresses; repeated
    flow keys hit a bounded dictionary instead of re-parsing.
    """
    cached = _ip_memo.get(value)
    if cached is not None:
        return cached
    decoded = int(ipaddress.ip_address(value))
    if len(_ip_memo) >= _IP_MEMO_LIMIT:
        _ip_memo.clear()
    _ip_memo[value] = decoded
    return decoded


class PacketBatch:
    """Structure-of-arrays view over one chunk of parsed packets.

    Columns mirror the fields the digital tables consume — the
    5-tuple as unsigned integer arrays plus a ``has_dst`` mask (the
    scalar path only consults the forwarding table when ``dst_ip`` is
    present and truthy).  ``flow_keys[i]`` is the hashable per-packet
    cache key: the decoded 5-tuple plus the dst-present flag, so a
    packet with an explicit ``"0.0.0.0"`` destination never shares a
    cache line with one missing the field.
    """

    __slots__ = ("packets", "src_ip", "dst_ip", "src_port", "dst_port",
                 "protocol", "has_dst", "flow_keys")

    def __init__(self, packets: Sequence[Packet]) -> None:
        n = len(packets)
        self.packets = packets
        src = np.empty(n, dtype=np.uint64)
        dst = np.empty(n, dtype=np.uint64)
        sport = np.empty(n, dtype=np.uint64)
        dport = np.empty(n, dtype=np.uint64)
        proto = np.empty(n, dtype=np.uint64)
        has_dst = np.empty(n, dtype=bool)
        flow_keys: list[tuple] = []
        for i, packet in enumerate(packets):
            fields = packet.fields
            raw_dst = fields.get("dst_ip")
            present = bool(raw_dst)
            s = ip_to_u32(fields.get("src_ip", "0.0.0.0"))
            d = ip_to_u32(raw_dst) if present else 0
            sp = int(fields.get("src_port", 0))
            dp = int(fields.get("dst_port", 0))
            pr = int(fields.get("protocol", 0))
            src[i], dst[i] = s, d
            sport[i], dport[i], proto[i] = sp, dp, pr
            has_dst[i] = present
            flow_keys.append((s, d, sp, dp, pr, present))
        self.src_ip = src
        self.dst_ip = dst
        self.src_port = sport
        self.dst_port = dport
        self.protocol = proto
        self.has_dst = has_dst
        self.flow_keys = flow_keys

    def __len__(self) -> int:
        return len(self.packets)

    def take(self, indices: Sequence[int]) -> "PacketBatch":
        """A sub-batch over the given row indices (columns sliced)."""
        sub = PacketBatch.__new__(PacketBatch)
        index = np.asarray(indices, dtype=np.intp)
        sub.packets = [self.packets[i] for i in indices]
        sub.src_ip = self.src_ip[index]
        sub.dst_ip = self.dst_ip[index]
        sub.src_port = self.src_port[index]
        sub.dst_port = self.dst_port[index]
        sub.protocol = self.protocol[index]
        sub.has_dst = self.has_dst[index]
        sub.flow_keys = [self.flow_keys[i] for i in indices]
        return sub

    def firewall_key_bits(self) -> np.ndarray:
        """The (batch, 104) ACL key matrix: src dst sport dport proto.

        Field layout matches :attr:`repro.netfunc.firewall.Firewall`
        (MSB first), built column-wise in one NumPy pass per field.
        """
        return np.concatenate([
            key_matrix(self.src_ip, 32),
            key_matrix(self.dst_ip, 32),
            key_matrix(self.src_port, 16),
            key_matrix(self.dst_port, 16),
            key_matrix(self.protocol, 8),
        ], axis=1)


class FlowCache:
    """LRU cache of digital classification results, generation-keyed.

    Entries map a :class:`PacketBatch` flow key to the pair
    ``(acl_action, next_hop)`` the digital tables produced.  The cache
    carries the (firewall, lookup) generation pair it was filled
    under: probing with a different pair flushes everything, so a
    controller table update can never serve a stale verdict — there is
    no time-based staleness, only explicit invalidation.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._generation: tuple[int, int] | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, flow_key: tuple,
            generation: tuple[int, int]) -> tuple | None:
        """The cached (action, next_hop), or None on a miss.

        A generation mismatch counts as an invalidation and empties
        the cache before the probe is answered.
        """
        if generation != self._generation:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self._generation = generation
        entry = self._entries.get(flow_key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(flow_key)
        self.hits += 1
        return entry

    def put(self, flow_key: tuple, generation: tuple[int, int],
            value: tuple) -> None:
        """Install one classification result under the generation.

        A generation mismatch invalidates exactly as :meth:`get` does
        — counted once per flush — so write-first workloads report the
        same invalidation totals as probe-first ones.
        """
        if generation != self._generation:
            if self._entries:
                self.invalidations += 1
                self._entries.clear()
            self._generation = generation
        self._entries[flow_key] = value
        self._entries.move_to_end(flow_key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Explicitly drop every cached flow."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()
        self._generation = None


class TelemetryTally:
    """Per-chunk telemetry aggregation, flushed in one call per table.

    Accumulates exactly the counters the scalar path records per
    packet (table lookups/hits/verdicts and named events), then folds
    them into the shared collector once — totals are identical, the
    per-packet method-call overhead is not.
    """

    __slots__ = ("_tables", "_events", "_gauges")

    def __init__(self) -> None:
        self._tables: dict[str, list] = {}
        self._events: Counter[str] = Counter()
        self._gauges: dict[str, float] = {}

    def lookup(self, table: str, hit: bool,
               verdict: str | None = None) -> None:
        """Count one table lookup (and optionally its verdict)."""
        stats = self._tables.get(table)
        if stats is None:
            stats = [0, 0, Counter()]
            self._tables[table] = stats
        stats[0] += 1
        if hit:
            stats[1] += 1
        if verdict is not None:
            stats[2][verdict] += 1

    def event(self, name: str, count: int = 1) -> None:
        """Count a named event."""
        self._events[name] += count

    def gauge(self, name: str, value: float) -> None:
        """Stage the latest sample of a named gauge (last write wins)."""
        self._gauges[name] = float(value)

    def flush(self, collector) -> None:
        """Fold everything into a TelemetryCollector and reset."""
        for table, (lookups, hits, verdicts) in self._tables.items():
            collector.record_lookup_batch(table, lookups, hits, verdicts)
        if self._events:
            collector.record_events(self._events)
        for name, value in self._gauges.items():
            collector.set_gauge(name, value)
        self._tables = {}
        self._events = Counter()
        self._gauges = {}


def classify_chunk(batch: PacketBatch, firewall, lookup,
                   cache: FlowCache | None,
                   tracer=None) -> tuple[list, list]:
    """Vectorised ACL + LPM classification of one packet chunk.

    Returns ``(actions, next_hops)`` aligned with the batch.  Flow-
    cached packets skip the TCAM entirely; the remaining *unique*
    flows are deduplicated, searched in one firewall pass, and the
    ACL survivors that carry a destination get one LPM pass.  The
    lookup for denied or destination-less packets is skipped exactly
    as the scalar reference skips it.
    """
    n = len(batch)
    actions: list = [None] * n
    hops: list = [None] * n
    generation = (firewall.generation, lookup.generation)
    unique_order: list[int] = []          # first row of each new flow
    unique_of_row: dict[tuple, int] = {}  # flow key -> unique position
    member_rows: list[list[int]] = []     # unique position -> rows
    for row, flow_key in enumerate(batch.flow_keys):
        cached = cache.get(flow_key, generation) if cache is not None \
            else None
        if cached is not None:
            actions[row], hops[row] = cached
            continue
        position = unique_of_row.get(flow_key)
        if position is None:
            unique_of_row[flow_key] = len(unique_order)
            unique_order.append(row)
            member_rows.append([row])
        else:
            member_rows[position].append(row)
    if not unique_order:
        return actions, hops
    misses = batch.take(unique_order)
    with maybe_span(tracer, "dataplane.firewall", batch=len(misses)):
        acl = firewall.check_batch(misses.firewall_key_bits())
    routed_positions = [pos for pos in range(len(misses))
                        if acl[pos] is not Action.DENY
                        and misses.has_dst[pos]]
    routed_hops: list = [None] * len(misses)
    if routed_positions:
        with maybe_span(tracer, "dataplane.ip_lookup",
                        batch=len(routed_positions)):
            results = lookup.lookup_batch(misses.dst_ip[
                np.asarray(routed_positions, dtype=np.intp)])
        for pos, hop in zip(routed_positions, results):
            routed_hops[pos] = hop
    for position, rows in enumerate(member_rows):
        entry = (acl[position], routed_hops[position])
        if cache is not None:
            cache.put(misses.flow_keys[position], generation, entry)
        for row in rows:
            actions[row], hops[row] = entry
    return actions, hops
