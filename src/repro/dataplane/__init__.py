"""The memristor-based cognitive packet-processing architecture (Figure 5)."""

from repro.dataplane.buffer_sharing import (
    ABMPolicy,
    BufferPool,
    DynamicThresholdPolicy,
)
from repro.dataplane.classify import (
    ACAMClassifier,
    ClassificationStage,
    ClassifierSpec,
    classifier_spec_from_tree,
)
# Control-plane classes moved up to repro.control; the facade keeps
# re-exporting them (silently, like Packet) for compatibility.
from repro.control.cognitive import (
    CognitiveNetworkController,
    RegisteredFunction,
)
from repro.control.intent import Intent, IntentController
from repro.packet import FIVE_TUPLE_FIELDS, Packet
from repro.dataplane.parser import (
    HeaderParser,
    ParseError,
    build_ethernet_frame,
    build_ipv4_packet,
)
from repro.dataplane.pipeline import (
    AnalogPacketProcessor,
    ProcessResult,
    Verdict,
)
from repro.dataplane.queues import PacketQueue
from repro.dataplane.results import DROP_EVENTS, drop_event
from repro.dataplane.stages import (
    DigitalMatsStage,
    EgressStage,
    ParserStage,
)
from repro.dataplane.switch import SwitchSpec, build_switch
from repro.dataplane.telemetry import (
    TableStats,
    TelemetryCollector,
    int_metadata,
    stamp_packet,
)
from repro.dataplane.tables import (
    DigitalMatchActionTable,
    FieldKeySpec,
    TableLookup,
)
from repro.dataplane.traffic_manager import (
    CognitiveTrafficManager,
    PortStats,
    TrafficManager,
)

__all__ = [
    "ABMPolicy",
    "ACAMClassifier",
    "AnalogPacketProcessor",
    "BufferPool",
    "ClassificationStage",
    "ClassifierSpec",
    "DROP_EVENTS",
    "DigitalMatsStage",
    "DynamicThresholdPolicy",
    "EgressStage",
    "Intent",
    "IntentController",
    "ParserStage",
    "SwitchSpec",
    "TableStats",
    "TelemetryCollector",
    "int_metadata",
    "stamp_packet",
    "CognitiveNetworkController",
    "CognitiveTrafficManager",
    "DigitalMatchActionTable",
    "FIVE_TUPLE_FIELDS",
    "FieldKeySpec",
    "HeaderParser",
    "Packet",
    "PacketQueue",
    "ParseError",
    "PortStats",
    "ProcessResult",
    "RegisteredFunction",
    "TableLookup",
    "TrafficManager",
    "Verdict",
    "build_ethernet_frame",
    "build_ipv4_packet",
    "build_switch",
    "classifier_spec_from_tree",
    "drop_event",
]
