"""Packet representation shared by the data plane and the simulator.

A :class:`Packet` is deliberately lightweight (slots, no dict churn in
the hot path): the queue simulator pushes millions of them through the
bottleneck.  Header fields live in a plain dict so the parser can
expose arbitrary protocol fields to match-action tables.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

__all__ = ["Packet", "FIVE_TUPLE_FIELDS"]

#: Canonical header-field names for the classic 5-tuple.
FIVE_TUPLE_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")

_packet_ids = itertools.count()


class Packet:
    """One packet moving through the simulated network.

    Parameters
    ----------
    size_bytes:
        Wire size, used for service-time and byte-count accounting.
    flow_id:
        Opaque flow identifier assigned by the generator.
    priority:
        Scheduling class (0 = highest).  The paper's AQM gives high
        priority traffic a lower drop probability.
    fields:
        Parsed header fields (5-tuple and anything else a parser
        extracts).
    created_at:
        Simulation timestamp of creation [s].
    """

    __slots__ = ("packet_id", "size_bytes", "flow_id", "priority",
                 "fields", "created_at", "enqueued_at", "dequeued_at",
                 "dropped")

    def __init__(self, size_bytes: int = 1500, flow_id: int = 0,
                 priority: int = 0,
                 fields: Mapping[str, Any] | None = None,
                 created_at: float = 0.0) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size must be positive: {size_bytes!r}")
        if priority < 0:
            raise ValueError(f"priority must be >= 0: {priority!r}")
        self.packet_id = next(_packet_ids)
        self.size_bytes = size_bytes
        self.flow_id = flow_id
        self.priority = priority
        self.fields: dict[str, Any] = dict(fields) if fields else {}
        self.created_at = created_at
        self.enqueued_at: float | None = None
        self.dequeued_at: float | None = None
        self.dropped = False

    @property
    def sojourn_time(self) -> float | None:
        """Queueing delay experienced, once dequeued [s]."""
        if self.enqueued_at is None or self.dequeued_at is None:
            return None
        return self.dequeued_at - self.enqueued_at

    def field(self, name: str, default: Any = None) -> Any:
        """A parsed header field, or ``default``."""
        return self.fields.get(name, default)

    def __repr__(self) -> str:
        return (f"Packet(id={self.packet_id}, flow={self.flow_id}, "
                f"{self.size_bytes}B, prio={self.priority})")
