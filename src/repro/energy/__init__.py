"""Energy accounting: units, ledgers, and the Table 1 comparison harness."""

from repro.energy.ledger import (
    ACCOUNT_COMPUTE,
    ACCOUNT_CONVERSION,
    ACCOUNT_MOVEMENT,
    ACCOUNT_STORAGE,
    EnergyLedger,
    EnergyReport,
    ExactJoules,
)
from repro.energy.projections import (
    SwitchProfile,
    TOFINO2_CLASS,
    power_comparison,
    projected_power_w,
)
from repro.energy.units import (
    femtojoules,
    format_energy,
    joules_to_femtojoules,
    joules_to_nanojoules,
    milliseconds,
    nanojoules,
    nanoseconds,
    seconds_to_milliseconds,
    seconds_to_nanoseconds,
)

__all__ = [
    "ACCOUNT_COMPUTE",
    "ACCOUNT_CONVERSION",
    "ACCOUNT_MOVEMENT",
    "ACCOUNT_STORAGE",
    "EnergyLedger",
    "EnergyReport",
    "ExactJoules",
    "SwitchProfile",
    "TOFINO2_CLASS",
    "power_comparison",
    "projected_power_w",
    "femtojoules",
    "format_energy",
    "joules_to_femtojoules",
    "joules_to_nanojoules",
    "milliseconds",
    "nanojoules",
    "nanoseconds",
    "seconds_to_milliseconds",
    "seconds_to_nanoseconds",
]
