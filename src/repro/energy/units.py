"""Unit helpers for energy, time and voltage quantities.

All internal computations in :mod:`repro` use base SI units (joules,
seconds, volts, amperes, ohms, siemens).  The paper reports energies in
fJ/bit and nJ/bit and latencies in ns; these helpers convert between the
SI-internal representation and the paper's reporting units.
"""

from __future__ import annotations

#: Multiplicative scale factors relative to the base SI unit.
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def joules_to_femtojoules(energy_j: float) -> float:
    """Convert joules to femtojoules (the unit of Table 1's energy rows)."""
    return energy_j / FEMTO


def joules_to_nanojoules(energy_j: float) -> float:
    """Convert joules to nanojoules (used for the pCAM peak energy)."""
    return energy_j / NANO


def femtojoules(value_fj: float) -> float:
    """Express ``value_fj`` femtojoules in joules."""
    return value_fj * FEMTO


def nanojoules(value_nj: float) -> float:
    """Express ``value_nj`` nanojoules in joules."""
    return value_nj * NANO


def seconds_to_nanoseconds(time_s: float) -> float:
    """Convert seconds to nanoseconds (Table 1's latency unit)."""
    return time_s / NANO


def nanoseconds(value_ns: float) -> float:
    """Express ``value_ns`` nanoseconds in seconds."""
    return value_ns * NANO


def milliseconds(value_ms: float) -> float:
    """Express ``value_ms`` milliseconds in seconds."""
    return value_ms * MILLI


def seconds_to_milliseconds(time_s: float) -> float:
    """Convert seconds to milliseconds (Figure 8's delay unit)."""
    return time_s / MILLI


def format_energy(energy_j: float) -> str:
    """Render an energy with an auto-selected engineering prefix.

    >>> format_energy(1e-17)
    '0.010 fJ'
    >>> format_energy(1.6e-10)
    '0.160 nJ'
    """
    if energy_j == 0:
        return "0 J"
    magnitude = abs(energy_j)
    # Accept fractional leading digits down to 0.01 so the paper's
    # reporting style ("0.16 nJ", "0.01 fJ") is preserved.
    for scale, suffix in ((1.0, "J"), (MILLI, "mJ"), (MICRO, "uJ"),
                          (NANO, "nJ"), (PICO, "pJ"), (FEMTO, "fJ"),
                          (ATTO, "aJ")):
        if magnitude >= 0.01 * scale:
            return f"{energy_j / scale:.3f} {suffix}"
    return f"{energy_j / ATTO:.3e} aJ"
