"""Switch-scale energy projections.

The paper motivates analog processing with datacenter-scale energy
(IEA figures, [20]).  This module scales the per-search energies
measured from the device model up to line-rate packet processing, so
the fJ-level numbers become comparable watts:

    power = searches/s * tables * bits/search * energy/bit

A Tofino-2-class reference point (12.8 Tb/s, ~500 B average packets,
~3.2 G packets/s) is provided for the examples and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SwitchProfile", "TOFINO2_CLASS", "projected_power_w",
           "power_comparison"]


@dataclass(frozen=True)
class SwitchProfile:
    """Aggregate lookup workload of a packet processor.

    Table 1's fJ/bit figures are per *array bit* per search (the CAM
    convention: every stored cell participates in every search), so
    the projection scales with the CAM capacity, not the key width.
    """

    name: str
    packets_per_second: float
    cam_bits: int
    tables_per_packet: int = 4

    def __post_init__(self) -> None:
        if self.packets_per_second <= 0:
            raise ValueError("packet rate must be positive")
        if self.cam_bits < 1 or self.tables_per_packet < 1:
            raise ValueError("bits and tables must be >= 1")

    @property
    def bits_per_second(self) -> float:
        """Total (array bits x searches) per second."""
        return (self.packets_per_second * self.cam_bits
                * self.tables_per_packet)


#: A 12.8 Tb/s, 4-pipeline switch at ~500 B average packet size
#: (~3.2 G packets/s), searching an 18 Mb CAM in each of 4 tables.
TOFINO2_CLASS = SwitchProfile(name="tofino2-class",
                              packets_per_second=3.2e9,
                              cam_bits=18 * 1024 * 1024,
                              tables_per_packet=4)


def projected_power_w(energy_j_per_bit: float,
                      profile: SwitchProfile = TOFINO2_CLASS) -> float:
    """Match-stage power of a switch at the given per-bit energy [W]."""
    if energy_j_per_bit < 0:
        raise ValueError("energy per bit must be non-negative")
    return energy_j_per_bit * profile.bits_per_second


def power_comparison(analog_j_per_bit: float,
                     digital_j_per_bit: float,
                     profile: SwitchProfile = TOFINO2_CLASS
                     ) -> dict[str, float]:
    """Projected match-stage power, digital vs analog, plus savings."""
    digital_w = projected_power_w(digital_j_per_bit, profile)
    analog_w = projected_power_w(analog_j_per_bit, profile)
    return {
        "digital_w": digital_w,
        "analog_w": analog_w,
        "saving_w": digital_w - analog_w,
        "factor": (digital_w / analog_w if analog_w > 0
                   else float("inf")),
    }
