"""Per-component energy accounting.

The paper's Figure 1 motivates analog processing by attributing up to
~90% of digital TCAM energy to data movement between separate storage
and computation units, against near-zero movement cost for memristors
with colocalized compute and storage.  The :class:`EnergyLedger` lets
every simulated component charge energy to named accounts so that the
breakdown (movement vs computation vs storage) can be reported for any
experiment.

Accumulation is *exact*: every charge is decomposed into its dyadic
rational value (an IEEE-754 double is ``mantissa * 2**exponent``) and
summed with integer arithmetic, so a ledger total is a pure function
of the multiset of charges — independent of charge order, chunk size,
or how the work was partitioned across shard pipelines.  Reading any
account converts the exact sum back to the nearest double once.  The
sharded fabric relies on this: N per-shard ledgers merged together
report byte-identical joules to the single serial pipeline.
:meth:`EnergyLedger.charge_quanta` is the partition-friendly charging
API — ``count`` identical quanta booked in one call cost the same as
``count`` scalar charges, exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from typing import Iterable, Iterator, Mapping

from repro.energy.units import format_energy

#: Conventional account names used across the code base.
ACCOUNT_COMPUTE = "compute"
ACCOUNT_STORAGE = "storage"
ACCOUNT_MOVEMENT = "data_movement"
ACCOUNT_CONVERSION = "conversion"  # DAC/ADC boundary crossings


class ExactJoules:
    """An exact accumulator over dyadic rationals (float sums).

    Holds ``mantissa * 2**exponent`` with arbitrary-precision integer
    mantissa: adding a float (optionally ``count`` times) is exact, so
    the sum is associative and commutative — partition-invariant.
    ``float()`` performs one correctly-rounded conversion.
    """

    __slots__ = ("_mant", "_exp")

    def __init__(self, mant: int = 0, exp: int = 0) -> None:
        self._mant = mant
        self._exp = exp

    def add(self, value: float, count: int = 1) -> None:
        """Add ``count`` copies of ``value``, exactly."""
        if count == 0 or value == 0.0:
            return
        numerator, denominator = float(value).as_integer_ratio()
        exp = 1 - denominator.bit_length()  # denominator is 2**k
        self._add_scaled(numerator * count, exp)

    def add_exact(self, other: "ExactJoules") -> None:
        """Fold another exact accumulator in (still exact)."""
        self._add_scaled(other._mant, other._exp)

    def _add_scaled(self, mant: int, exp: int) -> None:
        if self._mant == 0:
            self._mant, self._exp = mant, exp
        elif exp >= self._exp:
            self._mant += mant << (exp - self._exp)
        else:
            self._mant = (self._mant << (self._exp - exp)) + mant
            self._exp = exp

    def __float__(self) -> float:
        if self._exp >= 0:
            return float(self._mant << self._exp)
        # Correctly-rounded big-int division: the nearest double to
        # the exact dyadic value, however many bits accumulated.
        return self._mant / (1 << -self._exp)

    def __bool__(self) -> bool:
        return self._mant != 0

    def __reduce__(self):
        return (ExactJoules, (self._mant, self._exp))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactJoules):
            return NotImplemented
        if self._mant == 0 or other._mant == 0:
            return self._mant == other._mant
        shift = self._exp - other._exp
        if shift >= 0:
            return self._mant << shift == other._mant
        return self._mant == other._mant << -shift

    def __repr__(self) -> str:
        return f"ExactJoules({float(self):.6e})"


class EnergyLedger:
    """Accumulates energy (joules) charged to named accounts.

    Accounts are free-form strings; dotted names (``"tcam.search"``)
    group naturally when summarised by prefix.
    """

    def __init__(self) -> None:
        self._accounts: dict[str, ExactJoules] = {}
        self._events = 0

    def _account(self, name: str) -> ExactJoules:
        accumulator = self._accounts.get(name)
        if accumulator is None:
            accumulator = self._accounts[name] = ExactJoules()
        return accumulator

    def charge(self, account: str, energy_j: float) -> None:
        """Charge ``energy_j`` joules to ``account``.

        Raises :class:`ValueError` for negative energies: components
        never *recover* energy in this model.
        """
        self.charge_quanta(account, energy_j, 1)

    def charge_quanta(self, account: str, quantum_j: float,
                      count: int) -> None:
        """Charge ``count`` identical quanta of ``quantum_j`` joules.

        Exactly equivalent to ``count`` scalar :meth:`charge` calls of
        the same quantum (integer-scaled, not float-multiplied), so a
        batched component and its scalar reference — or one pipeline
        and N shards splitting the same packets — book identical
        energy regardless of how the work was partitioned.  Counts as
        one charge event.
        """
        if not isfinite(quantum_j) or quantum_j < 0:
            raise ValueError(f"bad energy charge: {quantum_j!r}")
        if count < 0:
            raise ValueError(f"negative quanta count: {count!r}")
        self._account(account).add(quantum_j, count)
        self._events += 1

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's accounts into this one (exactly).

        Merging a ledger into itself is a guarded no-op: campaign code
        that folds per-layer ledgers into a grand total can hit the
        aliased case, which would silently double every account.
        """
        if other is self:
            return
        for name, accumulator in other._accounts.items():
            self._account(name).add_exact(accumulator)
        self._events += other._events

    @property
    def total(self) -> float:
        """Total energy across all accounts, in joules.

        The exact cross-account sum, converted to float once — so the
        total of a merged shard set equals the serial total bit for
        bit, not merely approximately.
        """
        exact = ExactJoules()
        for accumulator in self._accounts.values():
            exact.add_exact(accumulator)
        return float(exact)

    @property
    def events(self) -> int:
        """Number of charge events recorded."""
        return self._events

    def account(self, name: str) -> float:
        """Energy charged to one account (0.0 if never charged)."""
        accumulator = self._accounts.get(name)
        return float(accumulator) if accumulator is not None else 0.0

    def by_prefix(self, prefix: str) -> float:
        """Sum energy over all accounts starting with ``prefix``."""
        exact = ExactJoules()
        for name, accumulator in self._accounts.items():
            if name.startswith(prefix):
                exact.add_exact(accumulator)
        return float(exact)

    def breakdown(self) -> dict[str, float]:
        """Mapping of account name to joules, sorted by descending energy."""
        return dict(sorted(
            ((name, float(acc)) for name, acc in self._accounts.items()),
            key=lambda item: item[1], reverse=True))

    def fractions(self) -> dict[str, float]:
        """Mapping of account name to its fraction of the total energy."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self._accounts}
        return {name: value / total
                for name, value in self.breakdown().items()}

    def reset(self) -> None:
        """Zero all accounts."""
        self._accounts.clear()
        self._events = 0

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter((name, float(acc))
                    for name, acc in self._accounts.items())

    def __len__(self) -> int:
        return len(self._accounts)

    def __repr__(self) -> str:
        return (f"EnergyLedger(total={format_energy(self.total)}, "
                f"accounts={len(self._accounts)}, events={self._events})")


@dataclass(frozen=True)
class EnergyReport:
    """A summarised view of a ledger for one experiment run."""

    label: str
    total_j: float
    accounts: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_ledger(cls, label: str, ledger: EnergyLedger) -> "EnergyReport":
        """Snapshot a ledger into an immutable report."""
        return cls(label=label, total_j=ledger.total,
                   accounts=ledger.breakdown())

    def fraction(self, account: str) -> float:
        """Fraction of total attributed to ``account`` (0 when total is 0)."""
        if self.total_j == 0:
            return 0.0
        return self.accounts.get(account, 0.0) / self.total_j

    def lines(self) -> Iterable[str]:
        """Human-readable report lines, one per account."""
        yield f"{self.label}: total {format_energy(self.total_j)}"
        for name, value in self.accounts.items():
            yield (f"  {name:<24} {format_energy(value):>14}  "
                   f"({self.fraction(name):6.1%})")
