"""Per-component energy accounting.

The paper's Figure 1 motivates analog processing by attributing up to
~90% of digital TCAM energy to data movement between separate storage
and computation units, against near-zero movement cost for memristors
with colocalized compute and storage.  The :class:`EnergyLedger` lets
every simulated component charge energy to named accounts so that the
breakdown (movement vs computation vs storage) can be reported for any
experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.energy.units import format_energy

#: Conventional account names used across the code base.
ACCOUNT_COMPUTE = "compute"
ACCOUNT_STORAGE = "storage"
ACCOUNT_MOVEMENT = "data_movement"
ACCOUNT_CONVERSION = "conversion"  # DAC/ADC boundary crossings


class EnergyLedger:
    """Accumulates energy (joules) charged to named accounts.

    Accounts are free-form strings; dotted names (``"tcam.search"``)
    group naturally when summarised by prefix.
    """

    def __init__(self) -> None:
        self._accounts: Counter[str] = Counter()
        self._events = 0

    def charge(self, account: str, energy_j: float) -> None:
        """Charge ``energy_j`` joules to ``account``.

        Raises :class:`ValueError` for negative energies: components
        never *recover* energy in this model.
        """
        if energy_j < 0:
            raise ValueError(f"negative energy charge: {energy_j!r}")
        self._accounts[account] += energy_j
        self._events += 1

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's accounts into this one.

        Merging a ledger into itself is a guarded no-op: campaign code
        that folds per-layer ledgers into a grand total can hit the
        aliased case, and ``Counter.update(self)`` would silently
        double every account and event.
        """
        if other is self:
            return
        self._accounts.update(other._accounts)
        self._events += other._events

    @property
    def total(self) -> float:
        """Total energy across all accounts, in joules."""
        return float(sum(self._accounts.values()))

    @property
    def events(self) -> int:
        """Number of charge events recorded."""
        return self._events

    def account(self, name: str) -> float:
        """Energy charged to one account (0.0 if never charged)."""
        return float(self._accounts.get(name, 0.0))

    def by_prefix(self, prefix: str) -> float:
        """Sum energy over all accounts starting with ``prefix``."""
        return float(sum(v for k, v in self._accounts.items()
                         if k.startswith(prefix)))

    def breakdown(self) -> dict[str, float]:
        """Mapping of account name to joules, sorted by descending energy."""
        return dict(sorted(self._accounts.items(),
                           key=lambda item: item[1], reverse=True))

    def fractions(self) -> dict[str, float]:
        """Mapping of account name to its fraction of the total energy."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self._accounts}
        return {name: value / total
                for name, value in self.breakdown().items()}

    def reset(self) -> None:
        """Zero all accounts."""
        self._accounts.clear()
        self._events = 0

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self._accounts.items())

    def __len__(self) -> int:
        return len(self._accounts)

    def __repr__(self) -> str:
        return (f"EnergyLedger(total={format_energy(self.total)}, "
                f"accounts={len(self._accounts)}, events={self._events})")


@dataclass(frozen=True)
class EnergyReport:
    """A summarised view of a ledger for one experiment run."""

    label: str
    total_j: float
    accounts: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_ledger(cls, label: str, ledger: EnergyLedger) -> "EnergyReport":
        """Snapshot a ledger into an immutable report."""
        return cls(label=label, total_j=ledger.total,
                   accounts=ledger.breakdown())

    def fraction(self, account: str) -> float:
        """Fraction of total attributed to ``account`` (0 when total is 0)."""
        if self.total_j == 0:
            return 0.0
        return self.accounts.get(account, 0.0) / self.total_j

    def lines(self) -> Iterable[str]:
        """Human-readable report lines, one per account."""
        yield f"{self.label}: total {format_energy(self.total_j)}"
        for name, value in self.accounts.items():
            yield (f"  {name:<24} {format_energy(value):>14}  "
                   f"({self.fraction(name):6.1%})")
