"""The Table 1 harness: digital designs vs the measured pCAM.

Reproduces the paper's performance-comparison table.  The eight
digital rows are published figures (encoded in
:mod:`repro.tcam.baselines`); the pCAM row is **measured** from the
synthetic chip dataset at run time — latency is the 1 ns reference
read, energy is the minimum per-state read energy (the paper's
"lowest energy consumption states require only about 0.01 fJ/bit").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.dataset import MemristorDataset, generate_dataset
from repro.device.energy import energy_statistics
from repro.energy.units import joules_to_femtojoules
from repro.tcam.baselines import (
    Computation,
    PublishedDesign,
    TABLE1_DIGITAL_DESIGNS,
    Technology,
    best_digital_design,
)

__all__ = ["Table1Row", "build_table1", "format_table1",
           "improvement_factor"]


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1 (designs are columns there)."""

    name: str
    reference: str
    computation: Computation
    technology: Technology
    latency_ns: float
    energy_fj_per_bit: float
    measured: bool = False

    @classmethod
    def from_published(cls, design: PublishedDesign) -> "Table1Row":
        """A table row from a published design's figures."""
        return cls(name=design.name, reference=design.reference,
                   computation=design.computation,
                   technology=design.technology,
                   latency_ns=design.latency_ns,
                   energy_fj_per_bit=design.energy_fj_per_bit,
                   measured=False)


def measured_pcam_row(dataset: MemristorDataset | None = None
                      ) -> Table1Row:
    """Measure the pCAM row from the chip dataset."""
    if dataset is None:
        dataset = generate_dataset(include_sweeps=False,
                                   include_pulse_trains=False)
    stats = energy_statistics(dataset)
    return Table1Row(name="pCAM", reference="this work",
                     computation=Computation.ANALOG,
                     technology=Technology.MEMRISTOR,
                     latency_ns=1.0,
                     energy_fj_per_bit=joules_to_femtojoules(stats.min_j),
                     measured=True)


def build_table1(dataset: MemristorDataset | None = None
                 ) -> list[Table1Row]:
    """All nine rows: the eight published designs plus measured pCAM."""
    rows = [Table1Row.from_published(design)
            for design in TABLE1_DIGITAL_DESIGNS]
    rows.append(measured_pcam_row(dataset))
    return rows


def improvement_factor(rows: list[Table1Row]) -> float:
    """Measured pCAM energy improvement over the best digital row.

    The paper's headline: "the analog computations proved to be at
    least 50 times more energy efficient".
    """
    pcam = next((row for row in rows if row.measured), None)
    if pcam is None:
        raise ValueError("rows contain no measured pCAM entry")
    best = best_digital_design()
    return best.energy_fj_per_bit / pcam.energy_fj_per_bit


def format_table1(rows: list[Table1Row]) -> list[str]:
    """Render the table as aligned text lines (paper layout)."""
    header = (f"{'Design':<24}{'Ref':>10}{'Comp':>6}{'Tech':>6}"
              f"{'Latency (ns)':>14}{'Energy (fJ/bit)':>18}")
    lines = [header, "-" * len(header)]
    for row in rows:
        marker = "*" if row.measured else " "
        lines.append(
            f"{row.name:<24}{row.reference:>10}"
            f"{row.computation.value:>6}{row.technology.value:>6}"
            f"{row.latency_ns:>14g}{row.energy_fj_per_bit:>17.4g}{marker}")
    lines.append(f"(* measured from the synthetic chip dataset; "
                 f"improvement over best digital: "
                 f"{improvement_factor(rows):.1f}x)")
    return lines
