"""The columnar staged runtime: Stage protocol, middleware, engine.

One execution engine for every dataplane entry point: stages are
columnar batch transforms, cross-cutting concerns (tracing,
telemetry, energy attribution, fault installation, degradation
supervision) are middleware registered once at assembly time, and the
scalar API is a batch of one over the same engine.

Layering contract (enforced by ``tools/check_layering.py``): this
package never imports ``repro.dataplane`` or ``repro.netfunc`` — the
concrete switch stages live with the dataplane and plug in here.  The
single sanctioned exception is :mod:`repro.runtime.compile` (not
imported by this package, only by opted-in processors), which must
see the dataplane stage shapes to compile them; even it never
imports ``repro.netfunc``.
"""

from repro.runtime.engine import PipelineRuntime
from repro.runtime.middleware import (
    BaseMiddleware,
    EnergyAttributionMiddleware,
    FaultPlanMiddleware,
    SupervisionMiddleware,
    TelemetryMiddleware,
    TracingMiddleware,
)
from repro.runtime.stage import NullTally, Stage, StageContext

__all__ = [
    "BaseMiddleware",
    "EnergyAttributionMiddleware",
    "FaultPlanMiddleware",
    "NullTally",
    "PipelineRuntime",
    "Stage",
    "StageContext",
    "SupervisionMiddleware",
    "TelemetryMiddleware",
    "TracingMiddleware",
]
