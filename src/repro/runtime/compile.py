"""Pipeline compiler: a SwitchSpec-assembled processor, one fused kernel.

The staged runtime buys its composability with per-chunk machinery —
an ``ExitStack`` of middleware context managers around every chunk
and every stage, a closure-based emitter that books each verdict one
call at a time, and auxiliary columns rebuilt at every stage
boundary.  For the stock switch shape (parser -> digital MATs ->
optional classifiers -> egress under telemetry / energy-attribution /
supervision middleware) none of that flexibility is exercised per
packet, so :func:`compile_processor` folds it away:

* **Shape analysis** proves the processor is the stock pipeline: the
  frame walk is exactly the parser stage, the match-action walk opens
  with the digital MATs and closes with egress, and every registered
  middleware is one the kernel knows how to reproduce exactly
  (telemetry tally + flush, per-stage ledger attribution, per-chunk
  supervision).  Anything else — tracing middleware, fault-plan
  installers, unknown middleware, a rearranged stage list — refuses
  with a recorded reason and the processor keeps the staged walk.
* **Constant folding** captures loop invariants the staged walk
  re-derives per chunk or per packet: the DENY sentinel, the drop
  event names, per-port INT-stamp and gauge names, and the per-port
  egress backlog (constant for the duration of the digital stage).
* **Fusion** executes the digital verdict loop and egress admission
  inline, writing :class:`~repro.dataplane.results.ProcessResult`
  slots directly and bulk-updating ``processed`` /
  ``verdict_counts`` once per chunk instead of once per packet.
  Interior stages (e.g. the aCAM classifier) still run through their
  real ``process_batch`` under a real context, so inserted stages
  never change behaviour — they only anchor the fused prologue and
  epilogue around themselves.
* **Lowering** is delegated to the analog leg: a fused processor
  enables each port AQM's compiled lane
  (:mod:`repro.core.pcam_fold`), which itself lowers through numba
  when importable and stays pure NumPy/Python otherwise — CI runs
  hermetically either way.

Chunk/stage counters, telemetry totals, gauge samples, ledger
charges, per-stage energy attribution, RNG draw order and supervision
ticks are all reproduced exactly; ``tests/test_runtime_golden.py``
pins the compiled configurations byte-for-byte against the staged
references.

Layering: this module is the one sanctioned bridge from the runtime
package down into ``repro.dataplane`` (it compiles dataplane stage
shapes, so it must see them); it must never import ``repro.netfunc``
— table sentinels are recovered from the live objects instead
(``tools/check_layering.py`` enforces both directions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.pcam_fold import LOWERING
from repro.dataplane.fastpath import PacketBatch, classify_chunk
from repro.dataplane.results import DROP_EVENTS, ProcessResult, Verdict
from repro.dataplane.stages import (
    ADMISSION_VERDICTS,
    DigitalMatsStage,
    EgressStage,
    ParserStage,
)
from repro.dataplane.telemetry import stamp_packet
from repro.runtime.engine import _drained
from repro.runtime.middleware import (
    EnergyAttributionMiddleware,
    SupervisionMiddleware,
    TelemetryMiddleware,
)
from repro.runtime.stage import NULL_TALLY, StageContext

__all__ = ["CompiledPlan", "FusedSwitchKernel", "compile_processor"]

_PARSE_EVENT = DROP_EVENTS[Verdict.DROPPED_PARSE]
_ACL_EVENT = DROP_EVENTS[Verdict.DROPPED_ACL]
_NO_ROUTE_EVENT = DROP_EVENTS[Verdict.DROPPED_NO_ROUTE]


@dataclass(frozen=True)
class CompiledPlan:
    """Outcome of one compilation attempt.

    ``fused`` is False when the processor's shape or middleware set
    cannot be reproduced exactly; ``reasons`` then says why (one line
    per obstruction) and the processor keeps the staged walk.
    ``lowering`` reports the backend the folded analog lane evaluates
    through (``numba`` when importable, else ``python``).
    """

    fused: bool
    reasons: tuple[str, ...]
    stages: tuple[str, ...]
    lowering: str
    kernel: "FusedSwitchKernel | None" = field(default=None, repr=False)


class FusedSwitchKernel:
    """The stock switch pipeline as one pass per chunk.

    Built by :func:`compile_processor` after shape analysis; mirrors
    the staged walk's observable behaviour exactly (see the module
    docstring) while eliminating its per-packet and per-stage
    machinery.  Holds only borrowed references — tables, cache,
    traffic manager and middleware state are read at call time, so
    run-time reconfiguration stays visible; structural changes
    (stage insertion, middleware replacement) recompile via
    :meth:`~repro.dataplane.pipeline.AnalogPacketProcessor._recompile`.
    """

    def __init__(self, processor, parser_stage: ParserStage,
                 digital_stage: DigitalMatsStage,
                 interior: Sequence, egress_stage: EgressStage,
                 telemetry: TelemetryMiddleware | None,
                 energy: EnergyAttributionMiddleware | None,
                 supervision: SupervisionMiddleware | None) -> None:
        self._processor = processor
        self._runtime = processor.runtime
        self._parser_name = parser_stage.name
        self._digital_name = digital_stage.name
        self._interior = tuple(interior)
        self._egress_name = egress_stage.name
        self._telemetry = telemetry
        self._energy = energy
        self._supervision = supervision
        self._ledger = processor.ledger
        # The DENY sentinel without importing repro.netfunc: recovered
        # from the live firewall's (enum) default action.
        self._deny = type(processor.firewall.default_action).DENY
        # Loop-invariant name folds (ports are small and stable).
        self._stamp_names: dict[int, str] = {}
        self._gauge_names: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Entry points (mirror AnalogPacketProcessor's staged walks)
    # ------------------------------------------------------------------
    def process_one(self, packet, now: float) -> ProcessResult:
        """One parsed packet: a fused chunk of one."""
        results: list[ProcessResult | None] = [None]
        self._run_chunk([packet], [0], now, results)
        assert results[0] is not None
        return results[0]

    def run_chunks(self, packets: Sequence, indices: Sequence[int],
                   now: float, chunk_size: int,
                   results: list[ProcessResult | None]) -> None:
        """Chunk packets through the fused match-action kernel."""
        if chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1: {chunk_size!r}")
        indices = list(indices)
        for start in range(0, len(packets), chunk_size):
            self._run_chunk(packets[start:start + chunk_size],
                            indices[start:start + chunk_size],
                            now, results)

    def process_frames(self, frames: Sequence[bytes], now: float,
                       chunk_size: int) -> list[ProcessResult]:
        """One fused parser chunk over the burst, then chunked MATs."""
        results: list[ProcessResult | None] = [None] * len(frames)
        runtime = self._runtime
        runtime.chunks += 1
        tally = self._telemetry.tally_factory() \
            if self._telemetry is not None else NULL_TALLY
        survivors: list = []
        kept: list[int] = []
        dropped = 0
        try:
            if frames:
                runs = runtime.stage_runs
                runs[self._parser_name] = \
                    runs.get(self._parser_name, 0) + 1
                before = self._ledger.total
                parsed = self._processor.parser.parse_frames(
                    frames, created_at=now)
                for offset, packet in enumerate(parsed):
                    if packet is None:
                        tally.event(_PARSE_EVENT)
                        results[offset] = ProcessResult(
                            verdict=Verdict.DROPPED_PARSE)
                        dropped += 1
                    else:
                        survivors.append(packet)
                        kept.append(offset)
                if self._energy is not None:
                    self._energy.record(self._parser_name,
                                        self._ledger.total - before)
        finally:
            self._finish_chunk(tally, now)
        if dropped:
            self._processor.processed += dropped
            self._processor.verdict_counts[Verdict.DROPPED_PARSE] += \
                dropped
        self.run_chunks(survivors, kept, now, chunk_size, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # The fused chunk
    # ------------------------------------------------------------------
    def _run_chunk(self, packets: Sequence, indices: Sequence[int],
                   now: float,
                   results: list[ProcessResult | None]) -> None:
        """Digital MATs -> interior stages -> egress, one fused pass.

        Reproduces the staged walk's chunk/stage counters, tally
        contents, ledger attribution and supervision tick exactly;
        drop verdicts are written straight into the result slots and
        the processor's totals are bulk-updated once at the end.
        """
        processor = self._processor
        runtime = self._runtime
        runtime.chunks += 1
        tally = self._telemetry.tally_factory() \
            if self._telemetry is not None else NULL_TALLY
        counts: dict[Verdict, int] = {}
        try:
            if packets:
                survivors, kept, ports = self._digital_pass(
                    packets, indices, now, tally, results, counts)
                if self._interior and survivors:
                    survivors, kept, ports = self._interior_pass(
                        survivors, kept, ports, now, tally, results)
                if survivors:
                    self._egress_pass(survivors, kept, ports, now,
                                      tally, results, counts)
        finally:
            self._finish_chunk(tally, now)
        if counts:
            emitted = 0
            verdict_counts = processor.verdict_counts
            for verdict, n in counts.items():
                verdict_counts[verdict] += n
                emitted += n
            processor.processed += emitted

    def _finish_chunk(self, tally, now: float) -> None:
        """The staged walk's chunk epilogue, in middleware exit order.

        Middleware exit in reverse registration order, so supervision
        (registered last) ticks before the telemetry tally flushes.
        """
        supervision = self._supervision
        if supervision is not None:
            supervision.invocations += 1
            supervision.supervise(now)
        if self._telemetry is not None:
            tally.flush(self._telemetry.collector)

    def _digital_pass(self, packets: Sequence, indices: Sequence[int],
                      now: float, tally,
                      results: list[ProcessResult | None],
                      counts: dict[Verdict, int]
                      ) -> tuple[list, list[int], list[int]]:
        """The digital MATs verdict loop, fused.

        Classification reuses the exact columnar kernel the staged
        stage runs (:func:`~repro.dataplane.fastpath.classify_chunk`),
        so cache counters, TCAM energy and lookup order are identical
        by construction; the verdict loop folds the per-packet emitter
        into direct result writes and memoises the per-port backlog
        (constant until egress enqueues) and INT-stamp names.
        """
        processor = self._processor
        runs = self._runtime.stage_runs
        name = self._digital_name
        runs[name] = runs.get(name, 0) + 1
        before = self._ledger.total
        batch = PacketBatch(packets)
        actions, hops = classify_chunk(
            batch, processor.firewall, processor.lookup,
            processor.flow_cache, None)
        default = processor.firewall.default_action
        deny = self._deny
        manager = processor.traffic_manager
        ports_by_hop = processor._ports_by_hop
        stamp_names = self._stamp_names
        backlogs: dict[int, int] = {}
        survivors: list = []
        kept: list[int] = []
        ports: list[int] = []
        for offset, packet in enumerate(packets):
            acl = actions[offset]
            tally.lookup("firewall", hit=acl is not default,
                         verdict=acl.value)
            if acl is deny:
                packet.dropped = True
                tally.event(_ACL_EVENT)
                results[indices[offset]] = ProcessResult(
                    verdict=Verdict.DROPPED_ACL, packet=packet)
                counts[Verdict.DROPPED_ACL] = \
                    counts.get(Verdict.DROPPED_ACL, 0) + 1
                continue
            next_hop = hops[offset]
            tally.lookup("ip_lookup", hit=next_hop is not None,
                         verdict=next_hop)
            if next_hop is None:
                packet.dropped = True
                tally.event(_NO_ROUTE_EVENT)
                results[indices[offset]] = ProcessResult(
                    verdict=Verdict.DROPPED_NO_ROUTE, packet=packet)
                counts[Verdict.DROPPED_NO_ROUTE] = \
                    counts.get(Verdict.DROPPED_NO_ROUTE, 0) + 1
                continue
            port = ports_by_hop[next_hop]
            backlog = backlogs.get(port)
            if backlog is None:
                backlog = backlogs[port] = manager.backlog(port)
            stamp = stamp_names.get(port)
            if stamp is None:
                stamp = stamp_names[port] = f"egress{port}"
            stamp_packet(packet, stamp, backlog, now)
            survivors.append(packet)
            kept.append(indices[offset])
            ports.append(port)
        if self._energy is not None:
            self._energy.record(name, self._ledger.total - before)
        return survivors, kept, ports

    def _interior_pass(self, survivors: list, kept: list[int],
                       ports: list[int], now: float, tally,
                       results: list[ProcessResult | None]
                       ) -> tuple[list, list[int], list[int]]:
        """Run inserted stages (e.g. the classifier) un-fused.

        Each interior stage gets a real :class:`StageContext` over the
        live columns and the processor's real emitter, so arbitrary
        inserted stages behave exactly as on the staged walk; the
        fused prologue/epilogue just bracket them.
        """
        processor = self._processor
        runs = self._runtime.stage_runs
        ctx = StageContext(now, processor._emitter(results),
                           indices=kept)
        ctx.columns["egress_port"] = ports
        ctx.tally = tally
        batch: Sequence = survivors
        producer = f"stage {self._digital_name!r}"
        for stage in self._interior:
            if _drained(batch, producer):
                break
            producer = f"stage {stage.name!r}"
            runs[stage.name] = runs.get(stage.name, 0) + 1
            before = self._ledger.total
            batch = stage.process_batch(batch, ctx)
            if self._energy is not None:
                self._energy.record(stage.name,
                                    self._ledger.total - before)
        if _drained(batch, producer):
            return [], [], []
        return (list(batch), ctx.columns["index"],
                ctx.columns["egress_port"])

    def _egress_pass(self, survivors: list, kept: list[int],
                     ports: list[int], now: float, tally,
                     results: list[ProcessResult | None],
                     counts: dict[Verdict, int]) -> None:
        """Batched per-port AQM admission, fused.

        Port groups form in first-appearance order and each group is
        judged by one ``enqueue_batch`` call, exactly like the staged
        stage — per-port RNG draw order is preserved — with verdicts
        written straight into the result slots.
        """
        processor = self._processor
        runs = self._runtime.stage_runs
        name = self._egress_name
        runs[name] = runs.get(name, 0) + 1
        before = self._ledger.total
        manager = processor.traffic_manager
        gauge_names = self._gauge_names
        staged: dict[int, list[tuple[int, object]]] = {}
        for index, packet, port in zip(kept, survivors, ports):
            staged.setdefault(port, []).append((index, packet))
        for port, entries in staged.items():
            outcomes = manager.enqueue_batch(
                port, [packet for _, packet in entries], now)
            gauge = gauge_names.get(port)
            if gauge is None:
                gauge = gauge_names[port] = f"port{port}.backlog"
            tally.gauge(gauge, manager.backlog(port))
            for (index, packet), outcome in zip(entries, outcomes):
                verdict = ADMISSION_VERDICTS[outcome]
                if verdict is not Verdict.QUEUED:
                    tally.event(DROP_EVENTS[verdict])
                results[index] = ProcessResult(
                    verdict=verdict, port=port, packet=packet)
                counts[verdict] = counts.get(verdict, 0) + 1
        if self._energy is not None:
            self._energy.record(name, self._ledger.total - before)


def compile_processor(processor) -> CompiledPlan:
    """Analyse a processor and build its fused kernel, or refuse.

    Returns a :class:`CompiledPlan`; when ``plan.fused`` the kernel
    reproduces the staged walk byte-for-byte.  Refusals (non-stock
    stage shapes, middleware the kernel cannot reproduce — tracing,
    fault plans, duplicates, anything unknown) record one reason each
    and leave the processor on the staged walk.
    """
    reasons: list[str] = []
    frame_stages = processor._frame_stages
    mats = processor._mat_stages
    parser_stage = frame_stages[0] if len(frame_stages) == 1 else None
    if not isinstance(parser_stage, ParserStage):
        reasons.append(
            "frame walk is not exactly the stock parser stage")
        parser_stage = None
    digital_stage = mats[0] if len(mats) >= 2 else None
    egress_stage = mats[-1] if len(mats) >= 2 else None
    if not isinstance(digital_stage, DigitalMatsStage) \
            or not isinstance(egress_stage, EgressStage):
        reasons.append(
            "match-action walk must open with the digital MATs and "
            "close with egress")
        digital_stage = egress_stage = None
    telemetry: TelemetryMiddleware | None = None
    energy: EnergyAttributionMiddleware | None = None
    supervision: SupervisionMiddleware | None = None
    for mw in processor.runtime.middleware:
        # Exact types only: a subclass may override the hooks the
        # kernel folds away, so it is not provably reproducible.
        if type(mw) is TelemetryMiddleware and telemetry is None:
            telemetry = mw
        elif type(mw) is EnergyAttributionMiddleware and energy is None:
            energy = mw
        elif type(mw) is SupervisionMiddleware and supervision is None:
            supervision = mw
        else:
            reasons.append(f"middleware {type(mw).__name__} needs the "
                           f"staged walk")
    stage_names = tuple(stage.name for stage in processor.runtime.stages)
    if reasons:
        return CompiledPlan(fused=False, reasons=tuple(reasons),
                            stages=stage_names, lowering=LOWERING)
    kernel = FusedSwitchKernel(processor, parser_stage, digital_stage,
                               mats[1:-1], egress_stage, telemetry,
                               energy, supervision)
    return CompiledPlan(fused=True, reasons=(), stages=stage_names,
                        lowering=LOWERING, kernel=kernel)
