"""Stage protocol and per-chunk context for the staged runtime.

A :class:`Stage` is one block of the Figure 5 switch (parser, digital
MATs, analog MAT / traffic manager with egress queues) expressed as a
columnar transform: it consumes a batch, emits verdicts for the rows
it disposes of through the context, and returns the surviving batch
for the next stage.  Cross-cutting concerns (tracing, telemetry,
energy attribution, fault installation, degradation supervision) do
*not* appear here — they are middleware, registered once on the
:class:`~repro.runtime.engine.PipelineRuntime` at assembly time.

This module is deliberately generic: it knows nothing about packets,
tables or verdict enums.  The concrete stages and the verdict
vocabulary live with the dataplane; the runtime only moves batches,
columns and emitted outcomes around.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["NullTally", "Stage", "StageContext"]


class NullTally:
    """Inert telemetry sink installed when no telemetry middleware is.

    Stages tally lookups, events and gauges unconditionally through
    ``ctx.tally``; without a telemetry middleware every call lands
    here and disappears, so stage code never branches on observability
    being wired.
    """

    __slots__ = ()

    def lookup(self, table: str, hit: bool,
               verdict: str | None = None) -> None:
        """Discard one table-lookup record."""

    def event(self, name: str, count: int = 1) -> None:
        """Discard one event count."""

    def gauge(self, name: str, value: float) -> None:
        """Discard one gauge sample."""

    def flush(self, collector: Any) -> None:
        """Nothing to flush."""


#: Shared inert sink (stateless, so one instance serves every chunk).
NULL_TALLY = NullTally()


class StageContext:
    """Everything one chunk carries through the stage pipeline.

    Attributes
    ----------
    now:
        Simulation timestamp of the chunk [s].
    emit:
        ``emit(index, verdict, port=None, packet=None)`` — record the
        final outcome of the input row with absolute index ``index``.
        Supplied by the caller (the switch front-end), so the runtime
        stays agnostic of the verdict vocabulary.
    columns:
        Auxiliary columns aligned with the *current* batch.  The
        caller seeds ``columns["index"]`` with the absolute input
        indices of the chunk rows; a stage that filters its batch must
        filter every column it consumes the same way (and may add new
        ones, e.g. the digital MATs publish ``"egress_port"``).
    tally:
        Per-chunk telemetry sink (:class:`NullTally` unless a
        telemetry middleware swapped a live tally in).
    tracer:
        Span tracer for stage-internal kernel spans, or None.  Set by
        the tracing middleware; stages must tolerate None (the
        dataplane's ``maybe_span`` already does).
    scratch:
        Free-form per-chunk storage for middleware/stage cooperation.
    """

    __slots__ = ("now", "emit", "columns", "tally", "tracer",
                 "entry_name", "entry_attributes", "scratch")

    def __init__(self, now: float,
                 emit: Callable[..., None],
                 indices: "list[int] | range | None" = None,
                 entry_name: str | None = None,
                 entry_attributes: dict | None = None) -> None:
        self.now = now
        self.emit = emit
        self.columns: dict[str, Any] = {}
        if indices is not None:
            self.columns["index"] = list(indices)
        self.tally: Any = NULL_TALLY
        self.tracer: Any = None
        #: Name/attributes of the chunk-level span the tracing
        #: middleware opens around the whole stage walk (None skips
        #: the chunk span, e.g. for a bare parser invocation).
        self.entry_name = entry_name
        self.entry_attributes = dict(entry_attributes or {})
        self.scratch: dict[str, Any] = {}

    @property
    def indices(self) -> list[int]:
        """Absolute input indices aligned with the current batch."""
        return self.columns["index"]


@runtime_checkable
class Stage(Protocol):
    """One pipeline block: a named columnar batch transform.

    Implementations may additionally declare ``span_name`` (the span
    opened around the stage by the tracing middleware; defaults to the
    stage name) and ``span_attributes(batch) -> dict`` for span
    attributes derived from the incoming batch.
    """

    name: str

    def process_batch(self, batch: Any, ctx: StageContext) -> Any:
        """Transform one chunk; return the surviving batch.

        Rows disposed of here must be reported via ``ctx.emit`` with
        their absolute index from ``ctx.columns["index"]``, and every
        consumed column must be re-published filtered to the rows the
        returned batch retains.
        """
        ...
