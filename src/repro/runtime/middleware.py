"""Cross-cutting middleware for the staged pipeline runtime.

Each concern that used to be hand-threaded through both the scalar
and the batched dataplane paths — span tracing, telemetry flushing,
energy-ledger attribution, fault-plan installation, degradation
supervision — is one middleware registered once on the
:class:`~repro.runtime.engine.PipelineRuntime` at assembly time.

A middleware wraps execution at two grains:

* :meth:`~BaseMiddleware.around_chunk` — around one chunk's whole
  walk through the stage list;
* :meth:`~BaseMiddleware.around_stage` — around one stage's
  ``process_batch`` call.

Both are context managers entered in registration order and exited in
reverse.  The stock middleware below are written to be *order
independent*: tracing is the only one that opens spans, telemetry
only swaps the chunk tally in and flushes it, energy attribution only
reads ledger totals — so any registration order yields identical
verdicts, span nesting and ledger totals (pinned by
``tests/test_runtime_middleware.py``).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Iterable, Sequence

from repro.observability.tracing import maybe_span
from repro.runtime.stage import Stage, StageContext

__all__ = [
    "BaseMiddleware",
    "EnergyAttributionMiddleware",
    "FaultPlanMiddleware",
    "SupervisionMiddleware",
    "TelemetryMiddleware",
    "TracingMiddleware",
]


class BaseMiddleware:
    """No-op middleware; subclasses override the hooks they need."""

    def on_attach(self, runtime) -> None:
        """Called once when the runtime is (re)assembled."""

    @contextmanager
    def around_chunk(self, ctx: StageContext):
        """Wrap one chunk's walk through the stage list."""
        yield

    @contextmanager
    def around_stage(self, stage: Stage, batch: Any,
                     ctx: StageContext):
        """Wrap one stage's ``process_batch`` call."""
        yield


class TracingMiddleware(BaseMiddleware):
    """Opens the chunk entry span and one span per stage.

    The chunk span is named by ``ctx.entry_name`` (skipped when None,
    e.g. a bare parser invocation outside any batch entry point); the
    stage span by the stage's ``span_name`` attribute (stages without
    one run unspanned).  The tracer is also published on the context
    so stages can open kernel-level child spans themselves.
    """

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    @contextmanager
    def around_chunk(self, ctx: StageContext):
        previous = ctx.tracer
        ctx.tracer = self.tracer
        try:
            with maybe_span(self.tracer, ctx.entry_name,
                            **ctx.entry_attributes) \
                    if ctx.entry_name is not None else nullcontext():
                yield
        finally:
            ctx.tracer = previous

    @contextmanager
    def around_stage(self, stage: Stage, batch: Any,
                     ctx: StageContext):
        name = getattr(stage, "span_name", None)
        if name is None:
            yield
            return
        attributes = getattr(stage, "span_attributes", None)
        attrs = attributes(batch) if attributes is not None else {}
        with maybe_span(self.tracer, name, **attrs):
            yield


class TelemetryMiddleware(BaseMiddleware):
    """Installs a per-chunk tally and flushes it once at chunk end.

    ``tally_factory`` builds the chunk-local aggregation object (the
    dataplane injects its
    :class:`~repro.dataplane.fastpath.TelemetryTally`); the runtime
    package itself stays agnostic of the tally's shape beyond the
    ``flush(collector)`` call.
    """

    def __init__(self, collector, tally_factory: Callable[[], Any]
                 ) -> None:
        self.collector = collector
        self.tally_factory = tally_factory

    @contextmanager
    def around_chunk(self, ctx: StageContext):
        previous = ctx.tally
        tally = self.tally_factory()
        ctx.tally = tally
        try:
            yield
        finally:
            ctx.tally = previous
            tally.flush(self.collector)


class EnergyAttributionMiddleware(BaseMiddleware):
    """Attributes ledger energy deltas to the stage that spent them.

    Purely observational: reads ``ledger.total`` before and after each
    stage and accumulates the difference under the stage name, so
    experiments can split the per-chunk joules between the digital
    MATs and the analog traffic manager without instrumenting either.
    """

    def __init__(self, ledger) -> None:
        self.ledger = ledger
        self._joules: dict[str, float] = {}

    def attribution(self) -> dict[str, float]:
        """Accumulated joules per stage name."""
        return dict(self._joules)

    def record(self, stage_name: str, joules: float) -> None:
        """Attribute joules to a stage outside the staged walk.

        The fused kernel (:mod:`repro.runtime.compile`) measures the
        same ledger deltas ``around_stage`` would but without the
        context-manager machinery; it books them here so
        ``attribution()`` reads identically either way.
        """
        self._joules[stage_name] = \
            self._joules.get(stage_name, 0.0) + joules

    @contextmanager
    def around_stage(self, stage: Stage, batch: Any,
                     ctx: StageContext):
        before = self.ledger.total
        try:
            yield
        finally:
            delta = self.ledger.total - before
            self._joules[stage.name] = \
                self._joules.get(stage.name, 0.0) + delta


class FaultPlanMiddleware(BaseMiddleware):
    """Installs fault plans once when the runtime is assembled.

    ``installers`` are zero-argument callables (typically closures
    over a :class:`~repro.robustness.injector.FaultInjector` and its
    target) run exactly once at attach time — fault installation is a
    cross-cutting assembly decision, not per-chunk work.
    """

    def __init__(self, installers: Iterable[Callable[[], Any]]
                 ) -> None:
        self.installers: Sequence[Callable[[], Any]] = list(installers)
        self.installed = 0

    def on_attach(self, runtime) -> None:
        if self.installed:
            return
        for install in self.installers:
            install()
            self.installed += 1


class SupervisionMiddleware(BaseMiddleware):
    """Drives degradation supervision once per processed chunk.

    ``supervise`` is called with the chunk timestamp after the chunk
    completes — typically
    :meth:`repro.control.cognitive.CognitiveNetworkController.tick`,
    so reprogram-retry backoff advances with traffic instead of
    needing an external clock loop.
    """

    def __init__(self, supervise: Callable[[float], Any]) -> None:
        self.supervise = supervise
        self.invocations = 0

    @contextmanager
    def around_chunk(self, ctx: StageContext):
        try:
            yield
        finally:
            self.invocations += 1
            self.supervise(ctx.now)
