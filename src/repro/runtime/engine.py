"""The staged pipeline engine: one chunk executor for every entry point.

:class:`PipelineRuntime` composes an ordered list of
:class:`~repro.runtime.stage.Stage` objects with a list of
middleware.  ``run_chunk`` walks one chunk through the stages:

* every middleware's ``around_chunk`` wraps the whole walk
  (registration order in, reverse order out);
* every middleware's ``around_stage`` wraps each stage call;
* a stage returns the surviving batch for its successor; a drained
  batch short-circuits the remaining stages.

The scalar dataplane API is literally a batch of one through this
same executor, so the per-packet and columnar paths cannot drift
apart — they *are* the same code.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any, Iterable, Sequence

from repro.runtime.stage import Stage, StageContext

__all__ = ["PipelineRuntime"]


def _drained(batch: Any, producer: str) -> bool:
    """True when no rows survive for the next stage.

    ``None`` is an explicit drain; anything else must be sized.  An
    unsized batch used to be silently treated as non-empty and walked
    through the remaining stages — now it raises immediately, naming
    the stage (or entry point) that produced it.
    """
    if batch is None:
        return True
    try:
        return len(batch) == 0
    except TypeError:
        raise TypeError(
            f"{producer} produced an unsized batch of type "
            f"{type(batch).__name__}; stages must return a sized "
            f"sequence (or None to drain the chunk)") from None


class PipelineRuntime:
    """Composes stages and cross-cutting middleware, runs chunks."""

    def __init__(self, stages: Iterable[Stage],
                 middleware: Iterable[Any] = ()) -> None:
        self.stages: list[Stage] = list(stages)
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names!r}")
        self.middleware: list[Any] = []
        #: Chunks executed since assembly (all entry points).
        self.chunks = 0
        #: Stage invocations by stage name since assembly.
        self.stage_runs: dict[str, int] = {}
        self.set_middleware(middleware)

    def set_middleware(self, middleware: Iterable[Any]) -> None:
        """Replace the middleware list (re-running ``on_attach``).

        The runtime object itself is stable across reconfiguration,
        so observability collectors bound to it keep reporting.
        """
        self.middleware = list(middleware)
        for mw in self.middleware:
            attach = getattr(mw, "on_attach", None)
            if attach is not None:
                attach(self)

    def stage(self, name: str) -> Stage:
        """Look up a composed stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}; composed: "
                       f"{[s.name for s in self.stages]}")

    def energy_attribution(self) -> dict[str, float]:
        """Merged per-stage joules from any attributing middleware."""
        merged: dict[str, float] = {}
        for mw in self.middleware:
            attribution = getattr(mw, "attribution", None)
            if attribution is None:
                continue
            for name, joules in attribution().items():
                merged[name] = merged.get(name, 0.0) + joules
        return merged

    def run_chunk(self, batch: Any, ctx: StageContext,
                  stages: Sequence[Stage] | None = None) -> Any:
        """Walk one chunk through the (sub)pipeline under middleware.

        ``stages`` restricts the walk to a contiguous slice of the
        composed pipeline (e.g. the frame entry point runs the parser
        alone over the whole burst, then chunks the survivors through
        the match-action stages); None runs every composed stage.
        Returns the batch surviving the final stage.
        """
        active = self.stages if stages is None else stages
        middleware = self.middleware
        self.chunks += 1
        runs = self.stage_runs
        with ExitStack() as chunk_scope:
            for mw in middleware:
                chunk_scope.enter_context(mw.around_chunk(ctx))
            producer = "the pipeline input"
            for stage in active:
                if _drained(batch, producer):
                    break
                producer = f"stage {stage.name!r}"
                runs[stage.name] = runs.get(stage.name, 0) + 1
                with ExitStack() as stage_scope:
                    for mw in middleware:
                        stage_scope.enter_context(
                            mw.around_stage(stage, batch, ctx))
                    batch = stage.process_batch(batch, ctx)
        return batch
