"""The shared sense -> decide -> actuate control-loop abstraction.

Before this module the repo had four control loops, each with its own
polling, pacing and reprogram conventions: the intent retarget loop,
the cognitive controller's supervision tick, the fabric controller's
two-phase commit, and the degradation wrapper's retry backoff.
:class:`ControlLoop` factors the shared shape out:

* a :class:`Sensor` turns some ``poll_metrics()`` surface — a single
  switch, a sharded fabric, or externally fed counters — into one
  observation dict per decision, *consuming* the observation window
  as it does (sense returns the window and resets it);
* a :class:`Policy` maps ``(now, observation)`` to a sequence of
  :class:`Action` s, each named after a fabric programming op
  (``retarget``, ``reprogram_intended``, ...) so the same decision
  can drive one AQM or a whole fabric;
* an :class:`Actuator` applies one action and reports whether it was
  actually committed — a gated actuator (see
  :class:`repro.control.learning.EnvelopeGate`) may refuse.

Pacing is deterministic on the *simulation* clock: a loop decides at
most once per ``min_interval_s`` of sim time, never on wall time, so
replaying a trace replays the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

__all__ = [
    "AQMActuator",
    "Action",
    "Actuator",
    "ControlLoop",
    "CounterSensor",
    "Policy",
    "Sensor",
    "SwitchSensor",
]


@dataclass(frozen=True)
class Action:
    """One named actuation, in the fabric programming-op vocabulary.

    ``kind`` matches the transactional op names understood by
    :class:`repro.fabric.controller.FabricController` (``retarget``,
    ``reprogram_intended``, ...), so a policy's output can be applied
    to one switch *or* staged fleet-wide without translation.
    """

    kind: str
    args: tuple = ()


@runtime_checkable
class Sensor(Protocol):
    """Turns a metrics surface into one observation per decision."""

    def sense(self, now: float) -> dict:
        """Return the observation window ending at ``now`` and reset it."""
        ...


@runtime_checkable
class Policy(Protocol):
    """Maps one observation to zero or more actions."""

    def decide(self, now: float, observation: dict) -> Iterable[Action]:
        ...


@runtime_checkable
class Actuator(Protocol):
    """Applies one action; False means it was refused (e.g. gated)."""

    def apply(self, action: Action) -> bool:
        ...


class ControlLoop:
    """One paced sense -> decide -> actuate loop on the sim clock.

    :meth:`step` is cheap when paced: until ``min_interval_s`` of sim
    time has passed since the previous decision the loop returns
    without sensing, so it can be driven from a per-chunk supervision
    hook.  Every decision consumes the sensor's observation window
    (even when the policy holds), reproducing the windowed-statistics
    behaviour of the original intent loop byte for byte.
    """

    def __init__(self, sensor: Sensor, policy: Policy,
                 actuator: Actuator, min_interval_s: float = 1.0) -> None:
        if min_interval_s <= 0:
            raise ValueError(
                f"interval must be positive: {min_interval_s!r}")
        self.sensor = sensor
        self.policy = policy
        self.actuator = actuator
        self.min_interval_s = min_interval_s
        self._last_decision_s: float | None = None
        self.decisions = 0
        self.applied = 0
        self.rejected = 0

    @property
    def last_decision_s(self) -> float | None:
        """Sim time of the previous decision (None before the first)."""
        return self._last_decision_s

    def step(self, now: float) -> tuple[Action, ...]:
        """Run one paced iteration; returns the actions applied."""
        if self._last_decision_s is not None and \
                now - self._last_decision_s < self.min_interval_s:
            return ()
        self._last_decision_s = now
        observation = self.sensor.sense(now)
        applied = []
        for action in self.policy.decide(now, observation):
            if self.actuator.apply(action):
                self.applied += 1
                applied.append(action)
            else:
                self.rejected += 1
        self.decisions += 1
        return tuple(applied)


class CounterSensor:
    """An externally fed packet/drop window (the intent-loop feed).

    The caller diffs its own counters and calls :meth:`feed`; the
    loop's next decision consumes whatever accumulated since the
    previous one.
    """

    def __init__(self) -> None:
        self.packets = 0
        self.drops = 0

    def feed(self, packets: int, drops: int) -> None:
        if packets < 0 or drops < 0 or drops > packets:
            raise ValueError(
                f"inconsistent counters: packets={packets}, "
                f"drops={drops}")
        self.packets += packets
        self.drops += drops

    @property
    def drop_rate(self) -> float:
        """Drop fraction over the window accumulated so far."""
        if self.packets == 0:
            return 0.0
        return self.drops / self.packets

    def sense(self, now: float) -> dict:
        observation = {"packets": self.packets, "drops": self.drops,
                       "drop_rate": self.drop_rate}
        self.packets = 0
        self.drops = 0
        return observation


class SwitchSensor:
    """Windows one switch's verdict counters and delay telemetry.

    Wraps an assembled
    :class:`~repro.dataplane.pipeline.AnalogPacketProcessor`: each
    ``sense`` diffs the cumulative verdict counters against the
    previous decision and reads the per-port queue state, so a policy
    sees ``{packets, drops, drop_rate, delay_s, implied_delay_s,
    backlog}`` for the window just ended.

    Two delay signals are always reported; ``delay_source`` picks
    which one lands in ``delay_s``:

    * ``"ewma"`` — the worst per-port sojourn EWMA of *dequeued*
      packets: the ground truth the paper's 20ms +/- 10ms objective
      constrains, but it lags a reprogram by a full queue-drain time
      (packets served now were admitted under the old band);
    * ``"backlog"`` — the worst per-port ``backlog_bytes * 8 /
      service_rate_bps``: the delay a packet admitted *now* will
      suffer.  It responds to an actuation within the same window,
      which is what a learning policy must score on — with the
      lagging EWMA a lower-target candidate is punished instantly
      (drops) but rewarded a window late, biasing a gradient
      estimate against ever tightening the programming.
    """

    def __init__(self, processor, delay_source: str = "ewma") -> None:
        if delay_source not in ("ewma", "backlog"):
            raise ValueError(
                f"unknown delay source: {delay_source!r}")
        self._processor = processor
        self._delay_source = delay_source
        self._last_total = 0
        self._last_drops = 0

    #: Queue-loss verdicts: what congestion costs traffic.  Both count
    #: — an AQM drop and a tail-overflow drop are the same lost packet,
    #: and a policy scored only on AQM drops would learn to prefer
    #: programmings loose enough to shift loss into (unpenalised)
    #: overflow.
    _LOSS_VERDICTS = ("dropped_aqm", "dropped_overflow")

    @staticmethod
    def _queue_drops(counts: dict) -> int:
        # Verdict enums are matched by value so this module never
        # imports the dataplane (layering: control sits above it).
        return sum(count for verdict, count in counts.items()
                   if getattr(verdict, "value", verdict)
                   in SwitchSensor._LOSS_VERDICTS)

    def sense(self, now: float) -> dict:
        counts = self._processor.verdict_counts
        total = sum(counts.values())
        drops = self._queue_drops(counts)
        window_total = total - self._last_total
        window_drops = drops - self._last_drops
        self._last_total = total
        self._last_drops = drops
        manager = self._processor.traffic_manager
        delays = []
        implied = []
        backlog = 0
        for port in range(manager.n_ports):
            aqm = manager.aqm(port)
            analog = getattr(aqm, "analog", aqm)
            delays.append(getattr(analog, "delay_ewma_s", 0.0))
            view = manager.queue_view(port)
            implied.append(view.backlog_bytes * 8.0
                           / view.service_rate_bps)
            backlog += manager.backlog(port)
        ewma = max(delays) if delays else 0.0
        implied_delay = max(implied) if implied else 0.0
        return {
            "packets": window_total,
            "drops": window_drops,
            "drop_rate": (window_drops / window_total
                          if window_total else 0.0),
            "delay_s": (implied_delay if self._delay_source == "backlog"
                        else ewma),
            "delay_ewma_s": ewma,
            "implied_delay_s": implied_delay,
            "backlog": backlog,
        }


class AQMActuator:
    """Applies actions to one or more analog AQMs (single-switch path).

    The action vocabulary mirrors the fabric ops so the same policy
    drives a lone switch here or a whole fabric through
    :class:`repro.control.fleet.FleetActuator`.  With several AQMs
    (one per egress port) an action is applied to all of them, so a
    switch — like a fabric — never runs mixed programmings.
    Degradation wrappers are unwrapped: actuation always reaches the
    analog table itself.
    """

    def __init__(self, *aqms) -> None:
        if not aqms:
            raise ValueError("need at least one AQM to actuate")
        self.aqms = tuple(getattr(aqm, "analog", aqm) for aqm in aqms)

    @property
    def aqm(self):
        """The first managed AQM (the whole set shares a programming)."""
        return self.aqms[0]

    def apply(self, action: Action) -> bool:
        if action.kind == "retarget":
            for aqm in self.aqms:
                aqm.retarget(*action.args)
            return True
        if action.kind == "reprogram_intended":
            for aqm in self.aqms:
                aqm.reprogram_intended(*action.args)
            return True
        raise ValueError(f"unknown action kind: {action.kind!r}")
