"""The learned-vs-static scenario gate (the paper-fidelity payoff).

The paper's end-to-end objective is a mean queueing delay of
20ms +/- 10ms.  A *static* programming cannot hold it across traffic
regimes: an AQM mis-programmed for a 120ms target lets the queue
drift far out of the envelope the moment a diurnal peak or flash
crowd saturates a port.  The gate demonstrates the closed loop
repairing exactly that: the same mis-programmed switch, with an SPSA
(or CEM) learning loop attached through the cognitive controller's
supervision tick, pulls the worst-port delay back inside the
envelope — and every candidate reprogram clears the degradation
oracle on its way in.

:func:`run_gate` runs one scenario twice (static, then learned) and
returns a JSON-able comparison document; the ``control-loop`` CI job
and ``benchmarks/test_control_loop.py`` assert on it and archive it
as ``benchmarks/BENCH_control.json``.
"""

from __future__ import annotations

import numpy as np

from repro.control.learning import DelayEnvelope, EnvelopeGate, SPSAPolicy
from repro.control.loop import AQMActuator, ControlLoop, SwitchSensor

__all__ = [
    "MISPROGRAMMED_TARGET_S",
    "control_switch_factory",
    "run_gate",
]

#: The static strawman: an AQM aimed at 120ms +/- 60ms — six times
#: the paper's target, the kind of stale programming an NMS leaves
#: behind when traffic moves.
MISPROGRAMMED_TARGET_S = 0.120
MISPROGRAMMED_DEVIATION_S = 0.060


def control_switch_factory(*, learned: bool,
                           envelope: DelayEnvelope | None = None,
                           policy_cls=SPSAPolicy,
                           min_interval_s: float = 0.03,
                           start_target_s: float = MISPROGRAMMED_TARGET_S,
                           start_deviation_s: float =
                           MISPROGRAMMED_DEVIATION_S,
                           order: int = 1,
                           attachments: dict | None = None):
    """A ``processor_factory`` for :func:`repro.simnet.run_scenario`.

    Builds the scenario's standard supervised switch, but with every
    port's AQM mis-programmed at ``start_target_s`` and its internal
    threshold adaptation off — the programming only moves if a
    control loop moves it.  With ``learned=True`` a ``policy_cls``
    sweep (seeded from the scenario seed) is attached to the switch's
    cognitive controller behind an :class:`EnvelopeGate`, so the
    supervision tick drives sense -> decide -> gate -> ``update_pCAM``
    once per ``min_interval_s`` of simulated time.

    ``attachments``, when given, receives the live ``policy``,
    ``gate`` and ``loop`` objects keyed by name — the gate runner
    reads sweep statistics out of it after the scenario completes.

    ``order`` defaults to first-order AQMs (zeroth-order band plus
    the d/dt veto): the learned knob is the zeroth-order band, and
    the d2/d3 veto stages — whose normalised derivatives swing deep
    negative while an extreme surge oscillates — cut the PDP hard
    during every drain, readmitting enough of an 8x overload that
    the queue limit-cycles far above *any* programmed band.  No
    retargeting can repair that, so the higher orders stay on the A1
    ablation axis rather than in the control-gate plant.
    """
    envelope = envelope or DelayEnvelope()

    def factory(spec, seed):
        from repro.dataplane.switch import build_switch
        from repro.netfunc.aqm.pcam_aqm import PCAMAQM
        from repro.robustness.degradation import DegradingAQM

        ports = iter(range(spec.n_ports))
        aqms = []

        def aqm_factory():
            port = next(ports)
            analog = PCAMAQM(
                target_delay_s=start_target_s,
                max_deviation_s=start_deviation_s,
                order=order,
                adaptation=False,
                rng=np.random.default_rng((seed, port, 0xA11A)))
            wrapped = DegradingAQM(analog) \
                if spec.graceful_degradation else analog
            aqms.append(wrapped)
            return wrapped

        processor = build_switch(spec, aqm_factory=aqm_factory)
        for aqm in aqms:
            # One energy account for the whole switch, matching the
            # scenario runner's default factory.
            getattr(aqm, "analog", aqm).ledger = processor.ledger
        if learned:
            policy = policy_cls.for_aqm(
                aqms[0], seed=seed, envelope=envelope)
            gate = EnvelopeGate(AQMActuator(*aqms), aqms)
            sensor = SwitchSensor(processor, delay_source="backlog")
            loop = ControlLoop(sensor, policy, gate,
                               min_interval_s=min_interval_s)
            processor.controller.attach_loop(loop)
            if attachments is not None:
                attachments.update(policy=policy, gate=gate, loop=loop)
        return processor

    return factory


def _windowed(report) -> list[dict]:
    return [{"index": w.index, "t_end_s": w.t_end_s,
             "max_delay_ewma_s": w.max_delay_ewma_s,
             "mean_delay_ewma_s": w.mean_delay_ewma_s,
             "aqm_drops": w.aqm_drops, "offered": w.offered}
            for w in report.windows]


def run_gate(scenario_name: str, *, seed: int = 0,
             n_packets: int = 240_000, port_rate_bps: float = 60e6,
             queue_capacity: int = 2_400,
             envelope: DelayEnvelope | None = None,
             policy_cls=SPSAPolicy,
             min_interval_s: float = 0.06,
             settle_fraction: float = 0.5) -> dict:
    """Static vs learned, one scenario, one JSON-able verdict.

    Runs the scenario twice from the same seed and switch spec (ports
    throttled to ``port_rate_bps`` so the scenario's peak actually
    congests): once with the mis-programmed static AQM, once with the
    learning loop attached.  *Congested windows* are the static run's
    windows whose sustained (tick-averaged) worst-port delay drifted
    above the envelope; the gate compares mean sustained delay over
    those windows between the runs.

    The sweep starts from the same misprogramming the static run is
    stuck with, so the first part of the run *is* the learning
    transient.  ``settle_fraction`` marks where the exam starts: the
    headline ``mean_congested_delay_s`` is taken over congested
    windows in the last ``1 - settle_fraction`` of the run (both the
    full-run and settled means are reported).

    ``queue_capacity`` defaults to a realistically sized buffer
    (~120 ms of drain at the default port rate) instead of the
    scenario matrix's deliberately bottomless 16k-packet queues.
    That matters for learnability, not just realism: with seconds of
    buffer a congestion peak is one long rising transient, so
    a candidate programming's measured delay reflects the ramp it
    was deployed into rather than its own equilibrium.  A BDP-scale
    buffer reaches quasi-steady state within one decision window,
    which is what makes the SPSA finite differences attributable —
    and the static misprogrammed run still drifts far out of the
    envelope, pinned at the buffer cap (classic bufferbloat).

    The returned document carries, per run, the windowed delay
    trajectory plus the sweep statistics (episodes, commits, gate
    rejections/violations, final and best programming) needed by the
    CI gate: learned mean delay inside ``envelope.target_s +/-
    halfwidth_s`` where the static mean drifted out, with zero
    envelope violations and no degraded tables.
    """
    from repro.simnet.scenarios import default_switch_spec, run_scenario

    envelope = envelope or DelayEnvelope()
    # Single-priority FIFO ports: the paper's Figure 8 plant.  With
    # strict-priority classes a low-priority surge (flash crowd) is
    # starved behind base traffic, so its measured sojourn is set by
    # the *scheduler*, not the AQM programming — no band, learned or
    # ideal, could hold the envelope there.
    spec = default_switch_spec(port_rate_bps=port_rate_bps,
                               queue_capacity=queue_capacity,
                               n_priorities=1)

    static_report = run_scenario(
        scenario_name, seed=seed, n_packets=n_packets, spec=spec,
        processor_factory=control_switch_factory(learned=False))

    attachments: dict = {}
    learned_report = run_scenario(
        scenario_name, seed=seed, n_packets=n_packets, spec=spec,
        processor_factory=control_switch_factory(
            learned=True, envelope=envelope, policy_cls=policy_cls,
            min_interval_s=min_interval_s, attachments=attachments))

    upper = envelope.target_s + envelope.halfwidth_s
    congested = [w.index for w in static_report.windows
                 if w.mean_delay_ewma_s > upper]
    first_settled = int(settle_fraction * len(static_report.windows))
    settled = [i for i in congested if i >= first_settled]

    def mean_over(report, indices):
        if not indices:
            return 0.0
        return float(np.mean([report.windows[i].mean_delay_ewma_s
                              for i in indices]))

    policy = attachments["policy"]
    gate = attachments["gate"]
    loop = attachments["loop"]
    return {
        "scenario": scenario_name,
        "seed": seed,
        "n_packets": n_packets,
        "port_rate_bps": port_rate_bps,
        "queue_capacity": queue_capacity,
        "policy": policy_cls.__name__,
        "envelope": {"target_s": envelope.target_s,
                     "halfwidth_s": envelope.halfwidth_s},
        "congested_windows": congested,
        "settled_congested_windows": settled,
        "static": {
            "mean_congested_delay_s": mean_over(static_report, settled),
            "mean_congested_delay_full_run_s": mean_over(
                static_report, congested),
            "windows": _windowed(static_report),
            "aqm_drops": static_report.verdict_counts["dropped_aqm"],
            "degraded_tables": list(static_report.degraded_tables),
        },
        "learned": {
            "mean_congested_delay_s": mean_over(learned_report,
                                                settled),
            "mean_congested_delay_full_run_s": mean_over(
                learned_report, congested),
            "windows": _windowed(learned_report),
            "aqm_drops": learned_report.verdict_counts["dropped_aqm"],
            "degraded_tables": list(learned_report.degraded_tables),
            "episodes": policy.episodes,
            "decisions": loop.decisions,
            "applied": loop.applied,
            "gate_checks": gate.checks,
            "gate_rejections": gate.rejections,
            "gate_violations": gate.violations,
            "final_programming": list(policy.programming),
            "best_programming": list(policy.best_programming),
            "best_score": policy.best_score,
        },
    }
