"""The unified control plane (Figure 5, top).

Everything that *closes the loop* over the analog dataplane lives
here: the shared sense -> decide -> actuate :class:`ControlLoop`
abstraction (:mod:`repro.control.loop`), the intent-driven retarget
loop ported from ``repro.dataplane.control_loop``
(:mod:`repro.control.intent`), the cognitive network controller
ported from ``repro.dataplane.controller``
(:mod:`repro.control.cognitive`), the gradient-free learning
policies (:mod:`repro.control.learning`), and the fleet-scale
learned controller that shares a winning programming through one
two-phase fabric commit (:mod:`repro.control.fleet`).

Layering: ``repro.control`` sits *above* the dataplane, fabric,
robustness and observability layers — it may import any of them
(lazily where needed), and nothing below may import it back except
the two deprecation shims left at the old dataplane paths.
"""

from repro.control.loop import (
    Action,
    Actuator,
    AQMActuator,
    ControlLoop,
    CounterSensor,
    Policy,
    Sensor,
    SwitchSensor,
)
from repro.control.intent import Intent, IntentController, IntentPolicy
from repro.control.cognitive import (
    CognitiveNetworkController,
    RegisteredFunction,
)
from repro.control.learning import (
    CEMPolicy,
    DelayEnvelope,
    EnvelopeGate,
    ProgramBounds,
    SPSAPolicy,
)
from repro.control.fleet import (
    FleetActuator,
    FleetLearningController,
    FleetSensor,
)

__all__ = [
    "AQMActuator",
    "Action",
    "Actuator",
    "CEMPolicy",
    "CognitiveNetworkController",
    "ControlLoop",
    "CounterSensor",
    "DelayEnvelope",
    "EnvelopeGate",
    "FleetActuator",
    "FleetLearningController",
    "FleetSensor",
    "Intent",
    "IntentController",
    "IntentPolicy",
    "Policy",
    "ProgramBounds",
    "RegisteredFunction",
    "SPSAPolicy",
    "Sensor",
    "SwitchSensor",
]
