"""The cognitive network controller (Figure 5, top).

"The splitting of network functions into the digital and analog
domains requires a cognitive network controller.  The controller
programs the memristor-based pCAMs and TCAMs based upon the
requirements of the network functions."

:class:`CognitiveNetworkController` owns a
:class:`~repro.core.compiler.CognitiveCompiler`, registers declared
network functions, compiles the digital/analog split, and exposes the
run-time reprogramming path (``update_pCAM``) to the functions it
placed in the analog domain.

This is the former ``repro.dataplane.controller``, moved up into the
unified control layer.  New here: the controller can own any number
of :class:`~repro.control.loop.ControlLoop` s (intent retargeting,
learned programming sweeps, ...) via :meth:`attach_loop`; its
periodic :meth:`tick` — already driven once per processed chunk by
the supervision middleware — then paces every attached loop on the
same sim clock.  With no loops attached, ``tick`` behaves exactly as
before (pinned by the runtime/fabric golden suites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.control.loop import ControlLoop
from repro.core.compiler import (
    CognitiveCompiler,
    Domain,
    NetworkFunctionSpec,
    Placement,
)
from repro.core.pcam_cell import PCAMParams
from repro.core.pcam_pipeline import PCAMPipeline
from repro.core.programming import update_pcam

__all__ = ["CognitiveNetworkController", "RegisteredFunction"]


@dataclass
class RegisteredFunction:
    """A network function known to the controller."""

    spec: NetworkFunctionSpec
    #: Called with the assigned domain when the split is compiled;
    #: the function installs itself on the corresponding hardware.
    install: Callable[[Domain], None] | None = None
    domain: Domain | None = None
    #: Analog pipelines the controller may reprogram at run time.
    pipelines: dict[str, PCAMPipeline] = field(default_factory=dict)


class CognitiveNetworkController:
    """Compiles and programs the digital/analog function split."""

    def __init__(self, compiler: CognitiveCompiler | None = None) -> None:
        self.compiler = compiler or CognitiveCompiler()
        self._functions: dict[str, RegisteredFunction] = {}
        self._placement: Placement | None = None
        self._supervised: dict[str, object] = {}
        self._loops: list[ControlLoop] = []
        self._observability = None
        self.reprogram_events = 0

    # ------------------------------------------------------------------
    # Observability (the run-time observation feed of Sec. 5)
    # ------------------------------------------------------------------
    def attach_observability(self, observability) -> None:
        """Give the controller the shared observability hub to poll.

        ``observability`` is a
        :class:`repro.observability.hub.Observability`;
        :class:`~repro.dataplane.pipeline.AnalogPacketProcessor`
        attaches its hub automatically when built with one.
        """
        self._observability = observability

    @property
    def observability(self):
        """The attached hub, or None."""
        return self._observability

    def poll_metrics(self) -> dict:
        """One snapshot of every observed metric (the adaptation feed).

        This is the "run-time observations" input of the paper's
        cognitive loop: table hit/miss statistics, energy-account
        totals, degradation fallback/retry counts and per-stage
        latency histograms, in one JSON-able mapping.  Raises
        :class:`RuntimeError` when no hub is attached.
        """
        if self._observability is None:
            raise RuntimeError(
                "no observability hub attached; build the processor "
                "with observability=Observability() or call "
                "attach_observability()")
        return self._observability.snapshot()

    # ------------------------------------------------------------------
    # Switch assembly
    # ------------------------------------------------------------------
    def build_switch(self, spec, *, observability=None,
                     aqm_factory=None):
        """Assemble a switch from a declarative spec, owned by self.

        ``spec`` is a :class:`~repro.dataplane.switch.SwitchSpec`;
        the returned
        :class:`~repro.dataplane.pipeline.AnalogPacketProcessor` uses
        this controller (supervision, reprogramming, metric polls) —
        one controller can own several switches.
        """
        from repro.dataplane.switch import build_switch
        return build_switch(spec, controller=self,
                            observability=observability,
                            aqm_factory=aqm_factory)

    # ------------------------------------------------------------------
    # Registration & compilation
    # ------------------------------------------------------------------
    def register(self, spec: NetworkFunctionSpec,
                 install: Callable[[Domain], None] | None = None
                 ) -> RegisteredFunction:
        """Declare a network function to be placed."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        registration = RegisteredFunction(spec=spec, install=install)
        self._functions[spec.name] = registration
        return registration

    @property
    def functions(self) -> tuple[str, ...]:
        """Names of every registered network function."""
        return tuple(self._functions)

    @property
    def placement(self) -> Placement | None:
        """The compiled placement, or None before compile()."""
        return self._placement

    def compile(self) -> Placement:
        """Run the precision-aware split and install every function."""
        if not self._functions:
            raise ValueError("no functions registered")
        specs = [registration.spec
                 for registration in self._functions.values()]
        placement = self.compiler.place(specs)
        self._placement = placement
        for registration in self._functions.values():
            domain = placement.domain_of(registration.spec.name)
            registration.domain = domain
            if registration.install is not None:
                registration.install(domain)
        return placement

    def domain_of(self, name: str) -> Domain:
        """Placement domain of a named function (after compile())."""
        if self._placement is None:
            raise RuntimeError("compile() has not been run")
        return self._placement.domain_of(name)

    # ------------------------------------------------------------------
    # Run-time reprogramming (update_pCAM path)
    # ------------------------------------------------------------------
    def attach_pipeline(self, function_name: str, pipeline_name: str,
                        pipeline: PCAMPipeline) -> None:
        """Expose an analog pipeline for run-time reprogramming."""
        registration = self._require(function_name)
        registration.pipelines[pipeline_name] = pipeline

    def reprogram(self, function_name: str, pipeline_name: str,
                  stage: str, params: PCAMParams) -> None:
        """update_pCAM: push fresh parameters into a placed pipeline."""
        registration = self._require(function_name)
        if registration.domain is not Domain.ANALOG_PCAM:
            raise ValueError(
                f"{function_name!r} is not placed in the analog domain")
        try:
            pipeline = registration.pipelines[pipeline_name]
        except KeyError:
            raise KeyError(
                f"{function_name!r} has no pipeline {pipeline_name!r}; "
                f"attached: {list(registration.pipelines)}") from None
        update_pcam(pipeline, stage, params)
        self.reprogram_events += 1

    # ------------------------------------------------------------------
    # Graceful-degradation supervision (retry/reprogram backoff)
    # ------------------------------------------------------------------
    def supervise(self, name: str, degrader) -> None:
        """Register a degradable table for controller-driven retries.

        ``degrader`` is anything exposing ``maybe_retry(now) -> bool``
        and ``degraded`` — in practice a
        :class:`repro.robustness.degradation.DegradingAQM`.  The
        controller's periodic :meth:`tick` then owns the
        reprogram-backoff loop instead of leaving it to the data path.
        """
        if name in self._supervised:
            raise ValueError(f"table {name!r} already supervised")
        self._supervised[name] = degrader

    @property
    def supervised(self) -> tuple[str, ...]:
        """Names of every supervised degradable table."""
        return tuple(self._supervised)

    def degraded_tables(self) -> tuple[str, ...]:
        """Supervised tables currently serving from their fallback."""
        return tuple(name for name, degrader in self._supervised.items()
                     if degrader.degraded)

    # ------------------------------------------------------------------
    # Attached control loops (intent retargeting, learned sweeps)
    # ------------------------------------------------------------------
    def attach_loop(self, loop: ControlLoop) -> ControlLoop:
        """Own a control loop: :meth:`tick` will pace it on sim time.

        Returns the loop for chaining.  Loops step *after* the
        degradation retries of the same tick, so a freshly repaired
        table is observed (not actuated around) within the tick.
        """
        self._loops.append(loop)
        return loop

    @property
    def loops(self) -> tuple[ControlLoop, ...]:
        """Every attached control loop, in attachment order."""
        return tuple(self._loops)

    def tick(self, now: float) -> tuple[str, ...]:
        """Drive the retry/reprogram backoff of every degraded table.

        Each successful retry is an ``update_pCAM`` reprogramming pass
        and counts toward :attr:`reprogram_events`, as does every
        action an attached control loop applies this tick.  Returns
        the names of the tables retried this tick.
        """
        retried = []
        for name, degrader in self._supervised.items():
            if degrader.maybe_retry(now):
                self.reprogram_events += 1
                retried.append(name)
        for loop in self._loops:
            self.reprogram_events += len(loop.step(now))
        return tuple(retried)

    def _require(self, name: str) -> RegisteredFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(
                f"unknown function {name!r}; registered: "
                f"{list(self._functions)}") from None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> list[str]:
        """Human-readable placement report."""
        if self._placement is None:
            return ["<not compiled>"]
        lines = [f"analog error budget: {self._placement.budget.total:.4f} "
                 f"(dominant: {self._placement.budget.dominant_term()})"]
        for registration in self._functions.values():
            name = registration.spec.name
            lines.append(
                f"  {name:<20} -> {registration.domain.value:<12} "
                f"({self._placement.rationale[name]})")
        return lines
