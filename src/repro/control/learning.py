"""Gradient-free learning of pCAM programmings (SPSA and CEM).

The paper's conclusion argues the analog dataplane enables
*self-learning* line-rate functions: the controller observes the
network and reprograms conductance windows online.  This module
provides the decision half of that loop as two classic gradient-free
optimisers over the AQM programming ``theta = (target_delay_s,
max_deviation_s)``:

* :class:`SPSAPolicy` — simultaneous-perturbation stochastic
  approximation: perturb the programming up and down along one random
  direction, measure a traffic window under each, step along the
  estimated descent direction;
* :class:`CEMPolicy` — cross-entropy method: deploy a small sampled
  population per generation, refit the sampling distribution to the
  elite fraction.

Both optimise in *log* space (delay targets span decades; a
multiplicative step is scale-free), score windows against a
:class:`DelayEnvelope` (the paper's 20ms +/- 10ms objective by
default), and draw every random variate from the counter-based
SplitMix64 streams of :mod:`repro.simnet.workloads` — a variate is a
pure function of ``(seed, stream, index)``, so a learning sweep is
reproducible and invariant to traffic chunking and fabric shard
count (indices count *decisions*, never packets or chunks).

:class:`EnvelopeGate` is the safety interlock: an
:class:`~repro.control.loop.Actuator` wrapper that refuses candidate
reprograms while the hardware is degraded, probes every reprogrammed
pipeline against the robustness
:class:`~repro.robustness.degradation.ShadowOracle`, and rolls back
any write that lands outside the degradation envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.control.loop import Action, Actuator
from repro.simnet.workloads import uniforms

__all__ = [
    "CEMPolicy",
    "DelayEnvelope",
    "EnvelopeGate",
    "ProgramBounds",
    "SPSAPolicy",
    "STREAM_CEM_SAMPLE",
    "STREAM_SPSA_PERTURB",
]

#: Counter-based RNG streams (disjoint from the workload streams by
#: convention: scenarios use 1..12, the control plane 21+).
STREAM_SPSA_PERTURB = 21
STREAM_CEM_SAMPLE = 22


@dataclass(frozen=True)
class DelayEnvelope:
    """The latency objective a learned programming is scored against.

    Defaults to the paper's end-to-end objective: mean queueing delay
    of 20ms with +/- 10ms tolerance.
    """

    target_s: float = 0.020
    halfwidth_s: float = 0.010
    #: Score weight of the window's AQM drop fraction.
    drop_weight: float = 0.25
    #: A window advances a learning episode only when it shows real
    #: congestion: worst delay above the envelope target, or AQM
    #: drop activity above this floor (the over-dropping signature of
    #: a target programmed too low, whose delay sits *below* target).
    signal_drop_rate: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.halfwidth_s < self.target_s:
            raise ValueError(
                f"need 0 < halfwidth < target: "
                f"{self.halfwidth_s}, {self.target_s}")

    def within(self, delay_s: float) -> bool:
        """Is a measured delay inside the envelope?"""
        return abs(delay_s - self.target_s) <= self.halfwidth_s

    def has_signal(self, observation: dict) -> bool:
        """Does a window carry enough congestion to be scored?

        Benign traffic says nothing about a candidate programming;
        advancing an episode on it would random-walk the optimiser —
        and windows hovering just above the target are burst noise
        the AQM band never engages, so they are equally
        uninformative.  An episode therefore requires delay beyond
        the envelope's *upper edge* (programming too loose) or AQM
        drop activity (programming doing work — possibly too tight).
        A converged loop in mild traffic skips every window, leaving
        the live programming completely undithered until congestion
        returns.  Skipped windows consume no RNG draws, which is
        what keeps the sweep chunk-size invariant.
        """
        if observation.get("packets", 0) <= 0:
            return False
        return (observation.get("delay_s", 0.0)
                > self.target_s + self.halfwidth_s
                or observation.get("drop_rate", 0.0)
                >= self.signal_drop_rate)

    def score(self, observation: dict) -> float:
        """Lower is better; 0 when the window sits on the target.

        Log-ratio loss on delay (scale-free: 2x too slow scores like
        2x too fast) plus a small loss-rate penalty so the optimiser
        does not buy latency with drops.
        """
        delay = max(observation.get("delay_s", 0.0), 1e-9)
        return (abs(math.log(delay / self.target_s))
                + self.drop_weight * observation.get("drop_rate", 0.0))

    @property
    def edge_score(self) -> float:
        """The delay-only score of a window sitting on the envelope
        edge — the natural 'converged enough' threshold for a sweep."""
        return math.log((self.target_s + self.halfwidth_s)
                        / self.target_s)


@dataclass(frozen=True)
class ProgramBounds:
    """Clamp box for learned programmings, in physical units."""

    min_target_s: float = 0.002
    max_target_s: float = 0.200
    #: Band halfwidth as a fraction of the target.  The floor keeps a
    #: candidate out of the bang-bang regime: a drop-probability ramp
    #: much narrower than the target degenerates into a relay
    #: controller that limit-cycles the queue around the threshold
    #: (and a physical pCAM interval needs resolvable width anyway).
    min_rel_deviation: float = 0.25
    max_rel_deviation: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 < self.min_target_s < self.max_target_s:
            raise ValueError("need 0 < min_target < max_target")
        if not 0.0 < self.min_rel_deviation <= self.max_rel_deviation:
            raise ValueError("need 0 < min_rel <= max_rel deviation")

    def clamp_log(self, theta: np.ndarray) -> np.ndarray:
        """Clamp a log-space ``(ln target, ln rel_dev)`` vector."""
        lo = np.log([self.min_target_s, self.min_rel_deviation])
        hi = np.log([self.max_target_s, self.max_rel_deviation])
        return np.clip(theta, lo, hi)


def _programming_of(theta: np.ndarray) -> tuple[float, float]:
    """Physical ``(target_delay_s, max_deviation_s)`` of a log vector."""
    target = float(math.exp(theta[0]))
    return target, target * float(math.exp(theta[1]))


class _LearningPolicy:
    """Shared plumbing of the episode-driven learned policies.

    A *decision* with congestion signal closes one measurement
    episode: the window just sensed ran under the candidate deployed
    at the previous decision, so its score is attributed to that
    candidate before the next one is deployed.  Windows without
    signal neither score nor deploy — and draw nothing from the RNG
    stream, so the draw index is a pure function of the episode
    count.
    """

    def __init__(self, seed: int, theta0: np.ndarray,
                 envelope: DelayEnvelope,
                 bounds: ProgramBounds) -> None:
        self.seed = int(seed)
        self.envelope = envelope
        self.bounds = bounds
        self.theta = bounds.clamp_log(np.asarray(theta0, dtype=float))
        self.episodes = 0
        self.best_theta = self.theta.copy()
        self.best_score = math.inf

    @classmethod
    def for_aqm(cls, aqm, seed: int, **kwargs):
        """Seed the sweep from an AQM's current programming."""
        analog = getattr(aqm, "analog", aqm)
        rel = analog.max_deviation_s / analog.target_delay_s
        theta0 = np.log([analog.target_delay_s, rel])
        return cls(seed, theta0=theta0, **kwargs)

    @property
    def programming(self) -> tuple[float, float]:
        """The current centre ``(target_delay_s, max_deviation_s)``."""
        return _programming_of(self.theta)

    @property
    def best_programming(self) -> tuple[float, float]:
        """The best-scoring programming measured so far."""
        return _programming_of(self.best_theta)

    def _note(self, theta: np.ndarray, score: float) -> None:
        if score < self.best_score:
            self.best_score = score
            self.best_theta = theta.copy()

    def _uniform(self, index: int) -> float:
        return float(uniforms(self.seed, self.stream,
                              np.array([index], dtype=np.int64))[0])

    def _retarget(self, theta: np.ndarray) -> tuple[Action, ...]:
        # Deploy the projection onto the bounds: a perturbed or
        # freshly stepped candidate may sit outside them, and the
        # physical table only accepts deviation < target.
        programming = _programming_of(self.bounds.clamp_log(theta))
        return (Action("retarget", programming),)


class SPSAPolicy(_LearningPolicy):
    """Simultaneous-perturbation descent over the programming.

    One iteration spans four measured episodes deployed in the
    trend-cancelling order ``+, -, -, +``: the double difference
    ``(plus1 + plus2) - (minus1 - minus2 ...)`` — i.e. the mean plus
    score minus the mean minus score — is exactly zero for any score
    drift *linear in episode index*, which is what live traffic
    injects (a congestion peak ramping up or draining between two
    consecutive measurements dwarfs the candidate effect; a naive
    ``+, -`` difference measures the ramp, not the programming, and
    random-walks the sweep).  The perturbation direction ``delta``
    is Rademacher +/-1 per coordinate, drawn counter-based per
    iteration, so draw indices depend only on the iteration count.

    Gains never anneal to zero — traffic is non-stationary, so the
    optimiser must keep tracking — but they do adapt trust-region
    style: once an iteration's mean measured score falls inside the
    envelope (below :attr:`DelayEnvelope.edge_score`) the gain
    multiplier shrinks, so a converged sweep stops dithering the live
    programming by full-size perturbations; when the regime shifts
    and scores degrade, the gain expands back toward 1.  The
    adaptation depends only on measured scores at decision points,
    so it is as chunk-size invariant as the rest of the sweep.
    ``best`` is refreshed with each iteration's mean measured score,
    attributed to the centre the iteration perturbed around.

    Steps are *blocked* (classic blocking SPSA): if an iteration's
    mean score is worse than the previous iteration's by more than
    ``block_margin``, the step that produced the current centre is
    reverted instead of compounded — a single unlucky double
    difference during a ramp can otherwise fling the programming and
    leave the sweep relearning from scratch.  A blocked step clears
    the comparison baseline, so a genuine regime shift (every centre
    suddenly scores worse) costs exactly one reverted iteration
    before the sweep moves again.
    """

    stream = STREAM_SPSA_PERTURB

    #: Deployment order within one iteration (see class docstring).
    _SCHEDULE = ("plus", "minus", "minus", "plus")

    def __init__(self, seed: int, theta0: np.ndarray,
                 envelope: DelayEnvelope | None = None,
                 bounds: ProgramBounds | None = None, *,
                 step: float = 1.0, perturbation: float = 0.18,
                 gain_shrink: float = 0.6, gain_expand: float = 1.3,
                 gain_floor: float = 0.5,
                 expand_score: float | None = None,
                 block_margin: float = math.log(2.0)) -> None:
        super().__init__(seed, theta0, envelope or DelayEnvelope(),
                         bounds or ProgramBounds())
        self.step = step
        self.perturbation = perturbation
        self.gain_shrink = gain_shrink
        self.gain_expand = gain_expand
        self.gain_floor = gain_floor
        self.block_margin = block_margin
        #: Hysteresis: shrink below the envelope edge, expand only
        #: beyond twice it.  Congestion-onset transients under a
        #: well-converged programming land between the two and leave
        #: the gain alone — only a genuinely stale programming (delay
        #: parked far outside the envelope) re-opens the trust region.
        self.expand_score = (expand_score if expand_score is not None
                             else self.envelope.edge_score
                             + math.log(2.0))
        self.gain = 1.0
        self.iteration = 0
        #: Number of iterations whose step was reverted by blocking.
        self.blocked = 0
        #: Previous iteration's (centre, mean score) — the blocking
        #: baseline; None right after a block or before iteration 1.
        self._prev: tuple[np.ndarray, float] | None = None
        self._delta: np.ndarray | None = None
        #: Sign currently deployed ("plus"/"minus"); None until the
        #: first deployment — the first signalful window ran under
        #: the unperturbed starting programming.
        self._deployed: str | None = None
        self._scores: list[tuple[str, float]] = []

    def _draw_delta(self) -> np.ndarray:
        base = 2 * self.iteration
        return np.array([1.0 if self._uniform(base + i) < 0.5 else -1.0
                         for i in range(2)])

    def _close_iteration(self) -> None:
        plus = [s for label, s in self._scores if label == "plus"]
        minus = [s for label, s in self._scores if label == "minus"]
        # Clip the scalar difference quotient to +/-1: one iteration
        # never moves theta further than `step * gain` in log space,
        # however violent the score difference (a candidate crossing
        # into a drop storm can make it arbitrarily large).
        scalar = ((sum(plus) / len(plus) - sum(minus) / len(minus))
                  / (2.0 * self.perturbation * self.gain))
        scalar = max(-1.0, min(1.0, scalar))
        mean_score = (sum(s for _, s in self._scores)
                      / len(self._scores))
        self._note(self.theta, mean_score)
        if (self._prev is not None
                and mean_score > self._prev[1] + self.block_margin):
            # Blocking: the step into this centre made things
            # materially worse — revert it.  Clearing the baseline
            # lets the next iteration step unconditionally, so a
            # regime shift cannot wedge the sweep in place.
            self.theta = self._prev[0]
            self._prev = None
            self.blocked += 1
        else:
            self._prev = (self.theta.copy(), mean_score)
            self.theta = self.bounds.clamp_log(
                self.theta
                - self.step * self.gain * scalar * self._delta)
        if mean_score < self.envelope.edge_score:
            self.gain = max(self.gain * self.gain_shrink,
                            self.gain_floor)
        elif mean_score > self.expand_score:
            self.gain = min(self.gain * self.gain_expand, 1.0)
        self.iteration += 1
        self._delta = None
        self._scores = []

    def decide(self, now: float, observation: dict) -> tuple[Action, ...]:
        if not self.envelope.has_signal(observation):
            return ()
        self.episodes += 1
        if self._deployed is not None:
            # The window just sensed ran under the candidate deployed
            # at the previous signalful decision.
            self._scores.append(
                (self._deployed, self.envelope.score(observation)))
            if len(self._scores) == len(self._SCHEDULE):
                self._close_iteration()
        if self._delta is None:
            self._delta = self._draw_delta()
        self._deployed = self._SCHEDULE[len(self._scores)]
        sign = 1.0 if self._deployed == "plus" else -1.0
        return self._retarget(
            self.theta
            + sign * self.perturbation * self.gain * self._delta)


class CEMPolicy(_LearningPolicy):
    """Cross-entropy search over the programming distribution.

    Each generation deploys ``population`` candidates sampled from a
    diagonal Gaussian in log space (one measured episode each), then
    refits mean and spread to the ``elite`` best and deploys the new
    mean.  Sampling uses Box-Muller over counter-based uniforms
    indexed by ``(generation, member, coordinate)``.
    """

    stream = STREAM_CEM_SAMPLE

    def __init__(self, seed: int, theta0: np.ndarray,
                 envelope: DelayEnvelope | None = None,
                 bounds: ProgramBounds | None = None, *,
                 population: int = 6, elite: int = 2,
                 spread: float = 0.50, min_spread: float = 0.15) -> None:
        if not 1 <= elite <= population:
            raise ValueError(
                f"need 1 <= elite <= population: {elite}, {population}")
        super().__init__(seed, theta0, envelope or DelayEnvelope(),
                         bounds or ProgramBounds())
        self.population = population
        self.elite = elite
        self.min_spread = min_spread
        self.generation = 0
        self.sigma = np.full(2, float(spread))
        self._member = 0
        self._candidates: list[np.ndarray] = []
        self._scores: list[float] = []
        self._deployed: np.ndarray | None = None

    def _normal(self, index: int) -> float:
        u1 = max(self._uniform(2 * index), 2.0 ** -53)
        u2 = self._uniform(2 * index + 1)
        return math.sqrt(-2.0 * math.log(u1)) \
            * math.cos(2.0 * math.pi * u2)

    def _sample(self, member: int) -> np.ndarray:
        base = (self.generation * self.population + member) * 2
        noise = np.array([self._normal(base), self._normal(base + 1)])
        return self.bounds.clamp_log(self.theta + self.sigma * noise)

    def decide(self, now: float, observation: dict) -> tuple[Action, ...]:
        if not self.envelope.has_signal(observation):
            return ()
        score = self.envelope.score(observation)
        self.episodes += 1
        if self._deployed is not None:
            self._note(self._deployed, score)
            self._candidates.append(self._deployed)
            self._scores.append(score)
        if len(self._scores) >= self.population:
            order = np.argsort(self._scores, kind="stable")[:self.elite]
            elites = np.stack([self._candidates[i] for i in order])
            self.theta = self.bounds.clamp_log(elites.mean(axis=0))
            self.sigma = np.maximum(elites.std(axis=0), self.min_spread)
            self.generation += 1
            self._member = 0
            self._candidates = []
            self._scores = []
        candidate = self._sample(self._member)
        self._member += 1
        self._deployed = candidate
        return self._retarget(candidate)


class EnvelopeGate:
    """Actuator interlock: no learned reprogram escapes the envelope.

    Wraps any :class:`~repro.control.loop.Actuator` and supervises a
    set of analog AQMs (degradation wrappers are unwrapped for
    probing but consulted for their ``degraded`` flag):

    1. **pre-check** — a ``retarget`` is refused outright while any
       supervised table serves from its digital fallback, or while
       the live pipelines already deviate from their shadow beyond
       ``pdp_envelope`` (reprogramming drifted hardware would learn
       the fault, not the traffic);
    2. **apply** — the inner actuator commits;
    3. **post-probe** — every pipeline is probed against a fresh
       shadow oracle built from the *new* intent; a write that lands
       outside the envelope is rolled back to the pre-apply
       programming and counted in :attr:`violations`.

    Probes call ``pipeline.evaluate_batch`` directly, bypassing the
    AQM's ``output_monitor`` hook, so gating never perturbs the
    degradation wrapper's own check/trip accounting.
    """

    def __init__(self, actuator: Actuator, aqms, *,
                 pdp_envelope: float = 0.10,
                 probe_points: int = 17) -> None:
        self.inner = actuator
        self.aqms = list(aqms)
        self.pdp_envelope = pdp_envelope
        self.probe_points = probe_points
        self.checks = 0
        self.rejections = 0
        self.violations = 0
        self._oracles: dict[int, object] = {}

    # -- probing -------------------------------------------------------
    def _oracle_for(self, pipeline):
        # Deferred import: robustness sits below the control layer but
        # pulls in dataplane telemetry, which must not load while the
        # control package itself is still initialising.
        from repro.robustness.degradation import ShadowOracle
        oracle = self._oracles.get(id(pipeline))
        if oracle is None:
            oracle = self._oracles[id(pipeline)] = ShadowOracle(pipeline)
        return oracle

    def _probe_features(self, pipeline) -> dict[str, np.ndarray]:
        features = {}
        for name in pipeline.stage_names:
            stage = pipeline.stage(name)
            params = getattr(stage, "intended_params", stage.params)
            features[name] = np.linspace(params.m1, params.m4,
                                         self.probe_points)
        return features

    def deviation(self, analog_aqm) -> float:
        """Worst |analog - shadow| PDP over the probe grid."""
        pipeline = analog_aqm.pipeline
        features = self._probe_features(pipeline)
        outputs = pipeline.evaluate_batch(features)
        return self._oracle_for(pipeline).deviation(features, outputs)

    def healthy(self) -> bool:
        """All supervised tables analog and within the envelope?"""
        self.checks += 1
        for aqm in self.aqms:
            if getattr(aqm, "degraded", False):
                return False
            analog = getattr(aqm, "analog", aqm)
            if self.deviation(analog) > self.pdp_envelope:
                return False
        return True

    # -- the Actuator surface ------------------------------------------
    def apply(self, action: Action) -> bool:
        if action.kind != "retarget":
            # Repairs (reprogram_intended) and table ops pass through:
            # the gate protects *candidate* programmings only.
            return self.inner.apply(action)
        if not self.healthy():
            self.rejections += 1
            return False
        rollback = [(getattr(aqm, "analog", aqm).target_delay_s,
                     getattr(aqm, "analog", aqm).max_deviation_s)
                    for aqm in self.aqms]
        if not self.inner.apply(action):
            return False
        for aqm, (target, deviation) in zip(self.aqms, rollback):
            analog = getattr(aqm, "analog", aqm)
            if self.deviation(analog) > self.pdp_envelope:
                self.violations += 1
                self.inner.apply(Action("retarget", (target, deviation)))
                return False
        return True
