"""Intent-driven closed-loop control of the analog AQM.

The cognitive network controller's run-time half: an operator states
an *intent* — a latency bound and an acceptable loss budget — and the
loop keeps retargeting the pCAM-AQM to satisfy both.  When losses
exceed the budget while latency has slack, the loop trades latency
for loss by raising the AQM's delay target (within the intent bound);
when latency approaches the bound it tightens back.

This is the former ``repro.dataplane.control_loop``, ported onto the
shared :class:`~repro.control.loop.ControlLoop` abstraction:
:class:`IntentPolicy` is the decision rule, a
:class:`~repro.control.loop.CounterSensor` is the observation window,
and an :class:`~repro.control.loop.AQMActuator` is the ``update_pCAM``
path.  :class:`IntentController` keeps the original facade —
``observe()``/``for_port()``/``observed_drop_rate`` — byte-identical
(pinned by ``tests/test_control_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.control.loop import (
    Action,
    AQMActuator,
    ControlLoop,
    CounterSensor,
)
from repro.netfunc.aqm.pcam_aqm import PCAMAQM

__all__ = ["Intent", "IntentController", "IntentPolicy"]


@dataclass(frozen=True)
class Intent:
    """An operator-level objective for one managed queue."""

    #: Hard upper bound on the delay target the loop may set [s].
    max_delay_s: float
    #: Acceptable AQM loss rate before latency is traded away.
    max_drop_rate: float
    #: Lowest delay target worth pursuing [s].
    min_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if not 0.0 < self.min_delay_s < self.max_delay_s:
            raise ValueError(
                f"need 0 < min_delay < max_delay: "
                f"{self.min_delay_s}, {self.max_delay_s}")
        if not 0.0 < self.max_drop_rate < 1.0:
            raise ValueError(
                f"drop-rate budget must be in (0, 1): "
                f"{self.max_drop_rate!r}")


class IntentPolicy:
    """The intent decision rule: trade latency for loss, bounded.

    Reads the managed AQM's current target and emits at most one
    ``retarget`` action per decision.  The rule is unchanged from the
    pre-refactor ``IntentController._decide``.
    """

    #: Multiplicative step applied to the delay target per decision.
    STEP = 1.3

    def __init__(self, aqm: PCAMAQM, intent: Intent) -> None:
        self.aqm = aqm
        self.intent = intent

    def decide(self, now: float,
               observation: dict) -> Iterable[Action]:
        drop_rate = observation["drop_rate"]
        target = self.aqm.target_delay_s
        if (drop_rate > self.intent.max_drop_rate
                and target < self.intent.max_delay_s):
            # Too lossy, latency has slack: relax the delay target.
            new_target = min(self.intent.max_delay_s,
                             target * self.STEP)
        elif (drop_rate < 0.5 * self.intent.max_drop_rate
                and target > self.intent.min_delay_s):
            # Loss budget underused: chase lower latency.
            new_target = max(self.intent.min_delay_s,
                             target / self.STEP)
        else:
            new_target = target
        if new_target != target:
            return (Action("retarget", (new_target,)),)
        return ()


class IntentController:
    """Periodic retargeting of one PCAMAQM against an intent.

    Feed it observations with :meth:`observe` (typically once per
    telemetry poll); it retargets the AQM when the intent is violated
    in either direction.  Internally this is a
    :class:`~repro.control.loop.ControlLoop`; the facade preserves
    the historical surface exactly.
    """

    #: Multiplicative step applied to the delay target per decision.
    STEP = IntentPolicy.STEP

    def __init__(self, aqm: PCAMAQM, intent: Intent,
                 min_interval_s: float = 1.0) -> None:
        self.aqm = aqm
        self.intent = intent
        self._sensor = CounterSensor()
        self.loop = ControlLoop(self._sensor, IntentPolicy(aqm, intent),
                                AQMActuator(aqm),
                                min_interval_s=min_interval_s)

    @classmethod
    def for_port(cls, processor, port: int, intent: Intent,
                 min_interval_s: float = 1.0) -> "IntentController":
        """Manage one egress port of an assembled switch.

        ``processor`` is an
        :class:`~repro.dataplane.pipeline.AnalogPacketProcessor`
        (e.g. from :func:`~repro.dataplane.switch.build_switch`); a
        degradation wrapper around the port's AQM is unwrapped so the
        loop retargets the analog table itself.
        """
        aqm = processor.traffic_manager.aqm(port)
        analog = getattr(aqm, "analog", aqm)
        return cls(analog, intent, min_interval_s)

    @property
    def min_interval_s(self) -> float:
        return self.loop.min_interval_s

    @property
    def retargets(self) -> int:
        """Retarget actuations applied so far."""
        return self.loop.applied

    @property
    def observed_drop_rate(self) -> float:
        """Drop fraction over the current observation window."""
        return self._sensor.drop_rate

    def observe(self, now: float, packets: int, drops: int) -> None:
        """Feed cumulative-interval counters and maybe retarget.

        ``packets``/``drops`` are the counts since the previous call
        (the caller diffs its counters).
        """
        self._sensor.feed(packets, drops)
        self.loop.step(now)
