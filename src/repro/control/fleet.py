"""Fleet-scale closed-loop learning over a sharded fabric.

The fabric's programming vocabulary is fleet-wide by construction —
:class:`~repro.fabric.controller.FabricController` stages an op on
*every* shard and flips them under the chunk-dispatch lock — so a
learned candidate is always deployed uniformly: no chunk can observe
shard 0 running one programming and shard 1 another.  This module
closes the learning loop over that primitive:

* :class:`FleetSensor` windows the fabric's ``poll_metrics()``
  document into one observation per decision, keeping the per-shard
  rows (measurement runs per shard) and aggregating worst-case: the
  fleet is scored on its most congested slice;
* :class:`FleetActuator` turns each applied action into one complete
  two-phase commit;
* :class:`FleetLearningController` wires a learned policy
  (:class:`~repro.control.learning.SPSAPolicy` or
  :class:`~repro.control.learning.CEMPolicy`) through both, with the
  :class:`~repro.control.learning.EnvelopeGate` interlock when the
  shard hardware is reachable, and :meth:`finalise` shares the
  winning programming fleet-wide through one final commit.

The default delay signal is *backlog-implied* (worst per-port queue
divided by the port's service rate) rather than the per-shard delay
EWMAs: a fabric port's backlog is the sum of its shards' backlogs —
a partition invariant — while per-shard EWMAs depend on how the RSS
steering split the flows.  Learning from the invariant signal is
what makes the learned programming independent of the shard count
(pinned by ``tests/test_control_determinism.py``).
"""

from __future__ import annotations

from repro.control.loop import Action, ControlLoop
from repro.control.learning import EnvelopeGate

__all__ = ["FleetActuator", "FleetLearningController", "FleetSensor"]


class FleetSensor:
    """Windows a fabric metrics poll into per-decision observations.

    ``controller`` is anything exposing the fabric ``poll_metrics()``
    document (a :class:`~repro.fabric.controller.FabricController` or
    the fabric itself).  ``drain_pps`` — the per-port egress service
    rate — selects the backlog-implied delay signal; without it the
    sensor falls back to the worst per-shard delay EWMA.
    """

    def __init__(self, controller, *, drain_pps: float | None = None
                 ) -> None:
        self._controller = controller
        self._drain_pps = drain_pps
        self._last_processed = 0
        self._last_drops = 0

    @staticmethod
    def _row_drops(row: dict) -> int:
        return int(row.get("aqm_drops", 0))

    def _implied_delay_s(self, metrics: dict) -> float:
        gauges = metrics["telemetry"]["gauges"]
        backlogs = [value for name, value in gauges.items()
                    if name.endswith(".backlog")]
        worst = max(backlogs, default=0.0)
        return worst / self._drain_pps

    def sense(self, now: float) -> dict:
        metrics = self._controller.poll_metrics()
        rows = metrics["shards"]
        processed = metrics["processed"]
        drops = sum(self._row_drops(row) for row in rows)
        window_packets = processed - self._last_processed
        window_drops = drops - self._last_drops
        self._last_processed = processed
        self._last_drops = drops
        if self._drain_pps is not None:
            delay_s = self._implied_delay_s(metrics)
        else:
            delay_s = max((row.get("delay_ewma_s", 0.0) for row in rows),
                          default=0.0)
        return {
            "packets": window_packets,
            "drops": window_drops,
            "drop_rate": (window_drops / window_packets
                          if window_packets else 0.0),
            "delay_s": delay_s,
            "backlog": sum(row.get("backlog", 0) for row in rows),
            "generation": metrics["generation"],
            "shards": rows,
        }


class FleetActuator:
    """One applied action == one two-phase fleet commit."""

    def __init__(self, fabric_controller) -> None:
        self._controller = fabric_controller
        self.commits = 0

    @property
    def generation(self) -> int:
        return self._controller.generation

    def apply(self, action: Action) -> bool:
        self._controller.stage(action.kind, *action.args)
        self._controller.commit()
        self.commits += 1
        return True


class FleetLearningController:
    """A learned policy closed over a whole fabric.

    Drive :meth:`step` on the sim clock (e.g. once per admitted
    slice); every candidate the policy deploys goes through one
    gated, two-phase fleet commit.  When the sweep is done,
    :meth:`finalise` deploys the best-scoring programming the same
    way and returns it.

    ``gate_aqms`` — the shard AQMs (reachable in in-process fabrics)
    — arms the :class:`~repro.control.learning.EnvelopeGate`
    interlock: candidates are refused while any table is degraded and
    rolled back when a write lands outside the PDP envelope.
    """

    def __init__(self, fabric_controller, policy, *,
                 min_interval_s: float = 0.05,
                 drain_pps: float | None = None,
                 gate_aqms=None, pdp_envelope: float = 0.10) -> None:
        self.policy = policy
        self.sensor = FleetSensor(fabric_controller,
                                  drain_pps=drain_pps)
        self.actuator = FleetActuator(fabric_controller)
        self.gate: EnvelopeGate | None = None
        actuator = self.actuator
        if gate_aqms is not None:
            self.gate = EnvelopeGate(actuator, gate_aqms,
                                     pdp_envelope=pdp_envelope)
            actuator = self.gate
        self.loop = ControlLoop(self.sensor, policy, actuator,
                                min_interval_s=min_interval_s)

    def step(self, now: float) -> tuple[Action, ...]:
        return self.loop.step(now)

    @property
    def commits(self) -> int:
        return self.actuator.commits

    @property
    def programming(self) -> tuple[float, float]:
        return self.policy.programming

    @property
    def best_programming(self) -> tuple[float, float]:
        return self.policy.best_programming

    def finalise(self) -> tuple[float, float]:
        """Share the winning programming fleet-wide, transactionally.

        One two-phase commit (gated like any candidate): every shard
        flips to the best-scoring programming at the same generation.
        Returns the shared ``(target_delay_s, max_deviation_s)``.
        """
        target, deviation = self.policy.best_programming
        actuator = self.gate if self.gate is not None else self.actuator
        actuator.apply(Action("retarget", (target, deviation)))
        return target, deviation
