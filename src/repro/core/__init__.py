"""The paper's primary contribution: the pCAM analog match-action process.

Layout
------
``pcam_cell``      the eight-parameter five-region transfer function
``device_cell``    the same cell realised on simulated memristors
``pcam_pipeline``  series (product) composition — Figure 4b
``pcam_array``     stored-policy memory searched in parallel — Figure 4a
``match_action``   read / output / action tables — ``table analogAQM``
``programming``    prog_pCAM / update_pCAM / pipeline and table builders
``compiler``       precision-aware digital/analog placement — RQ2
``calibration``    feature <-> voltage mapping over the chip dataset
"""

from repro.core.calibration import (
    FeatureScaler,
    analog_read_energy_j,
    noise_band,
    scale_params,
)
from repro.core.compiler import (
    AnalogErrorBudget,
    CognitiveCompiler,
    CompilationError,
    Domain,
    FunctionKind,
    NetworkFunctionSpec,
    Placement,
    PrecisionClass,
)
from repro.core.device_cell import DevicePCAMCell, EvaluationResult
from repro.core.dsl import DSLError, parse_program, parse_table
from repro.core.hardware_array import (
    CrossbarPCAMArray,
    HardwareSearchResult,
)
from repro.core.match_action import (
    AnalogMatchActionTable,
    StoredActionMemory,
    TableResult,
)
from repro.core.pcam_array import (
    ArraySearchResult,
    BatchSearchResult,
    PCAMArray,
    PCAMWord,
)
from repro.core.pcam_cell import MatchRegion, PCAMCell, PCAMParams, prog_pcam
from repro.core.pcam_pipeline import (
    BATCH_COMPOSITIONS,
    COMPOSITIONS,
    MissingFeatureError,
    PCAMPipeline,
    PipelineFeatureError,
    StageOutput,
    UnknownFeatureError,
)
from repro.core.programming import (
    PipelineProgram,
    TableProgram,
    update_pcam,
)

__all__ = [
    "AnalogErrorBudget",
    "AnalogMatchActionTable",
    "ArraySearchResult",
    "BATCH_COMPOSITIONS",
    "BatchSearchResult",
    "COMPOSITIONS",
    "CognitiveCompiler",
    "CompilationError",
    "CrossbarPCAMArray",
    "DSLError",
    "DevicePCAMCell",
    "HardwareSearchResult",
    "Domain",
    "EvaluationResult",
    "FeatureScaler",
    "FunctionKind",
    "MatchRegion",
    "MissingFeatureError",
    "NetworkFunctionSpec",
    "PCAMArray",
    "PCAMCell",
    "PCAMParams",
    "PCAMPipeline",
    "PCAMWord",
    "PipelineFeatureError",
    "PipelineProgram",
    "Placement",
    "PrecisionClass",
    "StageOutput",
    "UnknownFeatureError",
    "StoredActionMemory",
    "TableProgram",
    "TableResult",
    "analog_read_energy_j",
    "noise_band",
    "parse_program",
    "parse_table",
    "prog_pcam",
    "scale_params",
    "update_pcam",
]
