"""Programming abstractions for analog network functions (paper Sec. 5).

The paper argues analog hardware needs a different programming model:
the programmer specifies the hardware transfer function *from the
application layer* rather than leaving resource mapping entirely to a
compiler.  The abstractions here mirror the paper's pseudocode
one-to-one:

=====================  =================================================
Paper                  This module
=====================  =================================================
``prog_pCAM(...)``     :func:`repro.core.pcam_cell.prog_pcam`
``pCAM(input)``        :class:`repro.core.pcam_cell.PCAMCell`
``AQM() { pipeline }`` :class:`PipelineProgram` -> ``PCAMPipeline``
``table analogAQM``    :class:`TableProgram` -> ``AnalogMatchActionTable``
``update_pCAM(...)``   :func:`update_pcam`
=====================  =================================================
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.match_action import AnalogMatchActionTable, StoredActionMemory
from repro.core.pcam_cell import PCAMParams, prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline

__all__ = [
    "PipelineProgram",
    "TableProgram",
    "prog_pcam",
    "update_pcam",
]


def update_pcam(target: PCAMPipeline | AnalogMatchActionTable,
                stage: str, params: PCAMParams) -> None:
    """The paper's ``update_pCAM(id, parameter[1:8])`` action.

    Reprograms one named stage of a pipeline (or of a table's
    pipeline) with a fresh eight-parameter set.
    """
    pipeline = (target.pipeline
                if isinstance(target, AnalogMatchActionTable) else target)
    pipeline.program_stage(stage, params)


class PipelineProgram:
    """Fluent builder for the paper's ``AQM() { pipeline { ... } }``.

    >>> program = (PipelineProgram()
    ...            .stage("sojourn_time", prog_pcam(0.0, 0.5, 1.5, 2.0))
    ...            .stage("d_dt_sojourn", prog_pcam(-1.0, -0.5, 0.5, 1.0)))
    >>> pipeline = program.build()
    """

    def __init__(self, composition: str = "product") -> None:
        self._stages: dict[str, PCAMParams] = {}
        self._composition = composition

    def stage(self, name: str, params: PCAMParams) -> "PipelineProgram":
        """Append a named pCAM stage; order of calls is series order."""
        if not name:
            raise ValueError("stage needs a name")
        if name in self._stages:
            raise ValueError(f"duplicate stage {name!r}")
        self._stages[name] = params
        return self

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Declared stage names, in series order."""
        return tuple(self._stages)

    def build(self, *, device_backed: bool = False,
              **device_kwargs: object) -> PCAMPipeline:
        """Materialise the pipeline (ideal or device-realised)."""
        if not self._stages:
            raise ValueError("program has no stages")
        return PCAMPipeline.from_params(
            self._stages, composition=self._composition,
            device_backed=device_backed, **device_kwargs)


class TableProgram:
    """Fluent builder for ``table <name> { read / output / action }``.

    The ``read`` section is implied by the output program's stages —
    exactly as in the paper, where the table reads the same features
    the ``AQM()`` pipeline consumes.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("table needs a name")
        self._name = name
        self._output: PipelineProgram | None = None
        self._action: Callable | None = None
        self._memory: StoredActionMemory | None = None

    def output(self, program: PipelineProgram) -> "TableProgram":
        """Set the ``output { ... }`` section."""
        self._output = program
        return self

    def action(self, action: Callable[[AnalogMatchActionTable, float,
                                       Mapping[str, float]], str | None]
               ) -> "TableProgram":
        """Set the ``action { ... }`` section."""
        self._action = action
        return self

    def stored_actions(self, memory: StoredActionMemory) -> "TableProgram":
        """Attach memristor-based action storage (indirect output use)."""
        self._memory = memory
        return self

    def build(self, *, device_backed: bool = False,
              **device_kwargs: object) -> AnalogMatchActionTable:
        """Materialise the match-action table."""
        if self._output is None:
            raise ValueError(f"table {self._name!r} has no output program")
        pipeline = self._output.build(device_backed=device_backed,
                                      **device_kwargs)
        return AnalogMatchActionTable(
            name=self._name,
            reads=self._output.stage_names,
            pipeline=pipeline,
            action=self._action,
            action_memory=self._memory)
