"""pCAM match-action memory: words of cells, rows of words.

Where :mod:`repro.core.pcam_pipeline` chains *stages in series* on one
feature vector (Figure 4b), the array is the *memory* view (Figure 4a
left): each stored word holds one policy as a set of per-field cells,
and a search evaluates the query against **every** stored word in one
cycle — like a TCAM, but returning a match *probability* per word
instead of a bit.

This is what lets cognitive functions "identify the closely matching
stored policies for an incoming query with zero [exact] matches"
(RQ1): the best-effort answer is the word with the highest analog
match probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams

__all__ = ["PCAMWord", "PCAMArray", "ArraySearchResult",
           "BatchSearchResult"]


class PCAMWord:
    """One stored policy: a named tuple of pCAM cells, one per field."""

    def __init__(self, cells: Mapping[str, PCAMCell]) -> None:
        if not cells:
            raise ValueError("a word needs at least one cell")
        self._cells = dict(cells)

    @classmethod
    def from_params(cls, params: Mapping[str, PCAMParams]) -> "PCAMWord":
        """Build a word from per-field cell parameters."""
        return cls({name: PCAMCell(p) for name, p in params.items()})

    @property
    def fields(self) -> tuple[str, ...]:
        """The word's field names."""
        return tuple(self._cells)

    @property
    def cells(self) -> Mapping[str, PCAMCell]:
        """Read-only view of the word's cells, keyed by field.

        This is the fault-injection surface: robustness tooling walks
        it to attach :class:`~repro.robustness.models.CellFault`
        instances to individual cells.
        """
        return dict(self._cells)

    def clone_ideal(self) -> "PCAMWord":
        """A healthy copy programmed with each cell's intended params."""
        return PCAMWord({field: PCAMCell(cell.intended_params)
                         for field, cell in self._cells.items()})

    def cell(self, field: str) -> PCAMCell:
        """The cell storing one named field."""
        try:
            return self._cells[field]
        except KeyError:
            raise KeyError(
                f"no field {field!r}; fields: {self.fields}") from None

    def match(self, query: Mapping[str, float]) -> float:
        """Word match probability: product over the per-field cells."""
        batch = {field: np.array([float(query[field])])
                 for field in self._cells if field in query}
        return float(self.match_batch(batch)[0])

    def match_batch(self, queries: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised match: per-field arrays -> (batch,) probabilities.

        ``queries`` maps each field to an array of per-query values;
        every field is pushed through its cell's vectorised transfer
        function and the per-field responses are multiplied, exactly
        as :meth:`match` does one query at a time.
        """
        probability: np.ndarray | None = None
        for field, cell in self._cells.items():
            if field not in queries:
                raise KeyError(f"query missing field {field!r}")
            values = np.atleast_1d(np.asarray(queries[field], dtype=float))
            response = cell.response_array(values)
            probability = (response if probability is None
                           else probability * response)
        assert probability is not None
        return probability

    def deterministic_match(self, query: Mapping[str, float]) -> bool:
        """TCAM-compatible view: all fields inside their [M2, M3]."""
        return all(cell.deterministic_match(float(query[field])) is True
                   for field, cell in self._cells.items())

    def __len__(self) -> int:
        return len(self._cells)


@dataclass(frozen=True)
class ArraySearchResult:
    """Outcome of searching a query against all stored words."""

    probabilities: np.ndarray
    best_index: int | None
    best_probability: float
    deterministic_indices: tuple[int, ...]
    energy_j: float
    latency_s: float

    @property
    def hit(self) -> bool:
        """True when at least one word matched deterministically."""
        return bool(self.deterministic_indices)


@dataclass(frozen=True)
class BatchSearchResult:
    """Outcome of searching a batch of queries against all words.

    ``probabilities`` has shape (n_queries, n_words); ``best_indices``
    is -1 for queries searched against an empty array.
    """

    probabilities: np.ndarray
    best_indices: np.ndarray
    best_probabilities: np.ndarray
    deterministic_mask: np.ndarray
    energy_j: float
    latency_s: float

    def __len__(self) -> int:
        return int(self.probabilities.shape[0])


class PCAMArray:
    """A bank of stored pCAM words searched in parallel.

    Parameters
    ----------
    fields:
        Ordered field names every stored word must provide.
    match_threshold:
        Probability at or above which a word counts as a deterministic
        match for the digital-compatible output.
    energy_per_cell_j:
        Read energy charged per cell per search.  Defaults to the
        dataset's low-energy analog read (0.01 fJ); swap in a value
        measured from :func:`repro.device.energy.energy_statistics`
        for a calibrated run.
    """

    def __init__(self, fields: Sequence[str], *,
                 match_threshold: float = 0.99,
                 energy_per_cell_j: float = 1e-17,
                 search_latency_s: float = 1e-9) -> None:
        if not fields:
            raise ValueError("array needs at least one field")
        if not 0.0 < match_threshold <= 1.0:
            raise ValueError(
                f"match threshold must be in (0, 1]: {match_threshold!r}")
        self.fields = tuple(fields)
        self.match_threshold = match_threshold
        self.energy_per_cell_j = energy_per_cell_j
        self.search_latency_s = search_latency_s
        self._words: list[PCAMWord] = []
        self._searches = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def searches(self) -> int:
        """Number of searches performed."""
        return self._searches

    def add(self, word: PCAMWord | Mapping[str, PCAMParams]) -> int:
        """Store a policy word; returns its row index."""
        if not isinstance(word, PCAMWord):
            word = PCAMWord.from_params(word)
        if set(word.fields) != set(self.fields):
            raise ValueError(
                f"word fields {word.fields} != array fields {self.fields}")
        self._words.append(word)
        return len(self._words) - 1

    def word(self, index: int) -> PCAMWord:
        """One stored word by row index."""
        if not 0 <= index < len(self._words):
            raise IndexError(f"word {index} out of range")
        return self._words[index]

    @property
    def words(self) -> tuple[PCAMWord, ...]:
        """All stored words in row order (fault-injection surface)."""
        return tuple(self._words)

    def clone_ideal(self) -> "PCAMArray":
        """A healthy copy of the array: same geometry and thresholds,
        every cell reprogrammed with its intended parameters.

        The differential oracle searches the clone alongside the
        (possibly faulted) original to measure match-probability error.
        """
        clone = PCAMArray(self.fields,
                          match_threshold=self.match_threshold,
                          energy_per_cell_j=self.energy_per_cell_j,
                          search_latency_s=self.search_latency_s)
        for word in self._words:
            clone.add(word.clone_ideal())
        return clone

    def remove(self, index: int) -> None:
        """Delete a stored word by row index."""
        if not 0 <= index < len(self._words):
            raise IndexError(f"word {index} out of range")
        del self._words[index]

    def search(self, query: Mapping[str, float]) -> ArraySearchResult:
        """Match the query against every stored word in one cycle."""
        if not self._words:
            return ArraySearchResult(
                probabilities=np.zeros(0), best_index=None,
                best_probability=0.0, deterministic_indices=(),
                energy_j=0.0, latency_s=self.search_latency_s)
        batch = {field: np.array([float(query[field])])
                 for field in self.fields if field in query}
        result = self.search_batch(batch)
        probabilities = result.probabilities[0]
        best = int(result.best_indices[0])
        deterministic = tuple(
            int(i) for i in np.flatnonzero(result.deterministic_mask[0]))
        return ArraySearchResult(
            probabilities=probabilities,
            best_index=best,
            best_probability=float(result.best_probabilities[0]),
            deterministic_indices=deterministic,
            energy_j=result.energy_j,
            latency_s=self.search_latency_s)

    def match_batch(self, queries: Mapping[str, np.ndarray]) -> np.ndarray:
        """Match probabilities of a query batch against every word.

        Returns a (n_queries, n_words) matrix: row ``i`` holds query
        ``i``'s match probability against each stored word — the
        software analogue of applying a burst of search voltages to
        the array's match lines.
        """
        batch_size = self._batch_length(queries)
        if not self._words:
            return np.zeros((batch_size, 0))
        return np.stack([word.match_batch(queries)
                         for word in self._words], axis=1)

    def search_batch(self, queries: Mapping[str, np.ndarray]
                     ) -> BatchSearchResult:
        """Search a whole query batch; one cycle's worth per query."""
        probabilities = self.match_batch(queries)
        n_queries, n_words = probabilities.shape
        if n_words:
            best = np.argmax(probabilities, axis=1)
            best_probabilities = probabilities[
                np.arange(n_queries), best]
        else:
            best = np.full(n_queries, -1, dtype=int)
            best_probabilities = np.zeros(n_queries)
        cells = sum(len(word) for word in self._words)
        self._searches += n_queries
        return BatchSearchResult(
            probabilities=probabilities,
            best_indices=best,
            best_probabilities=best_probabilities,
            deterministic_mask=probabilities >= self.match_threshold,
            energy_j=n_queries * cells * self.energy_per_cell_j,
            latency_s=self.search_latency_s)

    def _batch_length(self, queries: Mapping[str, np.ndarray]) -> int:
        missing = [field for field in self.fields if field not in queries]
        if missing:
            raise KeyError(f"query missing field {missing[0]!r}")
        return max((np.atleast_1d(np.asarray(queries[field])).shape[0]
                    for field in self.fields), default=1)
