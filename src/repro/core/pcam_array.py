"""pCAM match-action memory: words of cells, rows of words.

Where :mod:`repro.core.pcam_pipeline` chains *stages in series* on one
feature vector (Figure 4b), the array is the *memory* view (Figure 4a
left): each stored word holds one policy as a set of per-field cells,
and a search evaluates the query against **every** stored word in one
cycle — like a TCAM, but returning a match *probability* per word
instead of a bit.

This is what lets cognitive functions "identify the closely matching
stored policies for an incoming query with zero [exact] matches"
(RQ1): the best-effort answer is the word with the highest analog
match probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams

__all__ = ["PCAMWord", "PCAMArray", "ArraySearchResult"]


class PCAMWord:
    """One stored policy: a named tuple of pCAM cells, one per field."""

    def __init__(self, cells: Mapping[str, PCAMCell]) -> None:
        if not cells:
            raise ValueError("a word needs at least one cell")
        self._cells = dict(cells)

    @classmethod
    def from_params(cls, params: Mapping[str, PCAMParams]) -> "PCAMWord":
        """Build a word from per-field cell parameters."""
        return cls({name: PCAMCell(p) for name, p in params.items()})

    @property
    def fields(self) -> tuple[str, ...]:
        """The word's field names."""
        return tuple(self._cells)

    def cell(self, field: str) -> PCAMCell:
        """The cell storing one named field."""
        try:
            return self._cells[field]
        except KeyError:
            raise KeyError(
                f"no field {field!r}; fields: {self.fields}") from None

    def match(self, query: Mapping[str, float]) -> float:
        """Word match probability: product over the per-field cells."""
        probability = 1.0
        for field, cell in self._cells.items():
            if field not in query:
                raise KeyError(f"query missing field {field!r}")
            probability *= cell.response(float(query[field]))
        return probability

    def deterministic_match(self, query: Mapping[str, float]) -> bool:
        """TCAM-compatible view: all fields inside their [M2, M3]."""
        return all(cell.deterministic_match(float(query[field])) is True
                   for field, cell in self._cells.items())

    def __len__(self) -> int:
        return len(self._cells)


@dataclass(frozen=True)
class ArraySearchResult:
    """Outcome of searching a query against all stored words."""

    probabilities: np.ndarray
    best_index: int | None
    best_probability: float
    deterministic_indices: tuple[int, ...]
    energy_j: float
    latency_s: float

    @property
    def hit(self) -> bool:
        """True when at least one word matched deterministically."""
        return bool(self.deterministic_indices)


class PCAMArray:
    """A bank of stored pCAM words searched in parallel.

    Parameters
    ----------
    fields:
        Ordered field names every stored word must provide.
    match_threshold:
        Probability at or above which a word counts as a deterministic
        match for the digital-compatible output.
    energy_per_cell_j:
        Read energy charged per cell per search.  Defaults to the
        dataset's low-energy analog read (0.01 fJ); swap in a value
        measured from :func:`repro.device.energy.energy_statistics`
        for a calibrated run.
    """

    def __init__(self, fields: Sequence[str], *,
                 match_threshold: float = 0.99,
                 energy_per_cell_j: float = 1e-17,
                 search_latency_s: float = 1e-9) -> None:
        if not fields:
            raise ValueError("array needs at least one field")
        if not 0.0 < match_threshold <= 1.0:
            raise ValueError(
                f"match threshold must be in (0, 1]: {match_threshold!r}")
        self.fields = tuple(fields)
        self.match_threshold = match_threshold
        self.energy_per_cell_j = energy_per_cell_j
        self.search_latency_s = search_latency_s
        self._words: list[PCAMWord] = []
        self._searches = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def searches(self) -> int:
        """Number of searches performed."""
        return self._searches

    def add(self, word: PCAMWord | Mapping[str, PCAMParams]) -> int:
        """Store a policy word; returns its row index."""
        if not isinstance(word, PCAMWord):
            word = PCAMWord.from_params(word)
        if set(word.fields) != set(self.fields):
            raise ValueError(
                f"word fields {word.fields} != array fields {self.fields}")
        self._words.append(word)
        return len(self._words) - 1

    def word(self, index: int) -> PCAMWord:
        """One stored word by row index."""
        if not 0 <= index < len(self._words):
            raise IndexError(f"word {index} out of range")
        return self._words[index]

    def remove(self, index: int) -> None:
        """Delete a stored word by row index."""
        if not 0 <= index < len(self._words):
            raise IndexError(f"word {index} out of range")
        del self._words[index]

    def search(self, query: Mapping[str, float]) -> ArraySearchResult:
        """Match the query against every stored word in one cycle."""
        if not self._words:
            return ArraySearchResult(
                probabilities=np.zeros(0), best_index=None,
                best_probability=0.0, deterministic_indices=(),
                energy_j=0.0, latency_s=self.search_latency_s)
        probabilities = np.array(
            [word.match(query) for word in self._words])
        best = int(np.argmax(probabilities))
        deterministic = tuple(
            int(i) for i in
            np.flatnonzero(probabilities >= self.match_threshold))
        cells = sum(len(word) for word in self._words)
        self._searches += 1
        return ArraySearchResult(
            probabilities=probabilities,
            best_index=best,
            best_probability=float(probabilities[best]),
            deterministic_indices=deterministic,
            energy_j=cells * self.energy_per_cell_j,
            latency_s=self.search_latency_s)
