"""Series composition of pCAM stages (paper Figure 4b).

"For multistage match-action process, multiple pCAM cells can be
combined in series to obtain the **product** of deterministic and
probabilistic matches at the output."

A :class:`PCAMPipeline` holds named stages — each an ideal
:class:`~repro.core.pcam_cell.PCAMCell` or a device-realised
:class:`~repro.core.device_cell.DevicePCAMCell` — and evaluates a
feature vector to a single probability.  The paper's composition is
the product; ``min``, geometric-mean and arithmetic-mean compositions
are provided for the ablation benches (DESIGN.md section 5, item 3).

Batch evaluation
----------------
The analog array matches every applied input in a single cycle, so
the software model must not pay a Python-interpreter round trip per
packet.  :meth:`PCAMPipeline.evaluate_batch` (and the batch variants
of the trace/energy entry points) evaluate a whole feature matrix
through :meth:`PCAMCell.response_array` in one NumPy pass.  The
scalar entry points delegate to the batch kernels with size-1 arrays,
so there is exactly one evaluation code path; equivalence is pinned
by ``tests/test_batch_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.observability.profiling import profiled
from repro.observability.tracing import maybe_span

__all__ = [
    "BATCH_COMPOSITIONS",
    "COMPOSITIONS",
    "MatchStage",
    "MissingFeatureError",
    "PCAMPipeline",
    "PipelineFeatureError",
    "StageOutput",
    "UnknownFeatureError",
]


class PipelineFeatureError(Exception):
    """A feature vector does not line up with the pipeline's stages."""


class MissingFeatureError(PipelineFeatureError, KeyError):
    """A feature mapping lacks values for one or more stages."""

    def __init__(self, missing: Sequence[str],
                 stage_names: Sequence[str]) -> None:
        self.missing = tuple(missing)
        self.stage_names = tuple(stage_names)
        super().__init__(
            f"missing features for stages {sorted(self.missing)}; "
            f"pipeline stages are {list(self.stage_names)}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownFeatureError(PipelineFeatureError, ValueError):
    """A feature mapping names keys no pipeline stage matches."""

    def __init__(self, unknown: Sequence[str],
                 stage_names: Sequence[str]) -> None:
        self.unknown = tuple(unknown)
        self.stage_names = tuple(stage_names)
        super().__init__(
            f"unknown feature keys {sorted(self.unknown)}; "
            f"pipeline stages are {list(self.stage_names)}")


class MatchStage(Protocol):
    """Anything that maps scalar features to match probabilities."""

    def response(self, value: float) -> float:
        """Match probability for a scalar feature."""
        ...

    def response_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised match probabilities for a feature array."""
        ...

    def program(self, params: PCAMParams) -> object:
        """Reprogram the stage with fresh parameters."""
        ...

    @property
    def params(self) -> PCAMParams:
        """The stage's current eight-parameter set."""
        ...


# ----------------------------------------------------------------------
# Composition rules.  The batch forms reduce a (n_stages, batch) matrix
# along axis 0; the scalar forms are retained for API compatibility and
# reduce a 1-D per-stage vector exactly the way one batch column does.
# ----------------------------------------------------------------------
def _batch_product(probabilities: np.ndarray) -> np.ndarray:
    return np.prod(probabilities, axis=0)


def _batch_min(probabilities: np.ndarray) -> np.ndarray:
    return np.min(probabilities, axis=0)


def _batch_geometric(probabilities: np.ndarray) -> np.ndarray:
    return np.prod(probabilities, axis=0) ** (1.0 / probabilities.shape[0])


def _batch_mean(probabilities: np.ndarray) -> np.ndarray:
    return np.mean(probabilities, axis=0)


#: Batch composition rules over a (n_stages, batch) probability matrix.
BATCH_COMPOSITIONS: Mapping[str, Callable[[np.ndarray], np.ndarray]] = {
    "product": _batch_product,
    "min": _batch_min,
    "geometric": _batch_geometric,
    "mean": _batch_mean,
}


def _compose_product(probabilities: np.ndarray) -> float:
    return float(np.prod(probabilities))


def _compose_min(probabilities: np.ndarray) -> float:
    return float(np.min(probabilities))


def _compose_geometric(probabilities: np.ndarray) -> float:
    return float(np.prod(probabilities) ** (1.0 / len(probabilities)))


def _compose_mean(probabilities: np.ndarray) -> float:
    return float(np.mean(probabilities))


#: Available stage-composition rules.  ``"product"`` is the paper's.
COMPOSITIONS: Mapping[str, Callable[[np.ndarray], float]] = {
    "product": _compose_product,
    "min": _compose_min,
    "geometric": _compose_geometric,
    "mean": _compose_mean,
}


@dataclass(frozen=True)
class StageOutput:
    """Per-stage diagnostics of one pipeline evaluation."""

    name: str
    feature: float
    probability: float


class PCAMPipeline:
    """An ordered set of named pCAM stages evaluated in series.

    Parameters
    ----------
    stages:
        Mapping of stage name to match stage.  Iteration order is the
        physical series order.
    composition:
        Key into :data:`COMPOSITIONS`; ``"product"`` reproduces the
        paper's Figure 4b behaviour.
    """

    def __init__(self, stages: Mapping[str, MatchStage],
                 composition: str = "product") -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        if composition not in COMPOSITIONS:
            raise ValueError(
                f"unknown composition {composition!r}; "
                f"choose from {sorted(COMPOSITIONS)}")
        self._stages = dict(stages)
        self.composition = composition
        self._compose = COMPOSITIONS[composition]
        self._compose_batch = BATCH_COMPOSITIONS[composition]
        #: Optional observability hooks (set by the hub wiring): a
        #: :class:`repro.observability.tracing.Tracer` emitting one
        #: span per batch evaluation with a child per stage, and a
        #: :class:`repro.observability.profiling.Profiler` receiving
        #: the ``@profiled`` kernel wall times.  Both default to off.
        self.tracer = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stage_names(self) -> tuple[str, ...]:
        """Stage names in physical series order."""
        return tuple(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def stage(self, name: str) -> MatchStage:
        """Access one stage by name."""
        try:
            return self._stages[name]
        except KeyError:
            raise KeyError(
                f"no stage {name!r}; stages: {self.stage_names}") from None

    def program_stage(self, name: str, params: PCAMParams) -> None:
        """Reprogram one stage — the per-stage half of update_pCAM()."""
        self.stage(name).program(params)

    # ------------------------------------------------------------------
    # Feature validation
    # ------------------------------------------------------------------
    def _check_mapping(self, features: Mapping[str, object]) -> None:
        missing = [name for name in self._stages if name not in features]
        if missing:
            raise MissingFeatureError(missing, self.stage_names)
        unknown = [key for key in features if key not in self._stages]
        if unknown:
            raise UnknownFeatureError(unknown, self.stage_names)

    def _feature_vector(self, features: Mapping[str, float] |
                        Sequence[float]) -> list[tuple[str, float]]:
        if isinstance(features, Mapping):
            self._check_mapping(features)
            return [(name, float(features[name])) for name in self._stages]
        values = list(features)
        if len(values) != len(self._stages):
            raise ValueError(
                f"expected {len(self._stages)} features, got {len(values)}")
        return list(zip(self._stages, (float(v) for v in values)))

    def _feature_matrix(self, features: Mapping[str, np.ndarray] |
                        np.ndarray) -> np.ndarray:
        """Validate a feature batch into a (n_stages, batch) matrix.

        Accepts either a mapping of stage name to 1-D array (scalars
        broadcast), or a 2-D array of shape (batch, n_stages) with
        columns in stage order.
        """
        if isinstance(features, Mapping):
            self._check_mapping(features)
            columns = []
            for name in self._stages:
                column = np.asarray(features[name], dtype=float)
                if column.ndim > 1:
                    raise ValueError(
                        f"feature {name!r} must be at most 1-D, "
                        f"got shape {column.shape}")
                columns.append(np.atleast_1d(column))
            try:
                columns = np.broadcast_arrays(*columns)
            except ValueError:
                lengths = {name: np.atleast_1d(
                    np.asarray(features[name])).shape[0]
                    for name in self._stages}
                raise ValueError(
                    f"feature arrays must share one batch length, "
                    f"got {lengths}") from None
            return np.array(columns, dtype=float)
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._stages):
            raise ValueError(
                f"feature matrix must have shape (batch, "
                f"{len(self._stages)}), got {matrix.shape}")
        return matrix.T.copy()

    def _stage_probabilities(self, matrix: np.ndarray) -> np.ndarray:
        """(n_stages, batch) probabilities from a feature matrix."""
        if self.tracer is None:
            return np.stack([
                stage.response_array(matrix[index])
                for index, stage in enumerate(self._stages.values())])
        rows = []
        for index, (name, stage) in enumerate(self._stages.items()):
            with self.tracer.span(f"pcam.stage.{name}"):
                rows.append(stage.response_array(matrix[index]))
        return np.stack(rows)

    # ------------------------------------------------------------------
    # Batch evaluation (the one true code path)
    # ------------------------------------------------------------------
    @profiled("pcam.evaluate_batch")
    def evaluate_batch(self, features: Mapping[str, np.ndarray] |
                       np.ndarray) -> np.ndarray:
        """Composite match probability for a whole feature batch.

        ``features`` maps each stage name to an array of per-packet
        feature values (or is a (batch, n_stages) matrix); the return
        is the (batch,)-shaped composite probability — one analog
        search result per packet, all evaluated in a single NumPy
        pass.
        """
        matrix = self._feature_matrix(features)
        with maybe_span(self.tracer, "pcam.evaluate_batch",
                        batch=int(matrix.shape[1])):
            return self._compose_batch(self._stage_probabilities(matrix))

    def evaluate_trace_batch(self, features: Mapping[str, np.ndarray] |
                             np.ndarray
                             ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Batch composite probabilities plus per-stage breakdowns.

        Returns ``(composite, per_stage)`` where ``per_stage`` maps
        each stage name to its (batch,)-shaped probability array.
        """
        matrix = self._feature_matrix(features)
        with maybe_span(self.tracer, "pcam.evaluate_batch",
                        batch=int(matrix.shape[1])):
            probabilities = self._stage_probabilities(matrix)
            composite = self._compose_batch(probabilities)
        per_stage = {name: probabilities[index]
                     for index, name in enumerate(self._stages)}
        return composite, per_stage

    def evaluate_with_energy_batch(
            self, features: Mapping[str, np.ndarray] | np.ndarray
    ) -> tuple[np.ndarray, float]:
        """(batch probabilities, total evaluation energy in joules).

        Ideal stages contribute zero energy; device stages contribute
        their per-read evaluation energy summed over the batch.
        """
        matrix = self._feature_matrix(features)
        rows = []
        energy = 0.0
        with maybe_span(self.tracer, "pcam.evaluate_batch",
                        batch=int(matrix.shape[1])):
            for index, (name, stage) in enumerate(self._stages.items()):
                with maybe_span(self.tracer, f"pcam.stage.{name}"):
                    if isinstance(stage, DevicePCAMCell):
                        probabilities, stage_energy = stage.evaluate_array(
                            matrix[index])
                        rows.append(probabilities)
                        energy += stage_energy
                    else:
                        rows.append(stage.response_array(matrix[index]))
            return self._compose_batch(np.stack(rows)), energy

    # ------------------------------------------------------------------
    # Scalar evaluation (delegates to the batch kernels)
    # ------------------------------------------------------------------
    def _row_matrix(self, pairs: Sequence[tuple[str, float]]
                    ) -> np.ndarray:
        """A validated feature vector as a (1, n_stages) batch matrix.

        ``pairs`` comes from :meth:`_feature_vector` and is already in
        stage order, so the ndarray fast lane of
        :meth:`_feature_matrix` applies — no per-call dict of
        one-element arrays, no re-validation, no broadcast pass.
        """
        return np.array([[value for _, value in pairs]], dtype=float)

    def evaluate(self, features: Mapping[str, float] |
                 Sequence[float]) -> float:
        """Composite match probability for a full feature vector."""
        pairs = self._feature_vector(features)
        return float(self.evaluate_batch(self._row_matrix(pairs))[0])

    def evaluate_trace(self, features: Mapping[str, float] |
                       Sequence[float]) -> tuple[float, list[StageOutput]]:
        """Composite probability plus the per-stage breakdown."""
        pairs = self._feature_vector(features)
        composite, per_stage = self.evaluate_trace_batch(
            self._row_matrix(pairs))
        outputs = [StageOutput(name=name, feature=value,
                               probability=float(per_stage[name][0]))
                   for name, value in pairs]
        return float(composite[0]), outputs

    def programming_energy_j(self) -> float:
        """Total programming energy of device-realised stages [J]."""
        return sum(stage.programming_energy_j
                   for stage in self._stages.values()
                   if isinstance(stage, DevicePCAMCell))

    def evaluate_with_energy(self, features: Mapping[str, float] |
                             Sequence[float]) -> tuple[float, float]:
        """(probability, evaluation energy in joules) for one vector.

        Ideal stages contribute zero energy; device stages contribute
        their two-read evaluation energy.
        """
        pairs = self._feature_vector(features)
        probabilities, energy = self.evaluate_with_energy_batch(
            self._row_matrix(pairs))
        return float(probabilities[0]), energy

    @classmethod
    def from_params(cls, params: Mapping[str, PCAMParams],
                    composition: str = "product", *,
                    device_backed: bool = False,
                    **device_kwargs: object) -> "PCAMPipeline":
        """Build a pipeline from per-stage parameters.

        With ``device_backed`` every stage is realised on simulated
        memristors (extra keyword arguments are forwarded to
        :class:`DevicePCAMCell`).
        """
        stages: dict[str, MatchStage] = {}
        for name, stage_params in params.items():
            if device_backed:
                stages[name] = DevicePCAMCell(stage_params, **device_kwargs)
            else:
                stages[name] = PCAMCell(stage_params)
        return cls(stages, composition=composition)

    def __repr__(self) -> str:
        return (f"PCAMPipeline(stages={list(self._stages)}, "
                f"composition={self.composition!r})")
