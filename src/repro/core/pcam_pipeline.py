"""Series composition of pCAM stages (paper Figure 4b).

"For multistage match-action process, multiple pCAM cells can be
combined in series to obtain the **product** of deterministic and
probabilistic matches at the output."

A :class:`PCAMPipeline` holds named stages — each an ideal
:class:`~repro.core.pcam_cell.PCAMCell` or a device-realised
:class:`~repro.core.device_cell.DevicePCAMCell` — and evaluates a
feature vector to a single probability.  The paper's composition is
the product; ``min``, geometric-mean and arithmetic-mean compositions
are provided for the ablation benches (DESIGN.md section 5, item 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMCell, PCAMParams

__all__ = [
    "COMPOSITIONS",
    "MatchStage",
    "PCAMPipeline",
    "StageOutput",
]


class MatchStage(Protocol):
    """Anything that maps a scalar feature to a match probability."""

    def response(self, value: float) -> float:
        """Match probability for a scalar feature."""
        ...

    def program(self, params: PCAMParams) -> object:
        """Reprogram the stage with fresh parameters."""
        ...

    @property
    def params(self) -> PCAMParams:
        """The stage's current eight-parameter set."""
        ...


def _compose_product(probabilities: np.ndarray) -> float:
    return float(np.prod(probabilities))


def _compose_min(probabilities: np.ndarray) -> float:
    return float(np.min(probabilities))


def _compose_geometric(probabilities: np.ndarray) -> float:
    return float(np.prod(probabilities) ** (1.0 / len(probabilities)))


def _compose_mean(probabilities: np.ndarray) -> float:
    return float(np.mean(probabilities))


#: Available stage-composition rules.  ``"product"`` is the paper's.
COMPOSITIONS: Mapping[str, Callable[[np.ndarray], float]] = {
    "product": _compose_product,
    "min": _compose_min,
    "geometric": _compose_geometric,
    "mean": _compose_mean,
}


@dataclass(frozen=True)
class StageOutput:
    """Per-stage diagnostics of one pipeline evaluation."""

    name: str
    feature: float
    probability: float


class PCAMPipeline:
    """An ordered set of named pCAM stages evaluated in series.

    Parameters
    ----------
    stages:
        Mapping of stage name to match stage.  Iteration order is the
        physical series order.
    composition:
        Key into :data:`COMPOSITIONS`; ``"product"`` reproduces the
        paper's Figure 4b behaviour.
    """

    def __init__(self, stages: Mapping[str, MatchStage],
                 composition: str = "product") -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        if composition not in COMPOSITIONS:
            raise ValueError(
                f"unknown composition {composition!r}; "
                f"choose from {sorted(COMPOSITIONS)}")
        self._stages = dict(stages)
        self.composition = composition
        self._compose = COMPOSITIONS[composition]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stage_names(self) -> tuple[str, ...]:
        """Stage names in physical series order."""
        return tuple(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def stage(self, name: str) -> MatchStage:
        """Access one stage by name."""
        try:
            return self._stages[name]
        except KeyError:
            raise KeyError(
                f"no stage {name!r}; stages: {self.stage_names}") from None

    def program_stage(self, name: str, params: PCAMParams) -> None:
        """Reprogram one stage — the per-stage half of update_pCAM()."""
        self.stage(name).program(params)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _feature_vector(self, features: Mapping[str, float] |
                        Sequence[float]) -> list[tuple[str, float]]:
        if isinstance(features, Mapping):
            missing = [name for name in self._stages if name not in features]
            if missing:
                raise KeyError(f"missing features for stages: {missing}")
            return [(name, float(features[name])) for name in self._stages]
        values = list(features)
        if len(values) != len(self._stages):
            raise ValueError(
                f"expected {len(self._stages)} features, got {len(values)}")
        return list(zip(self._stages, (float(v) for v in values)))

    def evaluate(self, features: Mapping[str, float] |
                 Sequence[float]) -> float:
        """Composite match probability for a full feature vector."""
        pairs = self._feature_vector(features)
        probabilities = np.array(
            [self._stages[name].response(value) for name, value in pairs])
        return self._compose(probabilities)

    def evaluate_trace(self, features: Mapping[str, float] |
                       Sequence[float]) -> tuple[float, list[StageOutput]]:
        """Composite probability plus the per-stage breakdown."""
        pairs = self._feature_vector(features)
        outputs = [StageOutput(name=name, feature=value,
                               probability=self._stages[name].response(value))
                   for name, value in pairs]
        probabilities = np.array([o.probability for o in outputs])
        return self._compose(probabilities), outputs

    def programming_energy_j(self) -> float:
        """Total programming energy of device-realised stages [J]."""
        return sum(stage.programming_energy_j
                   for stage in self._stages.values()
                   if isinstance(stage, DevicePCAMCell))

    def evaluate_with_energy(self, features: Mapping[str, float] |
                             Sequence[float]) -> tuple[float, float]:
        """(probability, evaluation energy in joules) for one vector.

        Ideal stages contribute zero energy; device stages contribute
        their two-read evaluation energy.
        """
        pairs = self._feature_vector(features)
        probabilities = []
        energy = 0.0
        for name, value in pairs:
            stage = self._stages[name]
            if isinstance(stage, DevicePCAMCell):
                result = stage.evaluate(value)
                probabilities.append(result.probability)
                energy += result.energy_j
            else:
                probabilities.append(stage.response(value))
        return self._compose(np.array(probabilities)), energy

    @classmethod
    def from_params(cls, params: Mapping[str, PCAMParams],
                    composition: str = "product", *,
                    device_backed: bool = False,
                    **device_kwargs: object) -> "PCAMPipeline":
        """Build a pipeline from per-stage parameters.

        With ``device_backed`` every stage is realised on simulated
        memristors (extra keyword arguments are forwarded to
        :class:`DevicePCAMCell`).
        """
        stages: dict[str, MatchStage] = {}
        for name, stage_params in params.items():
            if device_backed:
                stages[name] = DevicePCAMCell(stage_params, **device_kwargs)
            else:
                stages[name] = PCAMCell(stage_params)
        return cls(stages, composition=composition)

    def __repr__(self) -> str:
        return (f"PCAMPipeline(stages={list(self._stages)}, "
                f"composition={self.composition!r})")
