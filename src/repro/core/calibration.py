"""Feature-to-voltage calibration against the memristor dataset.

Figure 7's caption: "The PDP ranges from 0 to 1 depending upon the
analog input (sojourn time and buffer size) mapped to hardware
voltages (DACs)".  This module provides that mapping and the
dataset-driven calibration utilities:

* :class:`FeatureScaler` — affine feature <-> voltage mapping with
  optional DAC quantization,
* :func:`scale_params` — translate pCAM parameters expressed in
  feature units (e.g. milliseconds of sojourn time) into the voltage
  domain the hardware matches in,
* :func:`noise_band` — Monte-Carlo mean/std response of a device cell
  (Figure 7's measured curves),
* :func:`analog_read_energy_j` — per-cell search energy calibrated
  from the dataset (feeds the array/table energy accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMParams
from repro.crossbar.converters import DAC
from repro.device.dataset import MemristorDataset
from repro.device.energy import energy_statistics

__all__ = [
    "FeatureScaler",
    "analog_read_energy_j",
    "noise_band",
    "scale_params",
]


@dataclass(frozen=True)
class FeatureScaler:
    """Affine mapping between a feature range and a voltage range.

    Features outside the declared range are clipped to it — the DAC
    rails saturate, they do not wrap.
    """

    feature_lo: float
    feature_hi: float
    v_lo: float
    v_hi: float
    dac: DAC | None = None

    def __post_init__(self) -> None:
        if self.feature_lo >= self.feature_hi:
            raise ValueError(
                f"empty feature range: [{self.feature_lo}, "
                f"{self.feature_hi}]")
        if self.v_lo >= self.v_hi:
            raise ValueError(
                f"empty voltage range: [{self.v_lo}, {self.v_hi}]")

    @property
    def gain(self) -> float:
        """Volts per feature unit."""
        return ((self.v_hi - self.v_lo)
                / (self.feature_hi - self.feature_lo))

    def to_voltage(self, feature: float) -> float:
        """Map a feature value to its hardware voltage."""
        clipped = min(self.feature_hi, max(self.feature_lo, feature))
        fraction = ((clipped - self.feature_lo)
                    / (self.feature_hi - self.feature_lo))
        voltage = self.v_lo + fraction * (self.v_hi - self.v_lo)
        if self.dac is None:
            return voltage
        # Route through the DAC's code grid (quantization + INL).
        dac_fraction = ((voltage - self.dac.v_min)
                        / (self.dac.v_max - self.dac.v_min))
        return self.dac.quantize(dac_fraction)

    def to_voltage_array(self, features: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_voltage` over a feature array."""
        clipped = np.clip(np.asarray(features, dtype=float),
                          self.feature_lo, self.feature_hi)
        fraction = ((clipped - self.feature_lo)
                    / (self.feature_hi - self.feature_lo))
        voltages = self.v_lo + fraction * (self.v_hi - self.v_lo)
        if self.dac is None:
            return voltages
        dac_fraction = ((voltages - self.dac.v_min)
                        / (self.dac.v_max - self.dac.v_min))
        return self.dac.quantize_array(dac_fraction)

    def from_voltage(self, voltage: float) -> float:
        """Inverse mapping (no quantization on the way back)."""
        fraction = (voltage - self.v_lo) / (self.v_hi - self.v_lo)
        return self.feature_lo + fraction * (self.feature_hi
                                             - self.feature_lo)

    def to_voltage_array(self, features: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_voltage` (without DAC routing)."""
        clipped = np.clip(np.asarray(features, dtype=float),
                          self.feature_lo, self.feature_hi)
        fraction = ((clipped - self.feature_lo)
                    / (self.feature_hi - self.feature_lo))
        return self.v_lo + fraction * (self.v_hi - self.v_lo)


def scale_params(params: PCAMParams, scaler: FeatureScaler) -> PCAMParams:
    """Translate feature-domain pCAM parameters into the voltage domain.

    The thresholds M1..M4 move through the affine map; the slopes are
    rescaled by the inverse gain so the response at corresponding
    points is unchanged.
    """
    gain = scaler.gain
    return PCAMParams(
        m1=scaler.to_voltage(params.m1),
        m2=scaler.to_voltage(params.m2),
        m3=scaler.to_voltage(params.m3),
        m4=scaler.to_voltage(params.m4),
        sa=params.sa / gain,
        sb=params.sb / gain,
        pmax=params.pmax,
        pmin=params.pmin)


def noise_band(cell: DevicePCAMCell, inputs: np.ndarray,
               trials: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo (mean, std) of a device cell's response.

    Each trial re-evaluates every input with fresh cycle-to-cycle
    noise; the band is what the Figure 7 measurement campaign sees.
    """
    if trials < 2:
        raise ValueError(f"need at least 2 trials: {trials!r}")
    x = np.asarray(inputs, dtype=float)
    samples = np.stack([cell.response_array(x) for _ in range(trials)])
    return samples.mean(axis=0), samples.std(axis=0)


def analog_read_energy_j(dataset: MemristorDataset,
                         percentile: float = 10.0) -> float:
    """A calibrated per-cell search energy from the dataset [J].

    The paper charges analog searches at the energy of the chip's
    *low-energy states*; the default takes the 10th percentile of the
    per-state read-energy distribution at the search voltage — a
    conservative stand-in for "the lowest energy consumption states".
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {percentile!r}")
    voltage = dataset.params.v_reference
    currents = dataset.currents_at_voltage(voltage)
    energies = np.abs(voltage * currents) * 1e-9
    energies = energies[energies > 0.0]
    if energies.size == 0:
        raise ValueError("dataset has no dissipating reads")
    return float(np.percentile(energies, percentile))
