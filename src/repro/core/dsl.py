"""A textual front-end for the paper's programming abstractions.

Sec. 5 presents the analog AQM as program text — ``prog_pCAM()``,
``pCAM()``, ``AQM() { pipeline { ... } }`` and
``table analogAQM { read / output / action }``.  This module parses
that surface syntax (lightly regularised) into the builder objects of
:mod:`repro.core.programming`, so an analog network function can be
shipped as a text artifact the controller compiles — the paper's
"programmer specifies the hardware function from the application
layer".

Grammar (EBNF-ish)::

    program   := table+
    table     := "table" NAME "{" section+ "}"
    section   := output | action
    output    := "output" "{" "pipeline" "{" stage ("," stage)* ","? "}" "}"
    stage     := "pCAM" "(" NAME ":" args ")"
    args      := NUMBER ("," NUMBER){3,7}        # M1..M4 [, Sa, Sb [, pmax, pmin]]
    action    := "action" "{" NAME "(" ")" ";"? "}"

The ``read`` section is implied by the pipeline's stages (exactly as
in the paper, where the table reads what ``AQM()`` consumes); if
present it is validated against them.  Comments run from ``//`` to
end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.core.match_action import AnalogMatchActionTable
from repro.core.pcam_cell import PCAMParams, prog_pcam
from repro.core.programming import PipelineProgram, TableProgram

__all__ = ["DSLError", "parse_program", "parse_table"]


class DSLError(ValueError):
    """Raised on any syntax or semantic error in program text."""


_TOKEN_PATTERN = re.compile(r"""
    (?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_./]*)
  | (?P<punct>[{}();:,])
  | (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<bad>.)
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        if kind == "bad":
            raise DSLError(
                f"unexpected character {match.group()!r} at offset "
                f"{match.start()}")
        tokens.append(_Token(kind=kind, text=match.group(),
                             position=match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DSLError("unexpected end of program text")
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise DSLError(
                f"expected {text!r} at offset {token.position}, got "
                f"{token.text!r}")
        return token

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise DSLError(
                f"expected a name at offset {token.position}, got "
                f"{token.text!r}")
        return token.text

    def _expect_number(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise DSLError(
                f"expected a number at offset {token.position}, got "
                f"{token.text!r}")
        return float(token.text)

    @property
    def exhausted(self) -> bool:
        """True when every token has been consumed."""
        return self._index >= len(self._tokens)

    # -- grammar --------------------------------------------------------
    def parse_program(self) -> list["_ParsedTable"]:
        """Parse all tables in the program text."""
        tables = []
        while not self.exhausted:
            tables.append(self.parse_table())
        if not tables:
            raise DSLError("program contains no tables")
        return tables

    def parse_table(self) -> "_ParsedTable":
        """Parse exactly one table definition."""
        self._expect("table")
        name = self._expect_name()
        self._expect("{")
        reads: list[str] | None = None
        stages: dict[str, PCAMParams] | None = None
        action_name: str | None = None
        while True:
            token = self._peek()
            if token is None:
                raise DSLError(f"table {name!r} is not closed")
            if token.text == "}":
                self._next()
                break
            section = self._expect_name()
            if section == "read":
                reads = self._parse_read()
            elif section == "output":
                stages = self._parse_output()
            elif section == "action":
                action_name = self._parse_action()
            else:
                raise DSLError(
                    f"unknown section {section!r} in table {name!r}")
        if stages is None:
            raise DSLError(f"table {name!r} has no output section")
        if reads is not None and tuple(reads) != tuple(stages):
            raise DSLError(
                f"table {name!r}: read fields {reads} do not match the "
                f"pipeline stages {list(stages)}")
        return _ParsedTable(name=name, stages=stages,
                            action_name=action_name)

    def _parse_read(self) -> list[str]:
        self._expect("{")
        fields: list[str] = []
        while True:
            token = self._peek()
            if token is None:
                raise DSLError("read section is not closed")
            if token.text == "}":
                self._next()
                return fields
            fields.append(self._expect_name())
            if self._peek() is not None and self._peek().text == ";":
                self._next()

    def _parse_output(self) -> dict[str, PCAMParams]:
        self._expect("{")
        self._expect("pipeline")
        self._expect("{")
        stages: dict[str, PCAMParams] = {}
        while True:
            token = self._peek()
            if token is None:
                raise DSLError("pipeline is not closed")
            if token.text == "}":
                self._next()
                break
            name, params = self._parse_stage()
            if name in stages:
                raise DSLError(f"duplicate pipeline stage {name!r}")
            stages[name] = params
            if self._peek() is not None and self._peek().text == ",":
                self._next()
        self._expect("}")
        if not stages:
            raise DSLError("pipeline has no stages")
        return stages

    def _parse_stage(self) -> tuple[str, PCAMParams]:
        keyword = self._expect_name()
        if keyword != "pCAM":
            raise DSLError(f"expected pCAM stage, got {keyword!r}")
        self._expect("(")
        feature = self._expect_name()
        self._expect(":")
        numbers = [self._expect_number()]
        while self._peek() is not None and self._peek().text == ",":
            self._next()
            numbers.append(self._expect_number())
        self._expect(")")
        if len(numbers) not in (4, 6, 8):
            raise DSLError(
                f"stage {feature!r}: expected 4 (M1..M4), 6 (+Sa,Sb) or "
                f"8 (+pmax,pmin) parameters, got {len(numbers)}")
        m1, m2, m3, m4 = numbers[:4]
        sa = sb = None
        pmax, pmin = 1.0, 0.0
        if len(numbers) >= 6:
            sa, sb = numbers[4], numbers[5]
        if len(numbers) == 8:
            pmax, pmin = numbers[6], numbers[7]
        try:
            params = prog_pcam(m1, m2, m3, m4, sa=sa, sb=sb,
                               pmax=pmax, pmin=pmin)
        except ValueError as error:
            raise DSLError(f"stage {feature!r}: {error}") from error
        return feature, params

    def _parse_action(self) -> str:
        self._expect("{")
        name = self._expect_name()
        self._expect("(")
        self._expect(")")
        if self._peek() is not None and self._peek().text == ";":
            self._next()
        self._expect("}")
        return name


@dataclass(frozen=True)
class _ParsedTable:
    name: str
    stages: Mapping[str, PCAMParams]
    action_name: str | None


def parse_table(text: str,
                actions: Mapping[str, Callable] | None = None,
                **build_kwargs: object) -> AnalogMatchActionTable:
    """Parse one ``table`` definition into a match-action table.

    ``actions`` maps action names used in the text (e.g.
    ``update_pCAM``) to callables with the table-action signature.
    """
    tables = parse_program(text, actions=actions, **build_kwargs)
    if len(tables) != 1:
        raise DSLError(f"expected exactly one table, got {len(tables)}")
    return tables[0]


def parse_program(text: str,
                  actions: Mapping[str, Callable] | None = None,
                  **build_kwargs: object
                  ) -> list[AnalogMatchActionTable]:
    """Parse program text into built match-action tables."""
    parsed = _Parser(_tokenize(text)).parse_program()
    built: list[AnalogMatchActionTable] = []
    for table in parsed:
        program = PipelineProgram()
        for stage_name, params in table.stages.items():
            program.stage(stage_name, params)
        builder = TableProgram(table.name).output(program)
        if table.action_name is not None:
            registry = actions or {}
            if table.action_name not in registry:
                raise DSLError(
                    f"table {table.name!r} uses unknown action "
                    f"{table.action_name!r}; provide it via actions=")
            builder.action(registry[table.action_name])
        built.append(builder.build(**build_kwargs))
    return built
