"""The pCAM cell: a programmable five-region analog match function.

This is the paper's central abstraction (Figure 4a and the ``pCAM()``
pseudocode of Sec. 5).  A cell is programmed with eight parameters::

    prog_pCAM(M1, M2, M3, M4, Sa, Sb, pmax, pmin)

which carve the input axis into five regions:

    input <= M1          -> pmin   (deterministic mismatch)
    M1 < input < M2      -> Sa-sloped ramp (probabilistic match)
    M2 <= input <= M3    -> pmax   (deterministic match)
    M3 < input < M4      -> Sb-sloped ramp (probabilistic match)
    input >= M4          -> pmin   (deterministic mismatch)

The ramp intercepts follow the paper's ``pCAM()`` function verbatim:

    output = Sb*input + (M4*pmax - M3*pmin) / (M4 - M3)   # M3 < x < M4
    output = Sa*input + (M2*pmin - M1*pmax) / (M2 - M1)   # M1 < x < M2

With the *canonical* slopes ``Sa = (pmax-pmin)/(M2-M1)`` and
``Sb = (pmin-pmax)/(M4-M3)`` the response is continuous; programming
other slopes is allowed (the parameters are independent in the paper's
abstraction) and the physical output is clipped to the [pmin, pmax]
rails of the sensing circuit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "MatchRegion",
    "PCAMParams",
    "PCAMCell",
    "prog_pcam",
]


class MatchRegion(enum.Enum):
    """Which of the five programmed regions an input falls into."""

    MISMATCH_LOW = "mismatch_low"
    PROBABLE_RISING = "probable_rising"
    MATCH = "match"
    PROBABLE_FALLING = "probable_falling"
    MISMATCH_HIGH = "mismatch_high"

    @property
    def deterministic(self) -> bool:
        """True for the digital-compatible regions (logic 0 or 1)."""
        return self in (MatchRegion.MISMATCH_LOW, MatchRegion.MATCH,
                        MatchRegion.MISMATCH_HIGH)


@dataclass(frozen=True)
class PCAMParams:
    """The eight programmable parameters of one pCAM cell.

    Invariants: ``m1 <= m2 <= m3 <= m4`` and ``pmin <= pmax``.  Outputs
    are probabilities, so ``0 <= pmin`` and ``pmax <= 1``.

    Degenerate programmings are legal: ``m1 == m2`` or ``m3 == m4``
    collapses the corresponding probabilistic ramp to a zero-width
    step (the region is empty, no ramp is ever evaluated), and
    ``pmin == pmax`` pins the cell to a constant output.
    """

    m1: float
    m2: float
    m3: float
    m4: float
    sa: float
    sb: float
    pmax: float = 1.0
    pmin: float = 0.0

    def __post_init__(self) -> None:
        if not (self.m1 <= self.m2 <= self.m3 <= self.m4):
            raise ValueError(
                f"thresholds must satisfy M1 <= M2 <= M3 <= M4: "
                f"{self.m1}, {self.m2}, {self.m3}, {self.m4}")
        if not self.pmin <= self.pmax:
            raise ValueError(
                f"pmin must not exceed pmax: {self.pmin}, {self.pmax}")
        if self.pmin < 0.0 or self.pmax > 1.0:
            raise ValueError(
                f"probabilities must lie in [0, 1]: "
                f"{self.pmin}, {self.pmax}")

    @classmethod
    def canonical(cls, m1: float, m2: float, m3: float, m4: float,
                  pmax: float = 1.0, pmin: float = 0.0) -> "PCAMParams":
        """Parameters with the continuity-preserving slopes.

        A zero-width ramp has no interior points, so its slope is
        immaterial; 0.0 is used instead of dividing by zero.
        """
        sa = (pmax - pmin) / (m2 - m1) if m2 > m1 else 0.0
        sb = (pmin - pmax) / (m4 - m3) if m4 > m3 else 0.0
        return cls(m1=m1, m2=m2, m3=m3, m4=m4, sa=sa, sb=sb,
                   pmax=pmax, pmin=pmin)

    @property
    def canonical_sa(self) -> float:
        """The rising slope that makes the response continuous."""
        if self.m2 <= self.m1:
            return 0.0
        return (self.pmax - self.pmin) / (self.m2 - self.m1)

    @property
    def canonical_sb(self) -> float:
        """The falling slope that makes the response continuous."""
        if self.m4 <= self.m3:
            return 0.0
        return (self.pmin - self.pmax) / (self.m4 - self.m3)

    @property
    def is_continuous(self) -> bool:
        """True when the programmed slopes equal the canonical ones."""
        return (np.isclose(self.sa, self.canonical_sa)
                and np.isclose(self.sb, self.canonical_sb))

    @property
    def match_window(self) -> tuple[float, float]:
        """The deterministic-match interval [M2, M3]."""
        return self.m2, self.m3

    @property
    def support(self) -> tuple[float, float]:
        """The interval outside which the output is pinned to pmin."""
        return self.m1, self.m4

    def shifted(self, delta: float) -> "PCAMParams":
        """All four thresholds translated by ``delta`` (slopes kept)."""
        return replace(self, m1=self.m1 + delta, m2=self.m2 + delta,
                       m3=self.m3 + delta, m4=self.m4 + delta)

    def widened(self, factor: float) -> "PCAMParams":
        """Thresholds scaled about the window centre by ``factor``.

        The AQM controller uses this to relax or tighten a stage's
        acceptance window at run time (``update_pCAM``).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor!r}")
        centre = 0.5 * (self.m2 + self.m3)
        new = {name: centre + (getattr(self, name) - centre) * factor
               for name in ("m1", "m2", "m3", "m4")}
        return PCAMParams.canonical(pmax=self.pmax, pmin=self.pmin, **new)


def prog_pcam(m1: float, m2: float, m3: float, m4: float,
              sa: float | None = None, sb: float | None = None,
              pmax: float = 1.0, pmin: float = 0.0) -> PCAMParams:
    """The paper's ``prog_pCAM()`` programming abstraction.

    Omitted slopes default to the canonical (continuous) values, which
    is what the controller derives when the programmer specifies only
    an I/O response (Sec. 5, "It's possible to specify the I/O
    response, and controller can map it to prog_pCAM()").
    """
    if sa is None or sb is None:
        canonical = PCAMParams.canonical(m1, m2, m3, m4, pmax=pmax,
                                         pmin=pmin)
        sa = canonical.sa if sa is None else sa
        sb = canonical.sb if sb is None else sb
    return PCAMParams(m1=m1, m2=m2, m3=m3, m4=m4, sa=sa, sb=sb,
                      pmax=pmax, pmin=pmin)


class PCAMCell:
    """An ideal (circuit-level) pCAM cell.

    Evaluates the paper's five-region transfer function.  The
    device-realised counterpart with memristor noise lives in
    :mod:`repro.core.device_cell`; this class is the functional
    reference the calibration measures against.

    Parameters
    ----------
    params:
        The eight programmable parameters.
    clip_to_rails:
        Clip outputs into [pmin, pmax].  The physical sensing circuit
        cannot exceed its rails; disable only to inspect the raw
        un-clipped pseudocode response.
    nonlinearity:
        ``"linear"`` evaluates the paper's piecewise-linear ramps.
        ``"sigmoid"`` and ``"gaussian"`` realise the *future work*
        extension (Sec. 8: "modeling of non-linear match functions")
        by reshaping the probabilistic ramps; both keep the
        deterministic regions intact and require canonical slopes.
    """

    _NONLINEARITIES = ("linear", "sigmoid", "gaussian")

    def __init__(self, params: PCAMParams, *, clip_to_rails: bool = True,
                 nonlinearity: str = "linear") -> None:
        if nonlinearity not in self._NONLINEARITIES:
            raise ValueError(
                f"nonlinearity must be one of {self._NONLINEARITIES}: "
                f"{nonlinearity!r}")
        if nonlinearity != "linear" and not params.is_continuous:
            raise ValueError(
                "non-linear ramp shapes require canonical slopes")
        self.params = params
        self.clip_to_rails = clip_to_rails
        self.nonlinearity = nonlinearity
        self._evaluations = 0
        self._intended_params = params
        self._fault = None

    @property
    def evaluations(self) -> int:
        """Number of match evaluations performed."""
        return self._evaluations

    def tally_evaluations(self, count: int) -> None:
        """Count evaluations performed on the cell's behalf.

        The folded uniform evaluator
        (:mod:`repro.core.pcam_fold`) computes one scalar response and
        broadcasts it over a batch; this hook keeps the cell's
        evaluation counter identical to what ``response_array`` over
        the full batch would have recorded.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0: {count!r}")
        self._evaluations += count

    @property
    def intended_params(self) -> PCAMParams:
        """The parameters the programmer asked for.

        Equal to :attr:`params` on a healthy cell; under an injected
        fault, :attr:`params` holds what the hardware realises while
        this keeps the clean program — the reference the differential
        oracle and the shadow digital oracle compare against.
        """
        return self._intended_params

    @property
    def fault(self):
        """The injected fault instance, or None on a healthy cell."""
        return self._fault

    def inject_fault(self, fault) -> None:
        """Attach a materialised :class:`repro.robustness.models.CellFault`.

        The fault perturbs the realised parameters immediately and its
        signal-path hooks run on every subsequent evaluation.
        """
        self._fault = fault
        self.params = fault.faulted_params(self._intended_params)

    def clear_fault(self) -> None:
        """Detach any injected fault and restore the intended program."""
        self._fault = None
        self.params = self._intended_params

    def program(self, params: PCAMParams) -> None:
        """Reprogram the cell — the ``update_pCAM()`` entry point.

        An injected fault decides what programming achieves: transient
        faults (drift) are scrubbed, persistent ones (stuck cells)
        survive, and programming-variance faults resample.
        """
        self._intended_params = params
        if self._fault is not None:
            realised = self._fault.on_program(params)
            if not self._fault.active:
                self._fault = None
            self.params = realised
        else:
            self.params = params

    def region(self, value: float) -> MatchRegion:
        """Classify an input into one of the five regions."""
        p = self.params
        if value <= p.m1:
            return MatchRegion.MISMATCH_LOW
        if value < p.m2:
            return MatchRegion.PROBABLE_RISING
        if value <= p.m3:
            return MatchRegion.MATCH
        if value < p.m4:
            return MatchRegion.PROBABLE_FALLING
        return MatchRegion.MISMATCH_HIGH

    def response(self, value: float) -> float:
        """The paper's ``pCAM(input)`` for a scalar input."""
        return float(self.response_array(np.asarray([value]))[0])

    def __call__(self, value: float) -> float:
        return self.response(value)

    def response_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised transfer function over an input array."""
        x = np.asarray(values, dtype=float)
        if self._fault is not None:
            x = self._fault.transform_input(x)
        p = self.params
        self._evaluations += x.size

        if self.nonlinearity == "linear":
            # A zero-width ramp region is empty — np.select never picks
            # its branch — so substitute a unit denominator rather than
            # dividing by zero.
            rise_span = (p.m2 - p.m1) if p.m2 > p.m1 else 1.0
            fall_span = (p.m4 - p.m3) if p.m4 > p.m3 else 1.0
            rising = p.sa * x + (p.m2 * p.pmin - p.m1 * p.pmax) / rise_span
            falling = p.sb * x + (p.m4 * p.pmax - p.m3 * p.pmin) / fall_span
        else:
            rising = self._shaped_ramp(x, p.m1, p.m2, ascending=True)
            falling = self._shaped_ramp(x, p.m3, p.m4, ascending=False)

        output = np.select(
            condlist=[
                (x <= p.m1) | (x >= p.m4),
                x > p.m3,
                x < p.m2,
            ],
            choicelist=[np.full_like(x, p.pmin), falling, rising],
            default=p.pmax,
        )
        if self._fault is not None:
            output = self._fault.transform_response(x, output)
        if self.clip_to_rails:
            output = np.clip(output, p.pmin, p.pmax)
        return output

    def _shaped_ramp(self, x: np.ndarray, lo: float, hi: float, *,
                     ascending: bool) -> np.ndarray:
        """Non-linear ramp between ``lo`` and ``hi`` (future-work mode)."""
        p = self.params
        span = hi - lo
        if span <= 0.0:
            # Empty ramp region: the caller never selects these values.
            t = np.zeros_like(x)
        else:
            t = np.clip((x - lo) / span, 0.0, 1.0)
        if not ascending:
            t = 1.0 - t
        if self.nonlinearity == "sigmoid":
            # Logistic reshaping normalised to hit 0/1 at the ends.
            steepness = 10.0
            raw = 1.0 / (1.0 + np.exp(-steepness * (t - 0.5)))
            lo_v = 1.0 / (1.0 + np.exp(steepness * 0.5))
            hi_v = 1.0 / (1.0 + np.exp(-steepness * 0.5))
            shape = (raw - lo_v) / (hi_v - lo_v)
        else:  # gaussian
            shape = np.exp(-4.0 * (1.0 - t) ** 2)
            shape = (shape - np.exp(-4.0)) / (1.0 - np.exp(-4.0))
        return p.pmin + (p.pmax - p.pmin) * shape

    def deterministic_match(self, value: float) -> bool | None:
        """Digital view of the output: True/False, or None if probabilistic.

        This is the paper's point that pCAM *subsumes* TCAM: inside
        [M2, M3] the cell behaves as logic-1, outside [M1, M4] as
        logic-0, and in between it produces the analog levels a TCAM
        cannot express.
        """
        region = self.region(value)
        if region is MatchRegion.MATCH:
            return True
        if region.deterministic:
            return False
        return None

    def __repr__(self) -> str:
        p = self.params
        return (f"PCAMCell(M=[{p.m1:g}, {p.m2:g}, {p.m3:g}, {p.m4:g}], "
                f"p=[{p.pmin:g}, {p.pmax:g}], {self.nonlinearity})")
