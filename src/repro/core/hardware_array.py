"""A pCAM policy array mapped onto a physical crossbar.

:class:`~repro.core.pcam_array.PCAMArray` is the functional model of
the match-action memory; this module *realises* it on the analog
circuit substrate of :mod:`repro.crossbar`: every stored word occupies
two crossbar columns (the low- and high-threshold devices of its
cells), queries are applied through a DAC as wordline voltages, the
column currents are sensed, thresholds decoded, and the per-word match
probability computed — with all of the substrate's imperfections
(quantization, IR drop, sneak paths, crosstalk, read noise) shaping
the answer and every operation charged to the energy ledger.

This is the piece RQ2 reasons about: the same placement the
:class:`~repro.core.compiler.CognitiveCompiler` budgets for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.crossbar.array import Crossbar
from repro.crossbar.converters import DAC
from repro.crossbar.losses import LineLossModel
from repro.crossbar.sensing import SenseAmplifier
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel
from repro.energy.ledger import ACCOUNT_COMPUTE, ACCOUNT_CONVERSION, \
    EnergyLedger

__all__ = ["CrossbarPCAMArray", "HardwareSearchResult"]


@dataclass(frozen=True)
class HardwareSearchResult:
    """Outcome of one crossbar-level pCAM search."""

    probabilities: np.ndarray
    best_index: int | None
    energy_j: float
    latency_s: float

    @property
    def best_probability(self) -> float:
        """Match probability of the best stored word (0 on miss)."""
        if self.best_index is None:
            return 0.0
        return float(self.probabilities[self.best_index])


class CrossbarPCAMArray:
    """Stored pCAM policies on an analog crossbar.

    Layout: rows = fields (one wordline per field), columns = 2 per
    stored word (``lo`` thresholds, ``hi`` thresholds).  Thresholds
    are encoded as normalised conductances over the field's voltage
    range, exactly like :class:`~repro.core.device_cell.DevicePCAMCell`
    but batched into one array.

    Parameters
    ----------
    fields:
        Ordered field names; fixes the row count.
    v_range:
        Input-voltage range thresholds are encoded over.
    max_words:
        Column budget / 2.
    dac:
        Input converter (one per wordline, shared spec).
    losses, variability, sense:
        Substrate imperfection models.
    ledger:
        Energy ledger (conversion + compute accounts).
    """

    #: Read pulse width per search.
    READ_DURATION_S = 1e-9

    def __init__(self, fields: Sequence[str],
                 v_range: tuple[float, float] = (-2.0, 4.0),
                 max_words: int = 64,
                 device_params: MemristorParams | None = None,
                 dac: DAC | None = None,
                 losses: LineLossModel | None = None,
                 variability: VariabilityModel | None = None,
                 sense: SenseAmplifier | None = None,
                 ledger: EnergyLedger | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if not fields:
            raise ValueError("array needs at least one field")
        if max_words < 1:
            raise ValueError(f"max_words must be >= 1: {max_words!r}")
        v_lo, v_hi = v_range
        if v_lo >= v_hi:
            raise ValueError(f"invalid voltage range: {v_range!r}")
        self.fields = tuple(fields)
        self.v_range = (float(v_lo), float(v_hi))
        self.max_words = max_words
        self.device_params = device_params or MemristorParams()
        self.dac = dac or DAC(bits=8, v_min=v_lo, v_max=v_hi)
        self.sense = sense or SenseAmplifier.ideal()
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self._rng = rng or np.random.default_rng()
        self._crossbar = Crossbar(
            n_rows=len(self.fields), n_cols=2 * max_words,
            params=self.device_params,
            losses=losses or LineLossModel.ideal(),
            variability=variability or VariabilityModel.ideal(),
            rng=self._rng)
        self._words: list[dict[str, PCAMParams]] = []
        self._searches = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def searches(self) -> int:
        """Number of analog searches performed."""
        return self._searches

    # ------------------------------------------------------------------
    # Threshold encoding (log-conductance domain, cf. DevicePCAMCell)
    # ------------------------------------------------------------------
    def _normalise(self, threshold_v: float) -> float:
        v_lo, v_hi = self.v_range
        return (threshold_v - v_lo) / (v_hi - v_lo)

    def _denormalise(self, fraction: float) -> float:
        v_lo, v_hi = self.v_range
        return v_lo + fraction * (v_hi - v_lo)

    def _conductance_for(self, threshold_v: float) -> float:
        """Target conductance encoding a threshold (log domain)."""
        fraction = min(1.0, max(0.0, self._normalise(threshold_v)))
        g_min, g_max = self._crossbar.conductance_bounds
        log_g = math.log(g_min) + fraction * (math.log(g_max)
                                              - math.log(g_min))
        return math.exp(log_g)

    def _threshold_from_ratio(self, ratio: float) -> float:
        """Decode a conductance ratio back to a threshold voltage."""
        if ratio <= 0.0:
            return self._denormalise(0.0)
        window = math.log(self.device_params.resistance_window)
        fraction = min(1.0, max(0.0,
                                1.0 + math.log(min(1.0, ratio)) / window))
        return self._denormalise(fraction)

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def add(self, word: Mapping[str, PCAMParams]) -> int:
        """Program one policy word into two crossbar columns."""
        if set(word) != set(self.fields):
            raise ValueError(
                f"word fields {sorted(word)} != array fields "
                f"{sorted(self.fields)}")
        if len(self._words) >= self.max_words:
            raise ValueError(f"array full ({self.max_words} words)")
        for name, params in word.items():
            if params.m1 < self.v_range[0] or params.m4 > self.v_range[1]:
                raise ValueError(
                    f"field {name!r} thresholds outside encodable "
                    f"range {self.v_range}")
        index = len(self._words)
        self._words.append(dict(word))
        conductances = self._crossbar.conductances_copy()
        for row, field in enumerate(self.fields):
            params = word[field]
            conductances[row, 2 * index] = self._conductance_for(params.m2)
            conductances[row, 2 * index + 1] = \
                self._conductance_for(params.m3)
        write_energy = self._crossbar.program(conductances)
        self.ledger.charge(ACCOUNT_COMPUTE, write_energy)
        return index

    def word_params(self, index: int) -> dict[str, PCAMParams]:
        """The programmed parameters of one stored word."""
        if not 0 <= index < len(self._words):
            raise IndexError(f"word {index} out of range")
        return dict(self._words[index])

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: Mapping[str, float]) -> HardwareSearchResult:
        """One analog search of the query against every stored word.

        The query drives all wordlines at once (through the DAC); one
        crossbar operation yields every stored word's threshold
        responses in parallel — the single-cycle massively-parallel
        search that makes CAMs attractive.
        """
        missing = [field for field in self.fields if field not in query]
        if missing:
            raise KeyError(f"query missing fields: {missing}")
        if not self._words:
            return HardwareSearchResult(probabilities=np.zeros(0),
                                        best_index=None, energy_j=0.0,
                                        latency_s=self.READ_DURATION_S)
        # DAC conversion of each field's voltage.
        v_lo, v_hi = self.v_range
        voltages = np.empty(len(self.fields))
        for row, field in enumerate(self.fields):
            raw = float(query[field])
            fraction = (min(v_hi, max(v_lo, raw)) - self.dac.v_min) \
                / (self.dac.v_max - self.dac.v_min)
            voltages[row] = self.dac.quantize(fraction)
            self.ledger.charge(ACCOUNT_CONVERSION,
                               self.dac.energy_per_conversion_j)

        result = self._crossbar.matvec(voltages, self.READ_DURATION_S)
        self.ledger.charge(ACCOUNT_COMPUTE, result.energy_j)

        # One lossless reference read for the whole search; the decode
        # loop below only indexes into it per column.
        ideal_totals = self._crossbar.ideal_matvec(voltages)
        probabilities = np.empty(len(self._words))
        for index, word in enumerate(self._words):
            probabilities[index] = self._word_probability(
                index, word, voltages, result.currents_a, ideal_totals)
        best = int(np.argmax(probabilities))
        self._searches += 1
        return HardwareSearchResult(
            probabilities=probabilities, best_index=best,
            energy_j=result.energy_j, latency_s=result.duration_s)

    def _word_probability(self, index: int,
                          word: Mapping[str, PCAMParams],
                          voltages: np.ndarray,
                          currents: np.ndarray,
                          ideal_totals: np.ndarray) -> float:
        """Decode one word's thresholds and evaluate its match.

        The column currents are sums over fields; per-field currents
        are recovered from the programmed conductances and applied
        voltages (the sensing circuit of a real aCAM separates fields
        with per-cell match lines — the behavioural shortcut here
        keeps the same information with the array-level noise of the
        shared read.  The crossbar's *measured* total modulates the
        decode so array non-idealities propagate).
        """
        conductances = self._crossbar.conductances
        probability = 1.0
        for row, field in enumerate(self.fields):
            params = word[field]
            value = float(voltages[row])
            scale = 1.0
            for offset, anchor in ((0, "m2"), (1, "m3")):
                column = 2 * index + offset
                ideal_total = float(ideal_totals[column])
                measured_total = float(currents[column])
                if ideal_total > 0.0:
                    scale = measured_total / ideal_total
                g_cell = conductances[row, column]
                _, g_max = self._crossbar.conductance_bounds
                ratio = (g_cell / g_max) * scale
                decoded = self._threshold_from_ratio(
                    self.sense.sense(ratio, self._rng))
                delta = decoded - getattr(params, anchor)
                if anchor == "m2":
                    m1, m2 = params.m1 + delta, params.m2 + delta
                else:
                    m3, m4 = params.m3 + delta, params.m4 + delta
            if not (m1 < m2 <= m3 < m4):
                probability *= params.pmin
                continue
            jittered = PCAMCell(PCAMParams(
                m1=m1, m2=m2, m3=m3, m4=m4, sa=params.sa, sb=params.sb,
                pmax=params.pmax, pmin=params.pmin))
            probability *= jittered.response(value)
        return probability
