"""Device-realised pCAM cell: the transfer function on real memristors.

The ideal :class:`~repro.core.pcam_cell.PCAMCell` evaluates the paper's
piecewise-linear response exactly.  This module realises the same cell
on the simulated Nb:SrTiO3 devices, following the analog-CAM circuit
the paper builds on (Li et al., Nature Communications 2020 [30]): a
cell stores its acceptance window in **two threshold memristors** — one
encoding the lower edge of the match window, one the upper edge — and
the match line's analog level degrades as the input leaves the window.

Realisation model:

* The thresholds M2 (window low) and M3 (window high) are encoded as
  normalised conductances of the ``lo`` and ``hi`` devices over the
  cell's input-voltage range.
* An evaluation reads both devices *at the input voltage* (the search
  line drives the cell), decodes the thresholds back from the read
  currents, and produces the five-region response with the decoded —
  hence noisy — thresholds.  Programming error and cycle-to-cycle read
  noise therefore jitter the region boundaries, which is exactly how
  precision is lost in the physical array (RQ2).
* Each evaluation dissipates the Joule energy of the two device reads
  plus the sense amplifier energy; this is the energy that Figure 7's
  campaign integrates over the memristor dataset.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.crossbar.sensing import SenseAmplifier
from repro.device.memristor import MemristorParams, NbSTOMemristor
from repro.device.variability import VariabilityModel

__all__ = ["DevicePCAMCell", "EvaluationResult"]

#: Fallback read voltage when the input is too close to zero to carry
#: usable signal [V].
_MIN_READ_VOLTAGE = 0.05


class EvaluationResult:
    """Probability plus physical cost of one device-cell evaluation."""

    __slots__ = ("probability", "energy_j", "latency_s")

    def __init__(self, probability: float, energy_j: float,
                 latency_s: float) -> None:
        self.probability = probability
        self.energy_j = energy_j
        self.latency_s = latency_s

    def __repr__(self) -> str:
        return (f"EvaluationResult(p={self.probability:.4f}, "
                f"E={self.energy_j:.3e} J)")


class DevicePCAMCell:
    """A pCAM cell realised on two simulated threshold memristors.

    Parameters
    ----------
    params:
        The programmed eight-parameter response.
    v_range:
        (min, max) input-voltage range the thresholds are encoded over;
        must contain [M1, M4].
    device_params:
        Memristor technology parameters.
    variability:
        Device noise model (programming and read noise both derive
        from it).
    sense:
        Sense amplifier non-idealities.
    read_duration_s:
        Read pulse width per evaluation (1 ns reference).
    rng:
        Random generator.
    """

    def __init__(self, params: PCAMParams,
                 v_range: tuple[float, float] = (-2.0, 4.0),
                 device_params: MemristorParams | None = None,
                 variability: VariabilityModel | None = None,
                 sense: SenseAmplifier | None = None,
                 read_duration_s: float = 1e-9,
                 rng: np.random.Generator | None = None) -> None:
        v_lo, v_hi = v_range
        if v_lo >= v_hi:
            raise ValueError(f"invalid voltage range: {v_range!r}")
        if params.m1 < v_lo or params.m4 > v_hi:
            raise ValueError(
                f"[M1, M4] = [{params.m1}, {params.m4}] outside the "
                f"encodable range {v_range!r}")
        self.v_range = (float(v_lo), float(v_hi))
        self.device_params = device_params or MemristorParams()
        self.variability = variability or VariabilityModel()
        self.sense = sense or SenseAmplifier.ideal()
        self.read_duration_s = read_duration_s
        self._rng = rng or np.random.default_rng()
        self._ideal = PCAMCell(params)
        self._lo = NbSTOMemristor(params=self.device_params,
                                  variability=self.variability,
                                  rng=self._rng)
        self._hi = NbSTOMemristor(params=self.device_params,
                                  variability=self.variability,
                                  rng=self._rng)
        self._reference = NbSTOMemristor(
            params=self.device_params, state=1.0,
            variability=VariabilityModel.ideal())
        self.programming_energy_j = 0.0
        self.program(params)

    # ------------------------------------------------------------------
    # Threshold encoding
    # ------------------------------------------------------------------
    def _normalise(self, threshold_v: float) -> float:
        v_lo, v_hi = self.v_range
        return (threshold_v - v_lo) / (v_hi - v_lo)

    def _denormalise(self, fraction: float) -> float:
        v_lo, v_hi = self.v_range
        return v_lo + fraction * (v_hi - v_lo)

    def program(self, params: PCAMParams) -> float:
        """Program both threshold devices; returns the write energy [J].

        This is the hardware half of ``update_pCAM()``: M2 goes into
        the ``lo`` device, M3 into the ``hi`` device, and the outer
        thresholds M1/M4 ride along as fixed offsets from them.  The
        threshold is encoded as the device's internal (log-conductance)
        state over the cell's voltage range.
        """
        self._ideal.program(params)
        energy = 0.0
        for device, threshold in ((self._lo, params.m2),
                                  (self._hi, params.m3)):
            energy += device.program_state(self._normalise(threshold),
                                           tolerance=0.002)
        self.programming_energy_j += energy
        return energy

    @property
    def params(self) -> PCAMParams:
        """The currently programmed (intended) parameters."""
        return self._ideal.params

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _decode_threshold(self, device: NbSTOMemristor,
                          read_voltage: float) -> tuple[float, float]:
        """Read one device and decode (threshold_hat, read_energy).

        The threshold is encoded in the *log-conductance* domain (the
        natural control variable of the device), so the decode inverts
        ``G(s)/G_on`` logarithmically.  Multiplicative read noise then
        perturbs the threshold additively and mildly — a 3% current
        noise moves the decoded threshold by only ~0.2% of the range.
        """
        read = device.read(read_voltage, self.read_duration_s)
        full_scale = self._reference.current(read_voltage, noisy=False)
        sensed = self.sense.sense(read.current_a, self._rng)
        # At reverse bias both currents are negative; the conductance
        # ratio is their (positive) quotient either way.
        ratio = sensed / full_scale if full_scale != 0.0 else 0.0
        if ratio <= 0.0:
            fraction = 0.0
        else:
            window = math.log(self.device_params.resistance_window)
            fraction = min(1.0, max(
                0.0, 1.0 + math.log(min(1.0, ratio)) / window))
        return self._denormalise(fraction), read.energy_j

    def evaluate(self, value: float) -> EvaluationResult:
        """Match the input against the cell on the physical devices.

        The input drives the cell's search line; both threshold
        devices are read at that voltage, the thresholds are decoded
        back (with noise), and the five-region response is produced
        with the decoded boundaries.
        """
        read_voltage = value
        if abs(read_voltage) < _MIN_READ_VOLTAGE:
            # Near-zero inputs carry no signal; the cell falls back to
            # its reference read rail to recover the thresholds.
            read_voltage = self.device_params.v_reference
        lo_hat, lo_energy = self._decode_threshold(self._lo, read_voltage)
        hi_hat, hi_energy = self._decode_threshold(self._hi, read_voltage)

        p = self._ideal.params
        delta_lo = lo_hat - p.m2
        delta_hi = hi_hat - p.m3
        m1, m2 = p.m1 + delta_lo, p.m2 + delta_lo
        m3, m4 = p.m3 + delta_hi, p.m4 + delta_hi
        if not (m1 < m2 <= m3 < m4):
            # Noise collapsed the window: the cell degenerates to a
            # mismatch output, which is what the saturated circuit does.
            probability = p.pmin
        else:
            jittered = PCAMCell(PCAMParams(
                m1=m1, m2=m2, m3=m3, m4=m4,
                sa=p.sa, sb=p.sb, pmax=p.pmax, pmin=p.pmin))
            probability = jittered.response(value)
        energy = lo_energy + hi_energy + self.sense.energy_per_sense_j
        return EvaluationResult(probability=probability,
                                energy_j=energy,
                                latency_s=self.read_duration_s)

    def response(self, value: float) -> float:
        """Probability-only view (protocol-compatible with PCAMCell)."""
        return self.evaluate(value).probability

    def __call__(self, value: float) -> float:
        return self.response(value)

    def relax(self, elapsed_s: float) -> None:
        """Apply retention drift to both threshold devices.

        Over long idle periods the programmed thresholds creep toward
        the devices' stable attractor; the controller counters this by
        periodically re-running :meth:`program` (refresh), exactly as
        a DRAM-style scrub.
        """
        self._lo.relax(elapsed_s)
        self._hi.relax(elapsed_s)

    def refresh(self) -> float:
        """Reprogram the current parameters (drift scrub); returns the
        programming energy spent [J]."""
        return self.program(self._ideal.params)

    def evaluate_array(self, values: np.ndarray
                       ) -> tuple[np.ndarray, float]:
        """Evaluate a batch of inputs: (probabilities, total energy [J]).

        Each input is matched with fresh device noise — the physical
        array re-reads its threshold devices on every applied search
        voltage, so the per-read loop *is* the hardware behaviour; the
        batch entry point exists so device-backed pipelines share the
        ideal path's API.
        """
        x = np.asarray(values, dtype=float)
        probabilities = np.empty(x.size)
        energy = 0.0
        for index, value in enumerate(x.ravel()):
            result = self.evaluate(float(value))
            probabilities[index] = result.probability
            energy += result.energy_j
        return probabilities.reshape(x.shape), energy

    def response_array(self, values: np.ndarray) -> np.ndarray:
        """Evaluate each input with fresh device noise."""
        return self.evaluate_array(values)[0]

    def ideal_response_array(self, values: np.ndarray) -> np.ndarray:
        """The programmed (noise-free) response for error analysis."""
        return self._ideal.response_array(values)

    def __repr__(self) -> str:
        return f"DevicePCAMCell({self._ideal!r})"
