"""The analog match-action table (paper Sec. 5, ``table analogAQM``).

The paper's table abstraction has three sections::

    table analogAQM {
        read   { sojourn_time; d/dt(sojourn_time); ... }
        output { AQM(); }
        action { update_pCAM(); }
    }

* **read** — the packet/queue fields the parser feeds the table,
* **output** — the analog pipeline producing the raw voltage, which
  "can be used directly (like PDP for AQM) or indirectly by fetching
  the stored actions related to the given output",
* **action** — run against the output, typically ``update_pCAM()`` to
  adapt the table's own parameters.

:class:`AnalogMatchActionTable` implements that structure on a
:class:`~repro.core.pcam_pipeline.PCAMPipeline`;
:class:`StoredActionMemory` implements the indirect path (memristor-
based storage of actions keyed by output level, the "Memristor-based
Storage" boxes in Figure 5).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.pcam_pipeline import PCAMPipeline

__all__ = [
    "AnalogMatchActionTable",
    "StoredActionMemory",
    "TableResult",
]


@dataclass(frozen=True)
class TableResult:
    """Outcome of one table lookup."""

    output: float
    features: Mapping[str, float]
    action_taken: str | None = None
    fetched_action: object | None = None
    energy_j: float = 0.0


class StoredActionMemory:
    """Action storage addressed by analog output level.

    Models the "Memristor-based Storage" block next to each pCAM in
    Figure 5: the raw analog output selects a stored action by range.
    Ranges are half-open ``[lower, upper)`` over the output domain and
    must not overlap.
    """

    def __init__(self) -> None:
        self._bounds: list[tuple[float, float]] = []
        self._actions: list[object] = []

    def store(self, lower: float, upper: float, action: object) -> None:
        """Associate an action with the output range [lower, upper)."""
        if lower >= upper:
            raise ValueError(f"empty range: [{lower}, {upper})")
        for existing_lower, existing_upper in self._bounds:
            if lower < existing_upper and existing_lower < upper:
                raise ValueError(
                    f"range [{lower}, {upper}) overlaps "
                    f"[{existing_lower}, {existing_upper})")
        index = bisect.bisect(self._bounds, (lower, upper))
        self._bounds.insert(index, (lower, upper))
        self._actions.insert(index, action)

    def fetch(self, output: float) -> object | None:
        """The action stored for this output level, or None."""
        index = bisect.bisect(self._bounds, (output, float("inf"))) - 1
        if index < 0:
            return None
        lower, upper = self._bounds[index]
        if lower <= output < upper:
            return self._actions[index]
        return None

    def __len__(self) -> int:
        return len(self._bounds)


class AnalogMatchActionTable:
    """read / output / action, as in the paper's ``analogAQM`` table.

    Parameters
    ----------
    name:
        Table name (for ledger accounts and controller registry).
    reads:
        The field names the table consumes, in stage order; they must
        match the pipeline's stage names.
    pipeline:
        The analog pipeline computing the output.
    action:
        Optional callable ``action(table, output, features)`` invoked
        after every lookup; the paper's ``update_pCAM()`` adaptation
        hooks in here.  Its return value (a short description string,
        or None for "no action") is surfaced in the result.
    action_memory:
        Optional :class:`StoredActionMemory` for the indirect path.
    """

    def __init__(self, name: str, reads: Sequence[str],
                 pipeline: PCAMPipeline,
                 action: Callable[["AnalogMatchActionTable", float,
                                   Mapping[str, float]], str | None]
                 | None = None,
                 action_memory: StoredActionMemory | None = None) -> None:
        if not name:
            raise ValueError("table needs a name")
        if tuple(reads) != pipeline.stage_names:
            raise ValueError(
                f"read fields {tuple(reads)} must equal pipeline stages "
                f"{pipeline.stage_names}")
        self.name = name
        self.reads = tuple(reads)
        self.pipeline = pipeline
        self.action = action
        self.action_memory = action_memory
        self._lookups = 0

    @property
    def lookups(self) -> int:
        """Number of table lookups processed."""
        return self._lookups

    def process(self, fields: Mapping[str, float]) -> TableResult:
        """One full read -> output -> action cycle."""
        missing = [name for name in self.reads if name not in fields]
        if missing:
            raise KeyError(f"table {self.name!r} missing fields: {missing}")
        features = {name: float(fields[name]) for name in self.reads}
        output, energy = self.pipeline.evaluate_with_energy(features)
        action_taken: str | None = None
        if self.action is not None:
            action_taken = self.action(self, output, features)
        fetched = (self.action_memory.fetch(output)
                   if self.action_memory is not None else None)
        self._lookups += 1
        return TableResult(output=output, features=features,
                           action_taken=action_taken,
                           fetched_action=fetched, energy_j=energy)

    def __repr__(self) -> str:
        return (f"AnalogMatchActionTable({self.name!r}, "
                f"reads={list(self.reads)})")
