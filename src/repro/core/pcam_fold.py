"""Constant-folded uniform evaluation of a pCAM pipeline.

The batched AQM admission path evaluates the whole pipeline over a
chunk whose feature columns are *uniform* — every packet in the chunk
is judged against the chunk-start queue state, so ``np.full(n, raw)``
per stage feeds :meth:`PCAMPipeline.evaluate_batch` with ``n``
identical rows and `n` identical outputs come back.  For plain
healthy linear cells that is pure overhead: one scalar evaluation
broadcast over the chunk is *bit-identical* (elementwise float64
ufuncs do not depend on batch length) at a fraction of the cost.

:func:`fold_pipeline` performs the constant-folding pass: it captures
each stage's eight parameters — including the ramp intercepts, which
``response_array`` re-divides on every call — into flat floats, and
returns a :class:`FoldedPCAMPipeline` whose
:meth:`~FoldedPCAMPipeline.evaluate_uniform` replicates the exact
expression tree of :meth:`PCAMCell.response_array` (linear branch)
plus the sequential composition reduce.  Folding refuses anything
whose uniform output cannot be proven equal to the batch kernel's:

* device-realised or otherwise subclassed cells (their response may
  be stochastic per element, or consume RNG state per draw);
* cells with an injected fault (read-noise faults draw per-element);
* non-linear ramp shapes (kept on the one true batch path);
* a pipeline with a tracer or profiler attached (the folded kernel
  opens no spans and bypasses the ``@profiled`` batch entry point).

Validity is re-checked cheaply per call site via
:meth:`FoldedPCAMPipeline.matches`: ``program()`` replaces a cell's
frozen :class:`PCAMParams` object, so parameter *identity* plus the
fault slot revalidates the fold — reprogramming or fault injection
invalidates it naturally and the caller re-folds (or falls back).

When :mod:`numba` is importable the folded scalar kernel is
additionally lowered to a jitted function over a constants matrix
(:data:`LOWERING` reports which backend is active); the pure-Python/
NumPy form is the hermetic fallback and the reference the lowering
must agree with bit-for-bit (``tests/test_pcam_fold.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pcam_cell import PCAMCell
from repro.core.pcam_pipeline import BATCH_COMPOSITIONS, PCAMPipeline

__all__ = ["FoldedPCAMPipeline", "FoldedStage", "LOWERING",
           "fold_pipeline"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # the hermetic CI container has no numba
    _numba = None

#: Active lowering backend for the folded scalar kernel.
LOWERING = "numba" if _numba is not None else "python"

#: Column layout of the per-stage constants matrix the lowered kernel
#: consumes: thresholds, slopes, rails, precomputed ramp intercepts,
#: clip flag.
_CONST_COLUMNS = ("m1", "m2", "m3", "m4", "sa", "sb", "pmin", "pmax",
                  "rise_const", "fall_const", "clip")


def _stage_response(c: np.ndarray, x: float) -> float:
    """One folded five-region response; mirrors ``response_array``.

    ``c`` is one row of the constants matrix (indexed, not unpacked,
    so the identical function body lowers through numba).  The branch
    order is exactly the ``np.select`` condition order of the batch
    kernel, and the ramp expressions reuse the intercepts the fold
    precomputed — the division is deterministic, so folding it is
    exact.
    """
    pmin = c[6]
    pmax = c[7]
    if x <= c[0] or x >= c[3]:
        out = pmin
    elif x > c[2]:
        out = c[5] * x + c[9]
    elif x < c[1]:
        out = c[4] * x + c[8]
    else:
        out = pmax
    if c[10] != 0.0:
        out = min(pmax, max(pmin, out))
    return out


if _numba is not None:  # pragma: no cover - numba-only lowering
    _stage_response_lowered = _numba.njit(cache=False)(_stage_response)

    @_numba.njit(cache=False)
    def _product_lowered(consts, values):
        out = 1.0
        for index in range(consts.shape[0]):
            out *= _stage_response_lowered(consts[index], values[index])
        return out

    @_numba.njit(cache=False)
    def _min_lowered(consts, values):
        out = _stage_response_lowered(consts[0], values[0])
        for index in range(1, consts.shape[0]):
            probability = _stage_response_lowered(consts[index],
                                                  values[index])
            if probability < out:
                out = probability
        return out


class FoldedStage:
    """One stage's constants plus its validity tokens."""

    __slots__ = ("cell", "params")

    def __init__(self, cell: PCAMCell) -> None:
        self.cell = cell
        self.params = cell.params

    def constants(self) -> list[float]:
        """The stage's row of the constants matrix."""
        p = self.params
        # Identical fold of the zero-width-ramp guard the batch kernel
        # applies before dividing.
        rise_span = (p.m2 - p.m1) if p.m2 > p.m1 else 1.0
        fall_span = (p.m4 - p.m3) if p.m4 > p.m3 else 1.0
        return [p.m1, p.m2, p.m3, p.m4, p.sa, p.sb, p.pmin, p.pmax,
                (p.m2 * p.pmin - p.m1 * p.pmax) / rise_span,
                (p.m4 * p.pmax - p.m3 * p.pmin) / fall_span,
                1.0 if self.cell.clip_to_rails else 0.0]

    def valid(self) -> bool:
        """Cheap revalidation: same frozen params, still healthy."""
        cell = self.cell
        return cell.params is self.params and cell.fault is None


class FoldedPCAMPipeline:
    """A pipeline constant-folded for uniform (broadcast) evaluation.

    Built by :func:`fold_pipeline`; evaluate with
    :meth:`evaluate_uniform` after :meth:`matches` confirms the fold
    is still current.
    """

    def __init__(self, pipeline: PCAMPipeline,
                 stages: Sequence[FoldedStage]) -> None:
        self.pipeline = pipeline
        self.stage_names = pipeline.stage_names
        self.composition = pipeline.composition
        self._stages = tuple(stages)
        self._consts = np.array(
            [stage.constants() for stage in stages], dtype=float)
        self._cells = tuple(stage.cell for stage in stages)
        self._lowered = None
        if _numba is not None and self.composition in ("product", "min"):
            self._lowered = (_product_lowered
                             if self.composition == "product"
                             else _min_lowered)

    def __len__(self) -> int:
        return len(self._stages)

    @property
    def lowering(self) -> str:
        """Backend evaluating this fold (``numba`` or ``python``)."""
        return "numba" if self._lowered is not None else "python"

    def matches(self, pipeline: PCAMPipeline) -> bool:
        """True while the fold still describes ``pipeline`` exactly.

        Reprogramming a stage (``update_pCAM``) replaces its frozen
        params object and fault injection populates the fault slot, so
        identity checks catch every invalidation; attaching a tracer
        or profiler demotes to the batch path for observability.
        """
        if pipeline is not self.pipeline:
            return False
        if pipeline.tracer is not None or pipeline.profiler is not None:
            return False
        return all(stage.valid() for stage in self._stages)

    def evaluate_uniform(self, values: Sequence[float],
                         count: int = 1) -> float:
        """Composite probability of one feature vector, counted as
        ``count`` evaluations.

        ``values`` are voltage-domain features in stage order.  Every
        cell's evaluation counter advances by ``count`` — exactly what
        ``response_array`` over a ``count``-row uniform batch records
        — so hardware-utilisation accounting cannot tell the folded
        and batch paths apart.
        """
        for cell in self._cells:
            cell.tally_evaluations(count)
        if self._lowered is not None:  # pragma: no cover - numba-only
            try:
                return float(self._lowered(
                    self._consts, np.asarray(values, dtype=float)))
            except Exception:
                # Lowering failed (e.g. unsupported platform): demote
                # to the pure-Python kernel permanently for this fold.
                self._lowered = None
        consts = self._consts
        probabilities = [_stage_response(consts[index], float(value))
                         for index, value in enumerate(values)]
        if self.composition == "product":
            # np.prod reduces sequentially left-to-right for short
            # axes (pairwise blocking starts far above 8 stages), so a
            # scalar chain is bit-identical.
            out = 1.0
            for probability in probabilities:
                out *= probability
            return out
        if self.composition == "min":
            return min(probabilities)
        # geometric / mean involve a pow or division whose scalar
        # libm rounding is not guaranteed to match NumPy's — run the
        # actual batch reduce over one column instead.
        column = np.asarray(probabilities, dtype=float).reshape(-1, 1)
        return float(BATCH_COMPOSITIONS[self.composition](column)[0])


def fold_pipeline(pipeline: PCAMPipeline) -> FoldedPCAMPipeline | None:
    """Constant-fold a pipeline, or ``None`` when exactness is unprovable.

    Only plain healthy linear :class:`PCAMCell` stages fold — exactly
    the cases where broadcasting one scalar evaluation is bit-equal to
    the batch kernel.  Device cells, injected faults, non-linear ramps
    and attached observability hooks all refuse (the caller keeps the
    staged/batched path).
    """
    if pipeline.tracer is not None or pipeline.profiler is not None:
        return None
    # "mean" reduces through np.add.reduce, whose pairwise summation
    # order depends on operand contiguity — a (n_stages, 1) column
    # and a (n_stages, n) matrix can round the last ulp differently,
    # so uniform-broadcast equality is unprovable.  The multiplicative
    # and min reduces are strictly sequential at these widths.
    if pipeline.composition not in ("product", "min", "geometric"):
        return None
    stages: list[FoldedStage] = []
    for name in pipeline.stage_names:
        cell = pipeline.stage(name)
        if type(cell) is not PCAMCell:
            return None
        if cell.fault is not None or cell.nonlinearity != "linear":
            return None
        stages.append(FoldedStage(cell))
    return FoldedPCAMPipeline(pipeline, stages)
