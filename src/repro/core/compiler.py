"""Precision-aware placement of network functions (RQ2).

"Network functions like IP lookup and IP firewall have high thresholds
for precision than the network functions like AQM, traffic analysis,
etc.  Hence, an understanding of the packet processing pipeline is
required in order to integrate the digital and analog components
(TCAMs and pCAMs) for various network functions."

The :class:`CognitiveCompiler` performs that integration: given the
analog substrate's error sources (DAC quantization, device read noise,
line losses, crosstalk, sense gain error) it estimates the worst-case
relative error of an analog placement and assigns each declared
network function to the digital (TCAM) or analog (pCAM) domain.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.crossbar.converters import DAC
from repro.crossbar.losses import LineLossModel
from repro.crossbar.sensing import SenseAmplifier
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel

__all__ = [
    "AnalogErrorBudget",
    "CognitiveCompiler",
    "CompilationError",
    "Domain",
    "FunctionKind",
    "NetworkFunctionSpec",
    "Placement",
    "PrecisionClass",
]


class PrecisionClass(enum.Enum):
    """How much relative match error a function tolerates."""

    #: Exact-match semantics (IP lookup, firewall): effectively zero
    #: tolerance, must stay digital.
    HIGH = 1e-6
    #: Statistical functions sensitive to bias (load balancing).
    MEDIUM = 5e-2
    #: Control-loop functions that average out noise (AQM, traffic
    #: analysis).
    LOW = 1e-1

    @property
    def tolerance(self) -> float:
        """Maximum tolerable relative match error for this class."""
        return self.value


class FunctionKind(enum.Enum):
    """Whether the function needs probabilistic (analog) outputs."""

    DETERMINISTIC = "deterministic"
    COGNITIVE = "cognitive"


class Domain(enum.Enum):
    """Placement target."""

    DIGITAL_TCAM = "digital_tcam"
    ANALOG_PCAM = "analog_pcam"


@dataclass(frozen=True)
class NetworkFunctionSpec:
    """A network function declared to the controller for placement."""

    name: str
    precision: PrecisionClass
    kind: FunctionKind
    n_fields: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("function needs a name")
        if self.n_fields < 1:
            raise ValueError(f"n_fields must be >= 1: {self.n_fields!r}")


class CompilationError(Exception):
    """A function's requirements cannot be met by any domain."""


@dataclass(frozen=True)
class AnalogErrorBudget:
    """Relative error contributions of the analog signal path.

    Individual terms are relative (fraction of full scale); the total
    combines them root-sum-square, the standard budget arithmetic for
    independent error sources.
    """

    quantization: float
    device_noise: float
    line_loss: float
    crosstalk: float
    sense_gain: float

    @property
    def total(self) -> float:
        """Root-sum-square of all error contributions."""
        return math.sqrt(self.quantization ** 2
                         + self.device_noise ** 2
                         + self.line_loss ** 2
                         + self.crosstalk ** 2
                         + self.sense_gain ** 2)

    def dominant_term(self) -> str:
        """Name of the largest contribution (for diagnostics)."""
        terms = {
            "quantization": self.quantization,
            "device_noise": self.device_noise,
            "line_loss": self.line_loss,
            "crosstalk": self.crosstalk,
            "sense_gain": self.sense_gain,
        }
        return max(terms, key=terms.get)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Placement:
    """Result of compiling a set of function specs onto the pipeline."""

    analog: tuple[NetworkFunctionSpec, ...]
    digital: tuple[NetworkFunctionSpec, ...]
    budget: AnalogErrorBudget
    rationale: dict[str, str] = field(default_factory=dict)

    def domain_of(self, name: str) -> Domain:
        """The domain a named function was placed in."""
        if any(spec.name == name for spec in self.analog):
            return Domain.ANALOG_PCAM
        if any(spec.name == name for spec in self.digital):
            return Domain.DIGITAL_TCAM
        raise KeyError(f"function {name!r} not in placement")


class CognitiveCompiler:
    """Maps declared network functions onto TCAM/pCAM resources.

    Parameters describe the analog substrate the placement would use;
    the compiler never builds hardware itself, it only budgets error
    and decides domains (the cognitive network controller then
    programs the actual tables).
    """

    def __init__(self,
                 dac: DAC | None = None,
                 losses: LineLossModel | None = None,
                 variability: VariabilityModel | None = None,
                 sense: SenseAmplifier | None = None,
                 device_params: MemristorParams | None = None,
                 array_rows: int = 64,
                 array_cols: int = 64) -> None:
        if array_rows < 1 or array_cols < 1:
            raise ValueError("array geometry must be positive")
        self.dac = dac or DAC()
        self.losses = losses or LineLossModel()
        self.variability = variability or VariabilityModel()
        self.sense = sense or SenseAmplifier.ideal()
        self.device_params = device_params or MemristorParams()
        self.array_rows = array_rows
        self.array_cols = array_cols

    # ------------------------------------------------------------------
    # Error budgeting
    # ------------------------------------------------------------------
    def error_budget(self) -> AnalogErrorBudget:
        """Worst-case relative error of one analog match evaluation."""
        # Half an LSB of the input DAC, relative to full scale.
        quantization = 0.5 / (self.dac.levels - 1)
        # Log-normal read noise: relative sigma ~ exp(sigma) - 1.
        device_noise = math.expm1(self.variability.read_sigma)
        # IR drop at the farthest cell, using the representative
        # mid-window resistance (geometric mean of the device window):
        # analog weights are programmed around the middle of the
        # window, not pinned at the extreme LRS.
        r_mid = math.sqrt(self.device_params.r_on * self.device_params.r_off)
        distance = self.array_rows + self.array_cols - 2
        series = distance * self.losses.wire_resistance_per_cell_ohm
        line_loss = series / (series + r_mid)
        crosstalk = 2.0 * self.losses.crosstalk_fraction
        sense_gain = abs(self.sense.gain_error)
        return AnalogErrorBudget(quantization=quantization,
                                 device_noise=device_noise,
                                 line_loss=line_loss,
                                 crosstalk=crosstalk,
                                 sense_gain=sense_gain)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, specs: list[NetworkFunctionSpec]) -> Placement:
        """Assign every function to a domain, or raise.

        Rules (in order):

        1. A :attr:`FunctionKind.COGNITIVE` function *requires* analog
           probabilistic outputs; if the analog error budget exceeds
           its precision tolerance, compilation fails with a
           diagnostic naming the dominant error source.
        2. A deterministic function goes analog only when that saves
           energy *and* meets its tolerance; otherwise it stays on the
           digital TCAM.  HIGH-precision functions always stay digital.
        """
        if not specs:
            raise ValueError("nothing to place")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function names: {names}")
        budget = self.error_budget()
        analog: list[NetworkFunctionSpec] = []
        digital: list[NetworkFunctionSpec] = []
        rationale: dict[str, str] = {}
        for spec in specs:
            tolerance = spec.precision.tolerance
            fits_analog = budget.total <= tolerance
            if spec.kind is FunctionKind.COGNITIVE:
                if not fits_analog:
                    raise CompilationError(
                        f"{spec.name!r} needs analog outputs but the "
                        f"analog error ({budget.total:.4f}) exceeds its "
                        f"tolerance ({tolerance:.4f}); dominant source: "
                        f"{budget.dominant_term()}")
                analog.append(spec)
                rationale[spec.name] = (
                    f"cognitive function; analog error {budget.total:.4f} "
                    f"within tolerance {tolerance:.4f}")
            elif spec.precision is PrecisionClass.HIGH or not fits_analog:
                digital.append(spec)
                rationale[spec.name] = (
                    "deterministic function kept digital "
                    f"(tolerance {tolerance:.2e}, "
                    f"analog error {budget.total:.4f})")
            else:
                analog.append(spec)
                rationale[spec.name] = (
                    f"deterministic but tolerant; analog saves energy "
                    f"(error {budget.total:.4f} <= {tolerance:.4f})")
        return Placement(analog=tuple(analog), digital=tuple(digital),
                         budget=budget, rationale=rationale)
