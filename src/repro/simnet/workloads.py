"""Stateless columnar randomness for the traffic scenario engine.

The scenario harness streams tens of millions of packets in bounded
memory and must be *chunk-size invariant*: the same seed has to yield
byte-identical column streams whether the caller pulls 1k-packet or
1M-packet chunks.  Stateful generators (``np.random.Generator``)
cannot offer that — their stream position depends on how many variates
each chunk consumed — so every random quantity here is a pure function
of ``(seed, stream, packet index)``, evaluated with a vectorised
SplitMix64 hash:

* :func:`hash_u64` — the raw counter-based hash, one uint64 per index;
* :func:`uniforms` / :func:`integers` / :func:`pareto` — distribution
  helpers derived from it by inverse transform;
* :class:`ChunkColumns` — the structure-of-arrays packet chunk every
  scenario emits (times, sizes, flow ids, priorities and the decoded
  5-tuple), materialisable into :class:`repro.packet.Packet` lists for
  the dataplane.

Index-hashed randomness also makes streams trivially resumable (start
at any index) and seeds trivially independent — properties the
hypothesis suite in ``tests/test_scenario_properties.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.packet import Packet

__all__ = [
    "ChunkColumns",
    "hash_u64",
    "integers",
    "pareto",
    "stream_key",
    "uniforms",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: Stream identifiers: one per independent random purpose, so the
#: same packet index draws uncorrelated values for, say, its size and
#: its flow assignment.  Scenario modules may define further streams;
#: collisions across *scenarios* are harmless (the columns differ),
#: collisions within one scenario are bugs.
STREAM_TIME = 1
STREAM_FLOW = 2
STREAM_SIZE = 3
STREAM_PRIORITY = 4
STREAM_SRC = 5
STREAM_DST = 6
STREAM_SPORT = 7
STREAM_DPORT = 8
STREAM_PROTO = 9
STREAM_KIND = 10
STREAM_MIX = 11
STREAM_WEIGHT = 12


def _splitmix64_int(value: int) -> int:
    """Scalar SplitMix64 finaliser over Python ints (never wraps noisily)."""
    value = (value + _GOLDEN) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def stream_key(seed: int, stream: int) -> int:
    """The 64-bit key of one ``(seed, stream)`` pair."""
    return _splitmix64_int(
        _splitmix64_int(seed & _MASK64) ^ ((stream * _GOLDEN) & _MASK64))


def hash_u64(seed: int, stream: int,
             indices: np.ndarray) -> np.ndarray:
    """One uint64 hash per packet index, vectorised.

    Equivalent to evaluating the SplitMix64 sequence keyed by
    ``stream_key(seed, stream)`` at arbitrary positions — a
    counter-based generator, so chunk boundaries cannot shift the
    stream.
    """
    idx = np.asarray(indices, dtype=np.uint64)
    x = idx + np.uint64(stream_key(seed, stream))
    x = x + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def uniforms(seed: int, stream: int,
             indices: np.ndarray) -> np.ndarray:
    """Per-index uniforms in ``[0, 1)`` (53-bit mantissa)."""
    return (hash_u64(seed, stream, indices) >> np.uint64(11)).astype(
        np.float64) * (2.0 ** -53)


def integers(seed: int, stream: int, indices: np.ndarray,
             lo: int, hi: int) -> np.ndarray:
    """Per-index integers in ``[lo, hi)``."""
    if hi <= lo:
        raise ValueError(f"empty range: [{lo}, {hi})")
    span = np.uint64(hi - lo)
    return (hash_u64(seed, stream, indices) % span).astype(
        np.int64) + lo


def pareto(u: np.ndarray, alpha: float, x_m: float = 1.0) -> np.ndarray:
    """Inverse-transform Pareto samples (``>= x_m``) from uniforms."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive: {alpha!r}")
    return x_m * (1.0 - np.asarray(u, dtype=float)) ** (-1.0 / alpha)


_COLUMNS = ("times_s", "sizes_bytes", "flow_ids", "priorities",
            "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
            "has_dst")
_DTYPES = {
    "times_s": np.float64,
    "sizes_bytes": np.int64,
    "flow_ids": np.int64,
    "priorities": np.int64,
    "src_ip": np.uint32,
    "dst_ip": np.uint32,
    "src_port": np.int64,
    "dst_port": np.int64,
    "protocol": np.int64,
    "has_dst": np.bool_,
}


@dataclass(frozen=True, eq=False)
class ChunkColumns:
    """One structure-of-arrays chunk of a scenario's packet stream.

    Columns are normalised to fixed dtypes at construction so the
    byte representation (:meth:`tobytes`) is stable — the currency of
    the chunk-size-invariance and golden tests.  ``src_ip``/``dst_ip``
    are decoded uint32 addresses (the dataplane's
    :func:`~repro.dataplane.fastpath.ip_to_u32` accepts integers
    directly, skipping dotted-quad parsing on the hot path);
    ``has_dst`` marks packets that carry a destination header at all.
    """

    times_s: np.ndarray
    sizes_bytes: np.ndarray
    flow_ids: np.ndarray
    priorities: np.ndarray
    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    has_dst: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.times_s)
        for name in _COLUMNS:
            column = np.ascontiguousarray(
                np.asarray(getattr(self, name)), dtype=_DTYPES[name])
            if len(column) != n:
                raise ValueError(f"{name} length != times length")
            object.__setattr__(self, name, column)
        if n and np.any(np.diff(self.times_s) < 0):
            raise ValueError("chunk times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the chunk's columns."""
        return sum(getattr(self, name).nbytes for name in _COLUMNS)

    @property
    def duration_s(self) -> float:
        """Span from first to last arrival in the chunk [s]."""
        if len(self) == 0:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    def tobytes(self) -> bytes:
        """Canonical byte image of every column, in schema order."""
        return b"".join(getattr(self, name).tobytes()
                        for name in _COLUMNS)

    @classmethod
    def concat(cls, chunks: Iterable["ChunkColumns"]) -> "ChunkColumns":
        """Concatenate a chunk sequence into one chunk (test helper —
        materialises everything, so never use it on full streams)."""
        chunks = list(chunks)
        if not chunks:
            return cls(**{name: np.zeros(0, dtype=_DTYPES[name])
                          for name in _COLUMNS})
        return cls(**{name: np.concatenate(
            [getattr(chunk, name) for chunk in chunks])
            for name in _COLUMNS})

    def to_packets(self) -> list[Packet]:
        """Materialise the chunk as dataplane packets.

        Header fields carry the decoded integer addresses; a packet
        whose ``has_dst`` flag is clear omits ``dst_ip`` entirely,
        matching how the parser exposes destination-less frames.
        """
        times = self.times_s.tolist()
        sizes = self.sizes_bytes.tolist()
        flows = self.flow_ids.tolist()
        prios = self.priorities.tolist()
        srcs = self.src_ip.tolist()
        dsts = self.dst_ip.tolist()
        sports = self.src_port.tolist()
        dports = self.dst_port.tolist()
        protos = self.protocol.tolist()
        present = self.has_dst.tolist()
        packets: list[Packet] = []
        for i in range(len(times)):
            fields = {"src_ip": srcs[i], "src_port": sports[i],
                      "dst_port": dports[i], "protocol": protos[i]}
            if present[i]:
                fields["dst_ip"] = dsts[i]
            packets.append(Packet(size_bytes=sizes[i], flow_id=flows[i],
                                  priority=prios[i], fields=fields,
                                  created_at=times[i]))
        return packets
