"""Internet-scale traffic scenarios: named, seeded, streamed workloads.

The paper's claim is cognitive *behaviour* under real traffic, not a
single throughput point: the pCAM AQM holding its 20 ms delay target
through bursts, the flow cache surviving (or honestly collapsing
under) adversarial 5-tuple churn, the degradation supervisor staying
quiet on healthy hardware.  This module turns those workloads into a
regression surface:

* a :class:`Scenario` registry of named, seeded workloads — heavy
  tails (elephants/mice), diurnal load, flash crowds, DDoS floods
  (SYN and amplification shapes), scan sweeps and flow-cache-
  adversarial churn — each streamed as
  :class:`~repro.simnet.workloads.ChunkColumns` chunks so memory
  stays flat at tens of millions of packets;
* :func:`run_scenario` — drives a whole stream through a
  :func:`~repro.dataplane.switch.build_switch` pipeline (flow cache,
  AQM, degradation supervision, optional observability hub), drains
  egress at line rate between admission slices, and folds windowed
  behavioural metrics into a :class:`ScenarioReport`;
* :func:`publish_reports` — serialises a report matrix into the
  ``BENCH_scenarios.json`` artifact CI archives.

Seed discipline: every random quantity is a pure function of
``(seed, stream, packet index)`` (see :mod:`repro.simnet.workloads`),
so the same seed yields byte-identical streams regardless of chunk
size, distinct seeds yield distinct streams, and any index range can
be generated without replaying its prefix.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.simnet.workloads import (
    STREAM_DPORT,
    STREAM_DST,
    STREAM_FLOW,
    STREAM_KIND,
    STREAM_MIX,
    STREAM_PRIORITY,
    STREAM_PROTO,
    STREAM_SIZE,
    STREAM_SPORT,
    STREAM_SRC,
    STREAM_TIME,
    STREAM_WEIGHT,
    ChunkColumns,
    hash_u64,
    integers,
    pareto,
    uniforms,
)

__all__ = [
    "BASE_RATE_PPS",
    "Scenario",
    "ScenarioReport",
    "ScenarioWindow",
    "default_switch_spec",
    "iter_scenarios",
    "publish_reports",
    "register_scenario",
    "run_scenario",
    "scenario",
    "scenario_names",
    "traffic_classes_expected",
    "traffic_classes_spec",
    "traffic_classes_tree",
]

#: Aggregate benign arrival rate every scenario is scaled around
#: [packets/s].  Against the default spec (3 ports x 200 Mb/s) this
#: sits at ~40% line utilisation, leaving floods room to overload.
BASE_RATE_PPS = 30_000.0
_BASE_GAP_S = 1.0 / BASE_RATE_PPS


def _ip(a: int, b: int, c: int, d: int) -> int:
    return (a << 24) | (b << 16) | (c << 8) | d


#: Address plan shared by every scenario (matches the default spec's
#: routing table, so one switch serves the whole matrix).
CLIENT_BASE = _ip(100, 64, 0, 0)        # CGNAT client space
VICTIM_IP = _ip(10, 9, 9, 9)            # routed to port 0
HOT_IP = _ip(192, 168, 7, 7)            # flash-crowd target, port 1
SCANNER_IP = _ip(100, 66, 6, 6)
DENIED_BASE = _ip(203, 0, 113, 0)       # ACL DENY prefix
UNROUTED_BASE = _ip(8, 0, 0, 0)         # no route -> dropped

#: flow-id namespaces so synthetic flow families never collide.
_CROWD_FLOWS = 10_000_000
_SYN_FLOWS = 20_000_000
_AMP_FLOWS = 30_000_000
_SCAN_FLOWS = 40_000_000
_CHURN_FLOWS = 50_000_000
_CLASS_FLOWS = 3_000


# ----------------------------------------------------------------------
# Arrival-time curves
# ----------------------------------------------------------------------
def _times(seed: int, idx: np.ndarray, gap_s: float,
           warp: Callable[[np.ndarray], np.ndarray] | None = None
           ) -> np.ndarray:
    """Non-decreasing arrival times, jittered inside each local gap.

    ``warp`` maps packet index to a warped position whose local slope
    sets the instantaneous rate (slope ``1/m`` = ``m`` times the base
    rate).  Jitter is scaled by the local gap so monotonicity holds
    for any monotone warp, and every timestamp depends only on its own
    index — the chunk-size-invariance guarantee extends to time.
    """
    x = idx.astype(np.float64)
    if warp is None:
        position = x
        local_gap = 1.0
    else:
        position = warp(x)
        local_gap = warp(x + 1.0) - position
    jitter = uniforms(seed, STREAM_TIME, idx)
    return (position + 0.999 * jitter * local_gap) * gap_s


def _surge_warp(n_total: int, x0: float, x1: float,
                multiplier: float) -> Callable[[np.ndarray], np.ndarray]:
    """Piecewise-linear warp: rate x ``multiplier`` inside [x0, x1)."""
    i0, i1 = x0 * n_total, x1 * n_total

    def warp(x: np.ndarray) -> np.ndarray:
        inside = np.clip(x, i0, i1) - i0
        return (np.minimum(x, i0) + inside / multiplier
                + np.maximum(x - i1, 0.0))

    return warp


def _diurnal_warp(n_total: int, cycles: float,
                  amplitude: float) -> Callable[[np.ndarray], np.ndarray]:
    """Smooth warp whose local rate swings ``1/(1 +- amplitude)``."""
    omega = 2.0 * np.pi * cycles / max(n_total, 1)

    def warp(x: np.ndarray) -> np.ndarray:
        return x + (amplitude / omega) * (1.0 - np.cos(omega * x))

    return warp


# ----------------------------------------------------------------------
# Column builders
# ----------------------------------------------------------------------
def _five_tuple(seed: int, key: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                           np.ndarray, np.ndarray]:
    """A deterministic 5-tuple per flow key (uint64 array).

    Sources come from CGNAT client space; destinations spread across
    the three routed pools of the default spec, so a hashed flow is
    always forwardable unless a scenario overrides it.
    """
    h_src = hash_u64(seed, STREAM_SRC, key)
    src = np.uint64(CLIENT_BASE) + h_src % np.uint64(1 << 22)
    h_dst = hash_u64(seed, STREAM_DST, key)
    pool = h_dst % np.uint64(3)
    host = h_dst >> np.uint64(8)
    pool_10 = np.uint64(_ip(10, 0, 0, 0)) + host % np.uint64(1 << 24)
    pool_192 = np.uint64(_ip(192, 168, 0, 0)) + host % np.uint64(1 << 16)
    pool_172 = np.uint64(_ip(172, 16, 0, 0)) + host % np.uint64(1 << 20)
    dst = np.where(pool == 0, pool_10,
                   np.where(pool == 1, pool_192, pool_172))
    sport = (hash_u64(seed, STREAM_SPORT, key)
             % np.uint64(60_000)).astype(np.int64) + 1024
    services = np.array([80, 443, 53, 8080], dtype=np.int64)
    dport = services[(hash_u64(seed, STREAM_DPORT, key)
                      % np.uint64(4)).astype(np.int64)]
    proto = np.where(hash_u64(seed, STREAM_PROTO, key) % np.uint64(10)
                     < np.uint64(7), 6, 17).astype(np.int64)
    return src, dst, sport, dport, proto


def _benign_columns(seed: int, idx: np.ndarray, *, flows: int,
                    flow_keys: np.ndarray | None = None
                    ) -> dict[str, np.ndarray]:
    """The shared benign traffic mix (sans times), as a column dict.

    A small tail of anomalies keeps every verdict path warm: ~2% of
    packets target the DENY prefix, ~1% an unrouted prefix, and ~1%
    carry no destination header at all.
    """
    if flow_keys is None:
        flow = (uniforms(seed, STREAM_FLOW, idx)
                * flows).astype(np.int64)
        flow_keys = flow.astype(np.uint64)
    else:
        flow = flow_keys.astype(np.int64)
    src, dst, sport, dport, proto = _five_tuple(seed, flow_keys)

    kind = uniforms(seed, STREAM_KIND, idx)
    h_kind = hash_u64(seed, STREAM_KIND, idx)
    denied = np.uint64(DENIED_BASE) + h_kind % np.uint64(256)
    unrouted = np.uint64(UNROUTED_BASE) + h_kind % np.uint64(1 << 24)
    dst = np.where(kind < 0.02, denied,
                   np.where(kind < 0.03, unrouted, dst))
    has_dst = kind >= 0.04
    # keep (0.03, 0.04) as "no destination header" packets
    has_dst = ~((kind >= 0.03) & (kind < 0.04))

    u_size = uniforms(seed, STREAM_SIZE, idx)
    tail = (64.0 + (u_size - 0.8) / 0.2 * 1336.0).astype(np.int64)
    sizes = np.where(u_size < 0.5, 1500,
                     np.where(u_size < 0.8, 576, tail)).astype(np.int64)

    prio = np.where(hash_u64(seed, STREAM_PRIORITY, flow_keys)
                    % np.uint64(100) < np.uint64(15), 0, 1
                    ).astype(np.int64)
    return {"sizes_bytes": sizes, "flow_ids": flow,
            "priorities": prio, "src_ip": src, "dst_ip": dst,
            "src_port": sport, "dst_port": dport, "protocol": proto,
            "has_dst": has_dst}


def _window_mask(idx: np.ndarray, n_total: int, x0: float,
                 x1: float) -> np.ndarray:
    x = idx.astype(np.float64)
    return (x >= x0 * n_total) & (x < x1 * n_total)


# ----------------------------------------------------------------------
# Scenario model + registry
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class Scenario:
    """One named, seeded workload.

    ``columns_fn(seed, idx, n_total)`` must be a pure function of the
    global packet indices — that is what makes streams chunk-size
    invariant and resumable.  ``meta`` carries the behavioural window
    hints the regression suites key on (``flood_window``,
    ``flood_port``, ``churn_window``); ``invariants`` documents, in
    prose, what each scenario gates.
    """

    name: str
    description: str
    default_packets: int
    benign: bool
    invariants: tuple[str, ...]
    columns_fn: Callable[[int, np.ndarray, int], ChunkColumns]
    meta: Mapping[str, object] = field(default_factory=dict)

    def columns(self, seed: int, start: int, count: int,
                n_total: int) -> ChunkColumns:
        """Generate the columns of packets ``[start, start+count)``."""
        if start < 0 or count < 0:
            raise ValueError(f"bad index range: {start!r}+{count!r}")
        idx = np.arange(start, start + count, dtype=np.uint64)
        return self.columns_fn(seed, idx, int(n_total))

    def stream(self, seed: int = 0, n_packets: int | None = None,
               chunk_size: int = 65_536) -> Iterator[ChunkColumns]:
        """Stream the scenario as bounded-memory column chunks."""
        if chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1: {chunk_size!r}")
        n = self.default_packets if n_packets is None else int(n_packets)
        if n < 0:
            raise ValueError(f"packet count must be >= 0: {n!r}")
        for start in range(0, n, chunk_size):
            yield self.columns(seed, start, min(chunk_size, n - start), n)

    def trace(self, seed: int = 0, n_packets: int | None = None
              ) -> "object":
        """The stream as an :class:`~repro.simnet.trace.ArrivalTrace`.

        Materialises the whole stream — use for modest ``n_packets``
        (policy-comparison replays), never for the 10M-packet runs.
        """
        from repro.simnet.trace import ArrivalTrace
        return ArrivalTrace.from_columns(
            self.stream(seed=seed, n_packets=n_packets))


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(entry: Scenario) -> Scenario:
    """Register a scenario under its name (unique, returns it)."""
    if entry.name in _REGISTRY:
        raise ValueError(f"scenario {entry.name!r} already registered")
    _REGISTRY[entry.name] = entry
    return entry


def scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> tuple[str, ...]:
    """Every registered scenario name, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_scenarios() -> tuple[Scenario, ...]:
    """Every registered scenario, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


# ----------------------------------------------------------------------
# The catalogue
# ----------------------------------------------------------------------
def _elephants_mice(seed: int, idx: np.ndarray,
                    n_total: int) -> ChunkColumns:
    n_flows = 2048
    flow_axis = np.arange(n_flows, dtype=np.uint64)
    weights = pareto(uniforms(seed, STREAM_WEIGHT, flow_axis), alpha=1.1)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    flow = np.clip(np.searchsorted(cdf, uniforms(seed, STREAM_FLOW, idx),
                                   side="right"), 0, n_flows - 1)
    keys = flow.astype(np.uint64)
    columns = _benign_columns(seed, idx, flows=n_flows, flow_keys=keys)
    elephant = weights[flow] >= np.quantile(weights, 0.98)
    mice = integers(seed, STREAM_SIZE, idx, 64, 700)
    columns["sizes_bytes"] = np.where(elephant, 1500, mice)
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S)
    return ChunkColumns(**columns)


def _diurnal(seed: int, idx: np.ndarray, n_total: int) -> ChunkColumns:
    columns = _benign_columns(seed, idx, flows=512)
    warp = _diurnal_warp(n_total, cycles=2.0, amplitude=0.6)
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S, warp)
    return ChunkColumns(**columns)


def _flash_crowd(seed: int, idx: np.ndarray,
                 n_total: int) -> ChunkColumns:
    x0, x1, boost = 0.45, 0.70, 8.0
    columns = _benign_columns(seed, idx, flows=512)
    surge = _window_mask(idx, n_total, x0, x1)
    crowd = surge & (uniforms(seed, STREAM_MIX, idx) < 0.85)
    # ~6-packet flowlets from globally unique clients, all aimed at
    # one hot destination behind port 1.
    flowlet = idx // np.uint64(6)
    keys = np.where(crowd, np.uint64(1) << np.uint64(40), np.uint64(0)) \
        + flowlet
    c_src, _, c_sport, _, _ = _five_tuple(seed, keys)
    columns["src_ip"] = np.where(crowd, c_src, columns["src_ip"])
    columns["dst_ip"] = np.where(crowd, np.uint64(HOT_IP),
                                 columns["dst_ip"])
    columns["src_port"] = np.where(crowd, c_sport, columns["src_port"])
    columns["dst_port"] = np.where(crowd, 443, columns["dst_port"])
    columns["protocol"] = np.where(crowd, 6, columns["protocol"])
    columns["priorities"] = np.where(crowd, 1, columns["priorities"])
    columns["has_dst"] = columns["has_dst"] | crowd
    columns["flow_ids"] = np.where(
        crowd, _CROWD_FLOWS + flowlet.astype(np.int64),
        columns["flow_ids"])
    columns["sizes_bytes"] = np.where(
        crowd, integers(seed, STREAM_SIZE, idx, 200, 700),
        columns["sizes_bytes"])
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S,
                                _surge_warp(n_total, x0, x1, boost))
    return ChunkColumns(**columns)


def _syn_flood(seed: int, idx: np.ndarray, n_total: int) -> ChunkColumns:
    x0, x1, boost = 0.30, 0.80, 25.0
    columns = _benign_columns(seed, idx, flows=256)
    window = _window_mask(idx, n_total, x0, x1)
    flood = window & (uniforms(seed, STREAM_MIX, idx) < 0.96)
    spoofed = hash_u64(seed, STREAM_SRC, idx + np.uint64(1 << 32)) \
        % np.uint64(1 << 32) | np.uint64(1)
    columns["src_ip"] = np.where(flood, spoofed, columns["src_ip"])
    columns["dst_ip"] = np.where(flood, np.uint64(VICTIM_IP),
                                 columns["dst_ip"])
    columns["src_port"] = np.where(
        flood, integers(seed, STREAM_SPORT, idx, 1024, 65_535),
        columns["src_port"])
    columns["dst_port"] = np.where(flood, 80, columns["dst_port"])
    columns["protocol"] = np.where(flood, 6, columns["protocol"])
    columns["sizes_bytes"] = np.where(flood, 64,
                                      columns["sizes_bytes"])
    columns["priorities"] = np.where(flood, 1, columns["priorities"])
    columns["has_dst"] = columns["has_dst"] | flood
    columns["flow_ids"] = np.where(flood,
                                   _SYN_FLOWS + idx.astype(np.int64),
                                   columns["flow_ids"])
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S,
                                _surge_warp(n_total, x0, x1, boost))
    return ChunkColumns(**columns)


def _amplification_flood(seed: int, idx: np.ndarray,
                         n_total: int) -> ChunkColumns:
    x0, x1, boost = 0.35, 0.75, 12.0
    columns = _benign_columns(seed, idx, flows=256)
    window = _window_mask(idx, n_total, x0, x1)
    flood = window & (uniforms(seed, STREAM_MIX, idx) < 0.90)
    reflector = (hash_u64(seed, STREAM_SRC, idx) % np.uint64(512)
                 ).astype(np.int64)
    r_src = np.uint64(_ip(198, 18, 0, 0)) + reflector.astype(np.uint64)
    columns["src_ip"] = np.where(flood, r_src, columns["src_ip"])
    columns["dst_ip"] = np.where(flood, np.uint64(VICTIM_IP),
                                 columns["dst_ip"])
    columns["src_port"] = np.where(flood, 53, columns["src_port"])
    # victim-side ephemeral ports rotate every 64 packets, so the
    # reflected flows also churn the flow cache.
    ephemeral = (hash_u64(seed, STREAM_DPORT, idx // np.uint64(64))
                 % np.uint64(2048)).astype(np.int64) + 1024
    columns["dst_port"] = np.where(flood, ephemeral,
                                   columns["dst_port"])
    columns["protocol"] = np.where(flood, 17, columns["protocol"])
    columns["sizes_bytes"] = np.where(
        flood, integers(seed, STREAM_SIZE, idx, 1200, 1501),
        columns["sizes_bytes"])
    columns["priorities"] = np.where(flood, 1, columns["priorities"])
    columns["has_dst"] = columns["has_dst"] | flood
    columns["flow_ids"] = np.where(flood, _AMP_FLOWS + reflector,
                                   columns["flow_ids"])
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S,
                                _surge_warp(n_total, x0, x1, boost))
    return ChunkColumns(**columns)


def _scan_sweep(seed: int, idx: np.ndarray, n_total: int) -> ChunkColumns:
    columns = _benign_columns(seed, idx, flows=128)
    scan = uniforms(seed, STREAM_MIX, idx) < 0.90
    # Sequential sweep of an unrouted /8; every 8th probe lands on a
    # routed pool so forwarding stays warm.
    sweep_dst = np.uint64(UNROUTED_BASE) + idx % np.uint64(1 << 24)
    probe_routed = (idx % np.uint64(8)) == np.uint64(7)
    _, routed_dst, _, _, _ = _five_tuple(seed, idx)
    dst = np.where(probe_routed, routed_dst, sweep_dst)
    columns["src_ip"] = np.where(scan, np.uint64(SCANNER_IP),
                                 columns["src_ip"])
    columns["dst_ip"] = np.where(scan, dst, columns["dst_ip"])
    columns["src_port"] = np.where(scan, 54_321, columns["src_port"])
    columns["dst_port"] = np.where(scan,
                                   (idx % np.uint64(1024)
                                    ).astype(np.int64) + 1,
                                   columns["dst_port"])
    columns["protocol"] = np.where(scan, 6, columns["protocol"])
    columns["sizes_bytes"] = np.where(scan, 60, columns["sizes_bytes"])
    columns["priorities"] = np.where(scan, 1, columns["priorities"])
    columns["has_dst"] = columns["has_dst"] | scan
    columns["flow_ids"] = np.where(scan,
                                   _SCAN_FLOWS + idx.astype(np.int64),
                                   columns["flow_ids"])
    columns["times_s"] = _times(seed, idx, 2.0 * _BASE_GAP_S)
    return ChunkColumns(**columns)


def _cache_churn(seed: int, idx: np.ndarray, n_total: int) -> ChunkColumns:
    x = idx.astype(np.float64)
    churn = (x >= 0.30 * n_total) & (x < 0.70 * n_total)
    # Warm/recovery phases reuse 64 flows (well under the cache
    # capacity); the churn phase makes every packet a fresh 5-tuple,
    # the worst case for any LRU.
    keys = np.where(churn, np.uint64(_CHURN_FLOWS) + idx,
                    idx % np.uint64(64))
    columns = _benign_columns(seed, idx, flows=64, flow_keys=keys)
    # No anomaly tail here: hit-rate assertions want pure phases.
    columns["has_dst"] = np.ones(len(idx), dtype=bool)
    _, dst, _, _, _ = _five_tuple(seed, keys)
    columns["dst_ip"] = dst
    columns["sizes_bytes"] = integers(seed, STREAM_SIZE, idx, 256, 1200)
    columns["flow_ids"] = np.where(
        churn, _CHURN_FLOWS + idx.astype(np.int64),
        (idx % np.uint64(64)).astype(np.int64))
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S)
    return ChunkColumns(**columns)


def _traffic_classes(seed: int, idx: np.ndarray,
                     n_total: int) -> ChunkColumns:
    # Three interleaved application classes, one per packet index mod
    # 3: DNS-style UDP chatter (small, port 53), transactional TCP
    # (mid-size, port 443) and bulk TCP (near-MTU).  Class is a pure
    # function of the index so tests can predict the expected egress
    # port of every packet without replaying the stream.
    cls = (idx % np.uint64(3)).astype(np.int64)
    keys = idx % np.uint64(_CLASS_FLOWS)
    columns = _benign_columns(seed, idx, flows=_CLASS_FLOWS,
                              flow_keys=keys)
    # Clean, fully-routable stream: the steering gates want every
    # packet to reach the classifier (no ACL/no-route/parse losses).
    columns["has_dst"] = np.ones(len(idx), dtype=bool)
    _, dst, _, _, _ = _five_tuple(seed, keys)
    columns["dst_ip"] = dst
    small = integers(seed, STREAM_SIZE, idx, 80, 300)
    mid = integers(seed, STREAM_MIX, idx, 400, 1000)
    bulk = integers(seed, STREAM_WEIGHT, idx, 1200, 1500)
    columns["sizes_bytes"] = np.select([cls == 0, cls == 1],
                                       [small, mid], bulk)
    columns["dst_port"] = np.where(cls == 0, 53, 443).astype(np.int64)
    columns["protocol"] = np.where(cls == 0, 17, 6).astype(np.int64)
    columns["times_s"] = _times(seed, idx, _BASE_GAP_S)
    return ChunkColumns(**columns)


def traffic_classes_tree():
    """The fitted-by-hand tree the ``traffic_classes`` stream assumes.

    Features are ``(size_bytes, dst_port, protocol)``: UDP (protocol
    17) is the DNS class, TCP splits on size at 1100 B into the
    transactional and bulk classes.  Every class sits far from both
    thresholds, so analog margins never blur the decision.
    """
    from repro.netfunc.decision_tree import CARTTree, TreeNode

    root = TreeNode(
        feature=2, threshold=11.5,
        left=TreeNode(feature=0, threshold=1100.0,
                      left=TreeNode(prediction=1),
                      right=TreeNode(prediction=2)),
        right=TreeNode(prediction=0))
    return CARTTree.from_root(root, n_features=3)


def traffic_classes_spec(**overrides):
    """The default spec with the aCAM classifier stage installed.

    Classes steer to their own egress ports (class ``i`` -> port
    ``i``), overriding the destination-based LPM decision, so the
    scenario gates can assert per-class steering end to end.
    """
    from repro.dataplane.classify import classifier_spec_from_tree

    classifier = classifier_spec_from_tree(
        traffic_classes_tree(),
        ("size_bytes", "dst_port", "protocol"),
        class_to_port=((0, 0), (1, 1), (2, 2)),
        margin=4.0)
    return default_switch_spec(classifier=classifier, **overrides)


def traffic_classes_expected(idx: np.ndarray) -> np.ndarray:
    """Expected class (== steered egress port) per packet index."""
    return (np.asarray(idx, dtype=np.uint64)
            % np.uint64(3)).astype(np.int64)


register_scenario(Scenario(
    name="elephants_mice",
    description="Heavy-tailed flow sizes: a few Pareto elephants "
                "carry most bytes over thousands of mice.",
    default_packets=200_000, benign=True,
    invariants=("flow cache stays effective on the heavy tail",
                "no degradation trips on healthy hardware",
                "queue delay stays inside the AQM envelope"),
    columns_fn=_elephants_mice))

register_scenario(Scenario(
    name="diurnal",
    description="Smooth diurnal load curve (two cycles, ~2.5:1 "
                "peak-to-trough arrival rate).",
    default_packets=200_000, benign=True,
    invariants=("AQM pressure follows the load curve",
                "no degradation trips on healthy hardware"),
    columns_fn=_diurnal,
    meta={"peak_window": (0.325, 0.45), "trough_window": (0.075, 0.20)}))

register_scenario(Scenario(
    name="flash_crowd",
    description="8x arrival surge of short flows from fresh clients, "
                "all aimed at one hot destination.",
    default_packets=150_000, benign=True,
    invariants=("AQM drop probability rises during the surge",
                "queue delay stays bounded through the surge",
                "no degradation trips on healthy hardware"),
    columns_fn=_flash_crowd,
    meta={"flood_window": (0.45, 0.70), "flood_port": 1}))

register_scenario(Scenario(
    name="syn_flood",
    description="25x spoofed-source SYN flood (64 B packets) against "
                "one victim behind port 0.",
    default_packets=150_000, benign=False,
    invariants=("drop response engages during the flood",
                "queue delay stays bounded through the flood",
                "spoofed sources churn the flow cache"),
    columns_fn=_syn_flood,
    meta={"flood_window": (0.30, 0.80), "flood_port": 0}))

register_scenario(Scenario(
    name="amplification_flood",
    description="12x UDP amplification flood: 512 reflectors firing "
                "1.2-1.5 kB payloads at one victim.",
    default_packets=150_000, benign=False,
    invariants=("AQM drop probability saturates under byte overload",
                "queue delay stays bounded through the flood"),
    columns_fn=_amplification_flood,
    meta={"flood_window": (0.35, 0.75), "flood_port": 0}))

register_scenario(Scenario(
    name="scan_sweep",
    description="Sequential TCP scan of an unrouted /8 from one "
                "scanner (every probe a fresh 5-tuple).",
    default_packets=120_000, benign=True,
    invariants=("most probes die as no-route drops",
                "flow cache hit rate collapses (every probe unique)",
                "no degradation trips on healthy hardware"),
    columns_fn=_scan_sweep,
    meta={"min_no_route_share": 0.6}))

register_scenario(Scenario(
    name="cache_churn",
    description="Adversarial 5-tuple churn: unique flows for the "
                "middle 40% of the stream, 64 repeat flows around it.",
    default_packets=150_000, benign=True,
    invariants=("cache hit rate collapses under churn",
                "cache hit rate recovers after churn ends",
                "no degradation trips on healthy hardware"),
    columns_fn=_cache_churn,
    meta={"churn_window": (0.30, 0.70)}))

register_scenario(Scenario(
    name="traffic_classes",
    description="Three interleaved application classes (DNS-style "
                "UDP, transactional TCP, bulk TCP) for the aCAM "
                "classifier to steer to per-class ports.",
    default_packets=120_000, benign=True,
    invariants=("aCAM classifier steers each class to its own port",
                "every queued packet lands on its class's port",
                "no degradation trips on healthy hardware"),
    columns_fn=_traffic_classes,
    meta={"n_classes": 3, "class_ports": (0, 1, 2)}))


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def default_switch_spec(**overrides):
    """The matrix's switch: 3 routed ports, ACL, supervised AQMs.

    200 Mb/s ports put :data:`BASE_RATE_PPS` at ~40% utilisation;
    16k-packet per-class queues are deep enough (~80 ms of 64 B
    floods, seconds of full-size traffic) that the AQM, not tail
    overflow, governs flood behaviour.
    """
    from repro.dataplane.switch import SwitchSpec
    from repro.netfunc.firewall import Action, FirewallRule

    settings: dict = dict(
        n_ports=3,
        routes=(("10.0.0.0/8", 0), ("192.168.0.0/16", 1),
                ("172.16.0.0/12", 2)),
        firewall_rules=(FirewallRule(action=Action.DENY,
                                     dst_prefix="203.0.113.0/24"),),
        port_rate_bps=200e6,
        queue_capacity=16_384,
        flow_cache_size=4096,
        graceful_degradation=True,
        supervised=True)
    settings.update(overrides)
    return SwitchSpec(**settings)


@dataclass
class ScenarioWindow:
    """Behavioural counters over one window of a scenario run."""

    index: int
    t_start_s: float
    t_end_s: float
    offered: int = 0
    queued: int = 0
    aqm_drops: int = 0
    overflow_drops: int = 0
    acl_drops: int = 0
    no_route_drops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    max_delay_ewma_s: float = 0.0
    #: Chunk-tick average of the worst-port delay EWMA — the window's
    #: *sustained* delay, where the max above also catches one-tick
    #: overshoots at congestion onsets.
    mean_delay_ewma_s: float = 0.0
    max_backlog_pkts: int = 0
    max_pdp: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def aqm_drop_rate(self) -> float:
        return self.aqm_drops / self.offered if self.offered else 0.0

    @property
    def drop_rate(self) -> float:
        drops = (self.aqm_drops + self.overflow_drops
                 + self.acl_drops + self.no_route_drops)
        return drops / self.offered if self.offered else 0.0

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "offered": self.offered,
            "queued": self.queued,
            "aqm_drops": self.aqm_drops,
            "overflow_drops": self.overflow_drops,
            "acl_drops": self.acl_drops,
            "no_route_drops": self.no_route_drops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "aqm_drop_rate": round(self.aqm_drop_rate, 6),
            "drop_rate": round(self.drop_rate, 6),
            "max_delay_ewma_s": self.max_delay_ewma_s,
            "mean_delay_ewma_s": self.mean_delay_ewma_s,
            "max_backlog_pkts": self.max_backlog_pkts,
            "max_pdp": self.max_pdp,
        }


@dataclass
class ScenarioReport:
    """Everything one scenario run observed, JSON-able for BENCH."""

    scenario: str
    seed: int
    n_packets: int
    chunk_size: int
    admission_chunk: int
    duration_s: float
    wall_s: float
    throughput_pps: float
    verdict_counts: dict[str, int]
    windows: list[ScenarioWindow]
    cache_hits: int
    cache_misses: int
    degraded_tables: tuple[str, ...]
    fallback_events: int
    retries: int
    energy_total_j: float
    energy_breakdown: dict[str, float]
    verdicts: list[str] | None = None
    ports: list[int | None] | None = None
    metrics: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    @property
    def max_delay_ewma_s(self) -> float:
        return max((w.max_delay_ewma_s for w in self.windows),
                   default=0.0)

    @property
    def max_pdp(self) -> float:
        return max((w.max_pdp for w in self.windows), default=0.0)

    @property
    def energy_per_packet_j(self) -> float:
        return self.energy_total_j / self.n_packets \
            if self.n_packets else 0.0

    def window_series(self, attribute: str) -> list:
        """One window-indexed series (e.g. ``"aqm_drop_rate"``)."""
        return [getattr(window, attribute) for window in self.windows]

    def windows_in(self, fraction_window: tuple[float, float]
                   ) -> list[ScenarioWindow]:
        """Windows whose packet range lies inside a stream fraction."""
        n = len(self.windows)
        lo = int(np.ceil(fraction_window[0] * n))
        hi = int(np.floor(fraction_window[1] * n))
        return self.windows[lo:hi]

    def windows_outside(self, fraction_window: tuple[float, float]
                        ) -> list[ScenarioWindow]:
        """Windows fully before or after a stream fraction."""
        n = len(self.windows)
        lo = int(np.floor(fraction_window[0] * n))
        hi = int(np.ceil(fraction_window[1] * n))
        return self.windows[:lo] + self.windows[hi:]

    def to_json(self) -> dict:
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_packets": self.n_packets,
            "chunk_size": self.chunk_size,
            "admission_chunk": self.admission_chunk,
            "duration_s": round(self.duration_s, 6),
            "wall_s": round(self.wall_s, 4),
            "throughput_pps": round(self.throughput_pps, 1),
            "verdict_counts": dict(self.verdict_counts),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "max_delay_ewma_s": self.max_delay_ewma_s,
            "max_pdp": self.max_pdp,
            "degraded_tables": list(self.degraded_tables),
            "fallback_events": self.fallback_events,
            "retries": self.retries,
            "energy_total_j": self.energy_total_j,
            "energy_per_packet_j": self.energy_per_packet_j,
            "energy_breakdown": dict(self.energy_breakdown),
            "windows": [window.to_json() for window in self.windows],
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload


def _analog(aqm):
    """The analog AQM inside a possibly-degradation-wrapped table."""
    return getattr(aqm, "analog", aqm)


def _drain(processor, credits: list[float], t_from: float,
           t_until: float, port_rate_bps: float) -> None:
    """Serve egress queues at line rate over [t_from, t_until).

    Each port accrues byte credit for the elapsed simulated time and
    dequeues (head drops included, via the traffic manager) until the
    credit is spent; an idle port forfeits its credit, as real silicon
    forfeits idle slots.
    """
    if t_until <= t_from:
        return
    manager = getattr(processor, "traffic_manager", processor)
    budget = (t_until - t_from) * port_rate_bps / 8.0
    for port in range(manager.n_ports):
        credits[port] += budget
        while credits[port] > 0.0:
            packet = manager.dequeue(port, now=t_until)
            if packet is None:
                credits[port] = 0.0
                break
            credits[port] -= packet.size_bytes


def run_scenario(scenario_or_name: "Scenario | str", *, seed: int = 0,
                 n_packets: int | None = None, chunk_size: int = 8192,
                 admission_chunk: int = 256, spec=None,
                 observe: bool = False, n_windows: int = 20,
                 collect_results: bool = False,
                 processor_factory=None) -> ScenarioReport:
    """Run one scenario through a freshly built switch, end to end.

    The stream is generated in ``chunk_size`` column chunks (bounded
    memory) and admitted in ``admission_chunk`` slices so simulated
    time advances at sub-window granularity: before each slice the
    egress queues drain at line rate up to the slice's start time,
    then the slice rides ``process_batch`` through the staged runtime.
    Windowed counters (drops by cause, cache hits/misses, delay EWMA,
    backlog, last PDP) land in ``n_windows`` equal packet-count
    windows on the returned report.

    ``observe=True`` attaches an
    :class:`~repro.observability.hub.Observability` hub and folds its
    final snapshot into the report (the per-scenario telemetry
    artifact).  ``collect_results=True`` additionally keeps the
    per-packet verdict/port sequences — the golden tests digest them.

    ``processor_factory(spec, seed)``, when given, replaces the
    default ``build_switch`` product with any processor exposing the
    duck-typed surface — e.g. a
    :class:`~repro.fabric.fabric.SwitchFabric` via
    :func:`~repro.fabric.scenario.fabric_scenario_factory`.  A
    processor without a ``traffic_manager`` must itself provide
    ``n_ports``/``dequeue`` (egress), ``slice_extremes()`` (windowed
    maxima) and ``robustness_stats()`` (fallbacks, retries, degraded
    tables); one with a ``close()`` is closed before returning.
    """
    from repro.dataplane.results import Verdict
    from repro.dataplane.switch import build_switch
    from repro.netfunc.aqm.pcam_aqm import PCAMAQM
    from repro.robustness.degradation import DegradingAQM

    entry = scenario_or_name if isinstance(scenario_or_name, Scenario) \
        else scenario(scenario_or_name)
    n = entry.default_packets if n_packets is None else int(n_packets)
    if n < 1:
        raise ValueError(f"need at least one packet: {n!r}")
    if admission_chunk < 1:
        raise ValueError(
            f"admission chunk must be >= 1: {admission_chunk!r}")
    if n_windows < 1:
        raise ValueError(f"need at least one window: {n_windows!r}")
    if spec is None:
        spec = default_switch_spec()

    observability = None
    if observe and processor_factory is None:
        from repro.observability import Observability
        observability = Observability()

    if processor_factory is not None:
        processor = processor_factory(spec, seed)
    else:
        built_ports = iter(range(spec.n_ports))

        def aqm_factory():
            port = next(built_ports)
            analog = PCAMAQM(
                rng=np.random.default_rng((seed, port, 0xA11A)))
            if spec.graceful_degradation:
                return DegradingAQM(analog)
            return analog

        processor = build_switch(spec, observability=observability,
                                 aqm_factory=aqm_factory)
        for port in range(spec.n_ports):
            # One energy account for the whole switch: fold the
            # analog AQM searches into the pipeline ledger the spec's
            # default factory would have used.
            _analog(processor.traffic_manager.aqm(port)).ledger = \
                processor.ledger

    # A fabric (or any sharded processor) serves egress itself and
    # summarises its ports; a single switch exposes them through its
    # traffic manager.
    manager = getattr(processor, "traffic_manager", None)

    def slice_extremes() -> tuple[float, float, int]:
        if manager is None:
            return processor.slice_extremes()
        ports = range(spec.n_ports)
        return (max(_analog(manager.aqm(p)).delay_ewma_s for p in ports),
                max(_analog(manager.aqm(p)).last_pdp for p in ports),
                max(manager.backlog(p) for p in ports))

    boundaries = np.unique(
        np.round(np.linspace(1, n, n_windows) * 1.0).astype(int))
    boundaries = [int(b) for b in
                  np.round(np.linspace(n / n_windows, n, n_windows))]
    windows: list[ScenarioWindow] = []
    current = ScenarioWindow(index=0, t_start_s=0.0, t_end_s=0.0)
    previous = {"queued": 0, "aqm": 0, "overflow": 0, "acl": 0,
                "no_route": 0, "hits": 0, "misses": 0, "offered": 0}
    verdicts: list[str] | None = [] if collect_results else None
    out_ports: list[int | None] | None = [] if collect_results else None

    def cumulative() -> dict[str, int]:
        cache = processor.flow_cache
        counts = processor.verdict_counts
        return {
            "offered": processor.processed,
            "queued": counts[Verdict.QUEUED],
            "aqm": counts[Verdict.DROPPED_AQM],
            "overflow": counts[Verdict.DROPPED_OVERFLOW],
            "acl": counts[Verdict.DROPPED_ACL],
            "no_route": counts[Verdict.DROPPED_NO_ROUTE],
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
        }

    def close_window(t_now: float) -> None:
        nonlocal current, previous, delay_sum, delay_ticks
        totals = cumulative()
        if delay_ticks:
            current.mean_delay_ewma_s = delay_sum / delay_ticks
        delay_sum = 0.0
        delay_ticks = 0
        current.offered = totals["offered"] - previous["offered"]
        current.queued = totals["queued"] - previous["queued"]
        current.aqm_drops = totals["aqm"] - previous["aqm"]
        current.overflow_drops = totals["overflow"] \
            - previous["overflow"]
        current.acl_drops = totals["acl"] - previous["acl"]
        current.no_route_drops = totals["no_route"] \
            - previous["no_route"]
        current.cache_hits = totals["hits"] - previous["hits"]
        current.cache_misses = totals["misses"] - previous["misses"]
        current.t_end_s = t_now
        windows.append(current)
        previous = totals
        current = ScenarioWindow(index=len(windows), t_start_s=t_now,
                                 t_end_s=t_now)

    started = time.perf_counter()
    credits = [0.0] * spec.n_ports
    t_prev = 0.0
    t_last = 0.0
    processed = 0
    next_boundary = 0
    delay_sum = 0.0
    delay_ticks = 0

    for columns in entry.stream(seed=seed, n_packets=n,
                                chunk_size=chunk_size):
        packets = columns.to_packets()
        times = columns.times_s
        for start in range(0, len(packets), admission_chunk):
            chunk = packets[start:start + admission_chunk]
            t_now = float(times[start])
            _drain(processor, credits, t_prev, t_now,
                   spec.port_rate_bps)
            results = processor.process_batch(chunk, now=t_now,
                                              chunk_size=len(chunk))
            if verdicts is not None:
                verdicts.extend(r.verdict.value for r in results)
                out_ports.extend(r.port for r in results)
            t_prev = t_now
            t_last = float(times[min(start + len(chunk),
                                     len(times)) - 1])
            processed += len(chunk)
            delay_max, pdp_max, backlog_max = slice_extremes()
            delay_sum += delay_max
            delay_ticks += 1
            current.max_delay_ewma_s = max(
                current.max_delay_ewma_s, delay_max)
            current.max_pdp = max(current.max_pdp, pdp_max)
            current.max_backlog_pkts = max(
                current.max_backlog_pkts, backlog_max)
            while next_boundary < len(boundaries) \
                    and processed >= boundaries[next_boundary]:
                close_window(t_last)
                next_boundary += 1

    # Final drain: let the tail of the stream leave the queues.
    _drain(processor, credits, t_prev, t_last + 0.05,
           spec.port_rate_bps)
    if next_boundary < len(boundaries):
        close_window(t_last)

    wall = time.perf_counter() - started
    totals = cumulative()
    if manager is not None:
        fallback_events = sum(
            getattr(manager.aqm(port), "fallback_events", 0)
            for port in range(spec.n_ports))
        retries = sum(getattr(manager.aqm(port), "retries", 0)
                      for port in range(spec.n_ports))
        degraded = tuple(processor.controller.degraded_tables())
    else:
        stats = processor.robustness_stats()
        fallback_events = stats["fallback_events"]
        retries = stats["retries"]
        degraded = tuple(stats["degraded_tables"])
    if observability is not None:
        metrics = observability.snapshot()
    elif observe and hasattr(processor, "poll_metrics"):
        metrics = processor.poll_metrics()
    else:
        metrics = None
    report = ScenarioReport(
        scenario=entry.name,
        seed=seed,
        n_packets=n,
        chunk_size=chunk_size,
        admission_chunk=admission_chunk,
        duration_s=t_last,
        wall_s=wall,
        throughput_pps=n / wall if wall > 0 else 0.0,
        verdict_counts={verdict.value: count for verdict, count
                        in processor.verdict_counts.items()},
        windows=windows,
        cache_hits=totals["hits"],
        cache_misses=totals["misses"],
        degraded_tables=degraded,
        fallback_events=fallback_events,
        retries=retries,
        energy_total_j=processor.energy_total_j(),
        energy_breakdown=processor.energy_breakdown(),
        verdicts=verdicts,
        ports=out_ports,
        metrics=metrics)
    if processor_factory is not None:
        closer = getattr(processor, "close", None)
        if closer is not None:
            closer()
    return report


def publish_reports(reports: Sequence[ScenarioReport],
                    path: "str | Path") -> dict:
    """Write a report matrix as the ``BENCH_scenarios.json`` artifact."""
    document = {report.scenario: report.to_json()
                for report in reports}
    Path(path).write_text(json.dumps(document, indent=2,
                                     sort_keys=True) + "\n")
    return document
