"""Minimal discrete-event simulation engine.

A binary-heap event loop with deterministic tie-breaking (events
scheduled at the same timestamp fire in scheduling order).  This is
the substrate under the Figure 8 experiment: flow generators schedule
arrivals, queues schedule departures, monitors schedule samples.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable

__all__ = ["Simulator"]


class Simulator:
    """The event loop.

    Events are plain callables; there is no process abstraction —
    network queues are naturally event-driven (arrival, departure,
    timer) and callbacks keep the hot path allocation-free.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time [s]."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay!r}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def schedule_batch(self, delay: float,
                       callbacks: Iterable[Callable[[], None]]) -> None:
        """Schedule a chunk of callbacks as one heap event.

        All callbacks fire at the same timestamp, in submission order,
        through a single heap entry — one ``heappush``/``heappop`` per
        chunk instead of per packet.  This is the event-loop half of
        batched admission: a traffic generator emitting a burst hands
        the whole burst to the queue in one event, and the queue's
        batch-capable AQM judges it with one vectorised evaluation.
        ``processed`` still advances once per callback.
        """
        chunk = tuple(callbacks)
        if not chunk:
            return

        def fire() -> None:
            for index, callback in enumerate(chunk):
                callback()
                if index:  # the loop counts the event itself once
                    self._processed += 1

        self.schedule(delay, fire)

    def stop(self) -> None:
        """Stop the loop after the current event returns."""
        self._running = False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``.

        The clock is advanced to ``end_time`` even if the heap drains
        earlier, so periodic samplers see a consistent horizon.
        """
        if end_time < self._now:
            raise ValueError(
                f"end time {end_time} is before now ({self._now})")
        self._running = True
        while self._running and self._heap:
            time, _, callback = self._heap[0]
            if time > end_time:
                break
            heapq.heappop(self._heap)
            self._now = time
            callback()
            self._processed += 1
        self._now = max(self._now, end_time)
        self._running = False

    def run(self) -> None:
        """Process events until the heap is empty or :meth:`stop`."""
        self._running = True
        while self._running and self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            callback()
            self._processed += 1
        self._running = False

    def every(self, interval: float, callback: Callable[[], None],
              *, start_delay: float | None = None) -> None:
        """Install a periodic callback (first firing after one interval
        unless ``start_delay`` is given)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval!r}")

        def tick() -> None:
            callback()
            self.schedule(interval, tick)

        self.schedule(interval if start_delay is None else start_delay,
                      tick)
