"""Canned experiment topologies.

The Figure 8 experiment is a dumbbell: several Poisson sources share
one bottleneck queue.  :class:`DumbbellExperiment` wires that up,
runs it, and hands back the recorder — so benchmarks, tests and
examples all drive the identical scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.netfunc.aqm.base import AQMAlgorithm, TailDropAQM
from repro.simnet.engine import Simulator
from repro.simnet.flows import FlowGenerator, PoissonFlowGenerator
from repro.simnet.metrics import DelayRecorder
from repro.simnet.queue_sim import BottleneckQueue

__all__ = ["DumbbellExperiment", "ExperimentResult", "overload_profile"]


def overload_profile(overload_start_s: float, overload_end_s: float,
                     overload_factor: float = 1.6
                     ) -> Callable[[float], float]:
    """A rate profile that raises offered load inside a time window.

    Outside the window the factor is 1.0 (nominal load); inside it the
    arrival rate is multiplied by ``overload_factor`` — the congestion
    episode the AQM must manage.
    """
    if overload_start_s >= overload_end_s:
        raise ValueError("overload window is empty")
    if overload_factor <= 0:
        raise ValueError(f"factor must be positive: {overload_factor!r}")

    def profile(now: float) -> float:
        if overload_start_s <= now < overload_end_s:
            return overload_factor
        return 1.0

    return profile


@dataclass(frozen=True)
class ExperimentResult:
    """Everything a bench needs from one run."""

    recorder: DelayRecorder
    queue: BottleneckQueue
    duration_s: float

    @property
    def mean_delay_ms(self) -> float:
        """Mean sojourn time of the run [ms]."""
        delays = self.recorder.sojourn_times
        return 1e3 * float(np.mean(delays)) if delays else 0.0


@dataclass
class DumbbellExperiment:
    """N Poisson sources -> one bottleneck queue -> sink.

    Parameters
    ----------
    n_flows:
        Number of independent Poisson sources.
    load:
        Offered load as a fraction of the bottleneck rate (1.0 = the
        queue is critically loaded before any overload window).
    service_rate_bps:
        Bottleneck line rate.
    packet_size_bytes:
        Fixed packet size of all sources.
    capacity_packets:
        Bottleneck buffer size.
    duration_s:
        Simulated horizon.
    rate_fn:
        Optional shared time-varying load profile (see
        :func:`overload_profile`).
    priorities:
        Optional per-flow priority classes (defaults to all zero).
    seed:
        Seed for all arrival processes.
    """

    n_flows: int = 8
    load: float = 0.95
    service_rate_bps: float = 80e6
    packet_size_bytes: int = 1000
    capacity_packets: int = 2000
    duration_s: float = 10.0
    rate_fn: Callable[[float], float] | None = None
    priorities: Sequence[int] | None = None
    seed: int = 42
    sample_interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(f"need at least one flow: {self.n_flows!r}")
        if self.load <= 0:
            raise ValueError(f"load must be positive: {self.load!r}")
        if self.priorities is not None and len(self.priorities) != self.n_flows:
            raise ValueError("priorities must match n_flows")

    @property
    def per_flow_rate_pps(self) -> float:
        """Arrival rate of each Poisson source [packets/s]."""
        total_pps = (self.load * self.service_rate_bps
                     / (8.0 * self.packet_size_bytes))
        return total_pps / self.n_flows

    def run(self, aqm: AQMAlgorithm | None = None) -> ExperimentResult:
        """Execute one run with the given policy (tail drop default)."""
        sim = Simulator()
        queue = BottleneckQueue(
            sim,
            service_rate_bps=self.service_rate_bps,
            capacity_packets=self.capacity_packets,
            aqm=aqm or TailDropAQM(),
            sample_interval_s=self.sample_interval_s)
        rng = np.random.default_rng(self.seed)
        for index in range(self.n_flows):
            priority = (self.priorities[index]
                        if self.priorities is not None else 0)
            generator = PoissonFlowGenerator(
                rate_pps=self.per_flow_rate_pps,
                packet_size_bytes=self.packet_size_bytes,
                flow_id=index,
                priority=priority,
                rng=np.random.default_rng(rng.integers(2 ** 63)),
                rate_fn=self.rate_fn)
            generator.attach(sim, queue.enqueue)
        sim.run_until(self.duration_s)
        return ExperimentResult(recorder=queue.recorder, queue=queue,
                                duration_s=self.duration_s)
