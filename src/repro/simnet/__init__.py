"""Discrete-event network simulation substrate (Figure 8's workload)."""

from repro.simnet.engine import Simulator
from repro.simnet.flows import (
    OnOffFlowGenerator,
    ParetoBurstGenerator,
    PoissonFlowGenerator,
)
from repro.simnet.metrics import (
    DelayRecorder,
    SummaryStatistics,
    time_binned_mean,
)
from repro.simnet.multihop import (
    MultiBottleneckExperiment,
    PathResult,
    build_path,
)
from repro.simnet.queue_sim import BottleneckQueue
from repro.simnet.responsive import AIMDFlowGenerator, FeedbackRouter
from repro.simnet.trace import (
    ArrivalTrace,
    TraceRecorder,
    TraceReplayGenerator,
)
from repro.simnet.topology import (
    DumbbellExperiment,
    ExperimentResult,
    overload_profile,
)

__all__ = [
    "AIMDFlowGenerator",
    "ArrivalTrace",
    "BottleneckQueue",
    "TraceRecorder",
    "TraceReplayGenerator",
    "FeedbackRouter",
    "MultiBottleneckExperiment",
    "PathResult",
    "build_path",
    "DelayRecorder",
    "DumbbellExperiment",
    "ExperimentResult",
    "OnOffFlowGenerator",
    "ParetoBurstGenerator",
    "PoissonFlowGenerator",
    "Simulator",
    "SummaryStatistics",
    "overload_profile",
    "time_binned_mean",
]
