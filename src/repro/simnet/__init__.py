"""Discrete-event network simulation substrate (Figure 8's workload)."""

from repro.simnet.engine import Simulator
from repro.simnet.flows import (
    OnOffFlowGenerator,
    ParetoBurstGenerator,
    PoissonFlowGenerator,
)
from repro.simnet.metrics import (
    DelayRecorder,
    SummaryStatistics,
    time_binned_mean,
)
from repro.simnet.multihop import (
    MultiBottleneckExperiment,
    PathResult,
    build_path,
)
from repro.simnet.queue_sim import BottleneckQueue
from repro.simnet.responsive import AIMDFlowGenerator, FeedbackRouter
from repro.simnet.scenarios import (
    Scenario,
    ScenarioReport,
    ScenarioWindow,
    default_switch_spec,
    iter_scenarios,
    publish_reports,
    register_scenario,
    run_scenario,
    scenario,
    scenario_names,
    traffic_classes_expected,
    traffic_classes_spec,
    traffic_classes_tree,
)
from repro.simnet.trace import (
    ArrivalTrace,
    TraceRecorder,
    TraceReplayGenerator,
)
from repro.simnet.workloads import ChunkColumns, hash_u64, integers, \
    pareto, stream_key, uniforms
from repro.simnet.topology import (
    DumbbellExperiment,
    ExperimentResult,
    overload_profile,
)

__all__ = [
    "AIMDFlowGenerator",
    "ArrivalTrace",
    "BottleneckQueue",
    "ChunkColumns",
    "TraceRecorder",
    "TraceReplayGenerator",
    "FeedbackRouter",
    "MultiBottleneckExperiment",
    "PathResult",
    "build_path",
    "DelayRecorder",
    "DumbbellExperiment",
    "ExperimentResult",
    "OnOffFlowGenerator",
    "ParetoBurstGenerator",
    "PoissonFlowGenerator",
    "Scenario",
    "ScenarioReport",
    "ScenarioWindow",
    "Simulator",
    "SummaryStatistics",
    "default_switch_spec",
    "hash_u64",
    "integers",
    "iter_scenarios",
    "overload_profile",
    "pareto",
    "publish_reports",
    "register_scenario",
    "run_scenario",
    "scenario",
    "scenario_names",
    "stream_key",
    "time_binned_mean",
    "traffic_classes_expected",
    "traffic_classes_spec",
    "traffic_classes_tree",
    "uniforms",
]
