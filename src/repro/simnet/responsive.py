"""Responsive (AIMD / TCP-like) traffic sources with ECN support.

The Figure 8 experiment uses open-loop Poisson flows, but the AQM
algorithms the paper compares against (RED, CoDel, PIE) were designed
for *responsive* senders that slow down when packets drop or get
ECN-marked.  This module provides that workload:

* :class:`AIMDFlowGenerator` — a self-clocked window-based sender:
  additive increase (one packet per window per RTT), multiplicative
  decrease on loss or on a delivered CE-marked packet, with at most
  one reaction per RTT (like TCP's congestion-event handling).
* ECN plumbing: packets carry ``ect`` (ECN-capable transport) and an
  AQM may set ``ce`` (congestion experienced) instead of dropping —
  see :meth:`repro.netfunc.aqm.pcam_aqm.PCAMAQM` with
  ``ecn_enabled=True``.

The generator learns about deliveries and drops through the
``delivery_listener`` / ``drop_listener`` hooks of
:class:`~repro.simnet.queue_sim.BottleneckQueue`; a
:class:`FeedbackRouter` fans those signals out per flow.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.packet import Packet
from repro.simnet.engine import Simulator

__all__ = ["AIMDFlowGenerator", "FeedbackRouter"]


class FeedbackRouter:
    """Dispatches queue delivery/drop events to per-flow handlers.

    Wire it into the queue::

        router = FeedbackRouter()
        queue = BottleneckQueue(sim, ...,
                                delivery_listener=router.on_delivery,
                                drop_listener=router.on_drop)
    """

    def __init__(self) -> None:
        self._delivery: dict[int, Callable[[Packet], None]] = {}
        self._drop: dict[int, Callable[[Packet], None]] = {}

    def register(self, flow_id: int,
                 on_delivery: Callable[[Packet], None],
                 on_drop: Callable[[Packet], None]) -> None:
        """Bind a flow's delivery/drop handlers by flow id."""
        if flow_id in self._delivery:
            raise ValueError(f"flow {flow_id} already registered")
        self._delivery[flow_id] = on_delivery
        self._drop[flow_id] = on_drop

    def on_delivery(self, packet: Packet) -> None:
        """Queue hook: route a delivered packet to its flow."""
        handler = self._delivery.get(packet.flow_id)
        if handler is not None:
            handler(packet)

    def on_drop(self, packet: Packet) -> None:
        """Queue hook: route a dropped packet to its flow."""
        handler = self._drop.get(packet.flow_id)
        if handler is not None:
            handler(packet)


class AIMDFlowGenerator:
    """A window-based congestion-controlled sender.

    Sends at rate ``cwnd / rtt`` (self-clocked pacing).  Each
    delivered, unmarked packet grows the window by ``1 / cwnd``
    (additive increase of one packet per RTT); a drop or a delivered
    CE mark halves it (multiplicative decrease), reacting at most once
    per RTT.

    Parameters
    ----------
    rtt_s:
        Base round-trip time (the feedback delay of the control loop).
    flow_id, packet_size_bytes, priority:
        Stamped onto every packet.
    initial_window, min_window, max_window:
        Window bounds in packets.
    ecn_capable:
        Mark packets ECT so an ECN-enabled AQM marks instead of drops.
    """

    def __init__(self, router: FeedbackRouter, rtt_s: float = 0.04,
                 flow_id: int = 0, packet_size_bytes: int = 1000,
                 priority: int = 0, initial_window: float = 2.0,
                 min_window: float = 1.0, max_window: float = 1e4,
                 ecn_capable: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        if rtt_s <= 0:
            raise ValueError(f"rtt must be positive: {rtt_s!r}")
        if not 1.0 <= min_window <= initial_window <= max_window:
            raise ValueError("need 1 <= min <= initial <= max window")
        self.rtt_s = rtt_s
        self.flow_id = flow_id
        self.packet_size_bytes = packet_size_bytes
        self.priority = priority
        self.min_window = min_window
        self.max_window = max_window
        self.ecn_capable = ecn_capable
        self._rng = rng or np.random.default_rng()
        self.cwnd = float(initial_window)
        self.generated = 0
        self.losses = 0
        self.marks_seen = 0
        self._last_backoff = -float("inf")
        self._sim: Simulator | None = None
        router.register(flow_id, self._on_delivery, self._on_drop)

    # ------------------------------------------------------------------
    # Congestion control
    # ------------------------------------------------------------------
    def _backoff(self, now: float) -> None:
        """Multiplicative decrease, at most once per RTT."""
        if now - self._last_backoff < self.rtt_s:
            return
        self._last_backoff = now
        self.cwnd = max(self.min_window, self.cwnd / 2.0)

    def _on_delivery(self, packet: Packet) -> None:
        assert self._sim is not None
        if packet.field("ce", False):
            self.marks_seen += 1
            self._backoff(self._sim.now)
            return
        # Additive increase: one packet per window per RTT.
        self.cwnd = min(self.max_window, self.cwnd + 1.0 / self.cwnd)

    def _on_drop(self, packet: Packet) -> None:
        assert self._sim is not None
        self.losses += 1
        self._backoff(self._sim.now)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def send_rate_pps(self) -> float:
        """Current self-clocked pacing rate."""
        return self.cwnd / self.rtt_s

    def attach(self, sim: Simulator, sink) -> None:
        """Start the self-clocked sender on the simulator."""
        self._sim = sim

        def emit() -> None:
            packet = Packet(size_bytes=self.packet_size_bytes,
                            flow_id=self.flow_id,
                            priority=self.priority,
                            created_at=sim.now)
            if self.ecn_capable:
                packet.fields["ect"] = True
            self.generated += 1
            sink(packet)
            # Slight jitter desynchronises competing flows.
            interval = 1.0 / self.send_rate_pps
            jitter = float(self._rng.uniform(0.9, 1.1))
            sim.schedule(interval * jitter, emit)

        sim.schedule(float(self._rng.uniform(0.0, self.rtt_s)), emit)
