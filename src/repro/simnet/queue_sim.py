"""The bottleneck queue under study (Figure 8's simulated queue).

A single FIFO served at a fixed line rate, with an AQM policy hooked
at both the enqueue and dequeue sides, a hard capacity (tail drop as
the last resort), and full metrics instrumentation.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.packet import Packet
from repro.netfunc.aqm.base import AQMAlgorithm, TailDropAQM
from repro.simnet.engine import Simulator
from repro.simnet.metrics import DelayRecorder

__all__ = ["BottleneckQueue"]


class BottleneckQueue:
    """A capacity-limited FIFO with pluggable AQM.

    Parameters
    ----------
    sim:
        The event loop driving arrivals and departures.
    service_rate_bps:
        Drain rate of the output line [bits/s].
    capacity_packets:
        Hard buffer limit; arrivals beyond it are tail-dropped even if
        the AQM admitted them.
    aqm:
        The management policy; defaults to plain tail drop.
    recorder:
        Metrics sink; a fresh one is created when omitted.
    sample_interval_s:
        Period of the queue-occupancy sampler (0 disables sampling).
    """

    def __init__(self, sim: Simulator, service_rate_bps: float,
                 capacity_packets: int = 1000,
                 aqm: AQMAlgorithm | None = None,
                 recorder: DelayRecorder | None = None,
                 sample_interval_s: float = 0.0,
                 delivery_listener=None,
                 drop_listener=None) -> None:
        if service_rate_bps <= 0:
            raise ValueError(
                f"service rate must be positive: {service_rate_bps!r}")
        if capacity_packets < 1:
            raise ValueError(
                f"capacity must be >= 1 packet: {capacity_packets!r}")
        self.sim = sim
        self.service_rate_bps = service_rate_bps
        self.capacity_packets = capacity_packets
        self.aqm = aqm or TailDropAQM()
        self.recorder = recorder or DelayRecorder()
        self._queue: deque[Packet] = deque()
        self._backlog_bytes = 0
        self._busy = False
        self._last_sojourn_s = 0.0
        self.admitted = 0
        self.aqm_drops = 0
        self.overflow_drops = 0
        #: Optional hooks for responsive sources (AIMD congestion
        #: control): called with the packet on service completion and
        #: on every drop, respectively.
        self.delivery_listener = delivery_listener
        self.drop_listener = drop_listener
        if sample_interval_s > 0.0:
            sim.every(sample_interval_s, self._sample)

    # ------------------------------------------------------------------
    # QueueView protocol
    # ------------------------------------------------------------------
    @property
    def backlog_packets(self) -> int:
        """Packets waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting (excluding the one in service)."""
        return self._backlog_bytes

    @property
    def last_sojourn_s(self) -> float:
        """Sojourn time of the most recently served packet [s]."""
        return self._last_sojourn_s

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Arrival entry point (wired as the generators' sink)."""
        now = self.sim.now
        if self.aqm.on_enqueue(packet, self, now):
            self._drop(packet, aqm=True)
            return
        if len(self._queue) >= self.capacity_packets:
            self._drop(packet, aqm=False)
            return
        packet.enqueued_at = now
        self._queue.append(packet)
        self._backlog_bytes += packet.size_bytes
        self.admitted += 1
        if not self._busy:
            self._serve_next()

    def enqueue_batch(self, packets: Sequence[Packet]) -> int:
        """Admit a chunk of simultaneous arrivals; returns how many.

        The AQM is consulted once for the whole chunk through its
        vectorised :meth:`~repro.netfunc.aqm.base.AQMAlgorithm.
        on_enqueue_batch` hook — all verdicts are made against the
        chunk-start queue state (a chunk of one is exactly
        :meth:`enqueue`).  Capacity is still enforced per packet as
        survivors are appended.
        """
        now = self.sim.now
        verdicts = np.asarray(
            self.aqm.on_enqueue_batch(packets, self, now), dtype=bool)
        admitted = 0
        for packet, drop in zip(packets, verdicts):
            if drop:
                self._drop(packet, aqm=True)
                continue
            if len(self._queue) >= self.capacity_packets:
                self._drop(packet, aqm=False)
                continue
            packet.enqueued_at = now
            self._queue.append(packet)
            self._backlog_bytes += packet.size_bytes
            self.admitted += 1
            admitted += 1
        if admitted and not self._busy:
            self._serve_next()
        return admitted

    def _serve_next(self) -> None:
        while self._queue:
            packet = self._queue.popleft()
            self._backlog_bytes -= packet.size_bytes
            now = self.sim.now
            assert packet.enqueued_at is not None
            sojourn = now - packet.enqueued_at
            if self.aqm.on_dequeue(packet, self, now, sojourn):
                self._drop(packet, aqm=True)
                continue
            self._busy = True
            service_time = packet.size_bytes * 8.0 / self.service_rate_bps
            self.sim.schedule(
                service_time, lambda p=packet: self._complete(p))
            return
        self._busy = False

    def _complete(self, packet: Packet) -> None:
        now = self.sim.now
        packet.dequeued_at = now
        assert packet.enqueued_at is not None
        sojourn = now - packet.enqueued_at
        self._last_sojourn_s = sojourn
        self.recorder.record_departure(now, sojourn, packet.priority)
        if self.delivery_listener is not None:
            self.delivery_listener(packet)
        self._serve_next()

    def _drop(self, packet: Packet, *, aqm: bool) -> None:
        packet.dropped = True
        if aqm:
            self.aqm_drops += 1
        else:
            self.overflow_drops += 1
        self.recorder.record_drop(self.sim.now, packet.priority)
        if self.drop_listener is not None:
            self.drop_listener(packet)

    def _sample(self) -> None:
        self.recorder.record_queue_sample(
            self.sim.now, len(self._queue), self._backlog_bytes)
