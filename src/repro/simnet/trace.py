"""Arrival-trace capture and replay.

Comparing AQM policies is only fair on *identical* arrival processes.
The seeded generators already guarantee that for synthetic traffic;
this module extends the guarantee to arbitrary workloads: capture any
generator's output once (:class:`TraceRecorder`), persist it
(``.npz``), and replay it bit-identically against every policy
(:class:`TraceReplayGenerator`) — or import externally captured
traces by building an :class:`ArrivalTrace` from arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.packet import Packet
from repro.simnet.engine import Simulator

__all__ = ["ArrivalTrace", "TraceRecorder", "TraceReplayGenerator"]


@dataclass(frozen=True)
class ArrivalTrace:
    """A canned packet arrival process."""

    times_s: np.ndarray
    sizes_bytes: np.ndarray
    flow_ids: np.ndarray
    priorities: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.times_s)
        for name in ("sizes_bytes", "flow_ids", "priorities"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length != times length")
        if n and np.any(np.diff(self.times_s) < 0):
            raise ValueError("trace times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def duration_s(self) -> float:
        """Time of the last arrival [s]."""
        return float(self.times_s[-1]) if len(self) else 0.0

    @property
    def mean_rate_pps(self) -> float:
        """Average arrival rate over the trace [packets/s]."""
        if len(self) < 2 or self.duration_s == 0.0:
            return 0.0
        return (len(self) - 1) / self.duration_s

    @property
    def offered_load_bps(self) -> float:
        """Average offered load of the trace [bits/s]."""
        if self.duration_s == 0.0:
            return 0.0
        return float(self.sizes_bytes.sum()) * 8.0 / self.duration_s

    def save(self, path: str | Path) -> None:
        """Persist the trace to a ``.npz`` archive."""
        np.savez_compressed(Path(path), times_s=self.times_s,
                            sizes_bytes=self.sizes_bytes,
                            flow_ids=self.flow_ids,
                            priorities=self.priorities)

    @classmethod
    def load(cls, path: str | Path) -> "ArrivalTrace":
        """Load a trace saved by :meth:`save`."""
        with np.load(Path(path)) as archive:
            return cls(times_s=archive["times_s"],
                       sizes_bytes=archive["sizes_bytes"],
                       flow_ids=archive["flow_ids"],
                       priorities=archive["priorities"])

    @classmethod
    def from_columns(cls, chunks) -> "ArrivalTrace":
        """Build a trace from an iterable of scenario column chunks.

        Accepts whatever :meth:`Scenario.stream
        <repro.simnet.scenarios.Scenario.stream>` yields and
        materialises the arrival process (times, sizes, flow ids,
        priorities) — the 5-tuple columns are deliberately dropped:
        a trace is a queueing workload, not a forwarding one.
        """
        chunks = list(chunks)
        if not chunks:
            return cls(times_s=np.zeros(0),
                       sizes_bytes=np.zeros(0, dtype=np.int64),
                       flow_ids=np.zeros(0, dtype=np.int64),
                       priorities=np.zeros(0, dtype=np.int64))
        return cls(
            times_s=np.concatenate([c.times_s for c in chunks]),
            sizes_bytes=np.concatenate([c.sizes_bytes for c in chunks]),
            flow_ids=np.concatenate([c.flow_ids for c in chunks]),
            priorities=np.concatenate([c.priorities for c in chunks]))


class TraceRecorder:
    """A pass-through sink that records everything it forwards.

    Interpose it between a generator and a queue::

        recorder = TraceRecorder(sim, queue.enqueue)
        generator.attach(sim, recorder)
        ...
        trace = recorder.trace()
    """

    def __init__(self, sim: Simulator, sink=None) -> None:
        self._sim = sim
        self._sink = sink
        self._times: list[float] = []
        self._sizes: list[int] = []
        self._flows: list[int] = []
        self._priorities: list[int] = []

    def __call__(self, packet: Packet) -> None:
        self._times.append(self._sim.now)
        self._sizes.append(packet.size_bytes)
        self._flows.append(packet.flow_id)
        self._priorities.append(packet.priority)
        if self._sink is not None:
            self._sink(packet)

    def __len__(self) -> int:
        return len(self._times)

    def trace(self) -> ArrivalTrace:
        """The recorded arrivals as an immutable trace."""
        return ArrivalTrace(
            times_s=np.asarray(self._times),
            sizes_bytes=np.asarray(self._sizes, dtype=int),
            flow_ids=np.asarray(self._flows, dtype=int),
            priorities=np.asarray(self._priorities, dtype=int))


class TraceReplayGenerator:
    """Replays an :class:`ArrivalTrace` into a sink, bit-identically."""

    def __init__(self, trace: ArrivalTrace,
                 time_offset_s: float = 0.0) -> None:
        if time_offset_s < 0:
            raise ValueError(
                f"offset must be non-negative: {time_offset_s!r}")
        self.trace = trace
        self.time_offset_s = time_offset_s
        self.replayed = 0

    def attach(self, sim: Simulator, sink) -> None:
        """Schedule every trace arrival on the simulator."""
        for index in range(len(self.trace)):
            when = float(self.trace.times_s[index]) + self.time_offset_s

            def emit(i=index) -> None:
                packet = Packet(
                    size_bytes=int(self.trace.sizes_bytes[i]),
                    flow_id=int(self.trace.flow_ids[i]),
                    priority=int(self.trace.priorities[i]),
                    created_at=sim.now)
                self.replayed += 1
                sink(packet)

            sim.schedule_at(when, emit)
