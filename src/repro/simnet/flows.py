"""Traffic generators for the queue-management experiments.

Figure 8 simulates "network queues with the Poisson distributed
network flows"; :class:`PoissonFlowGenerator` is that workload.  The
on-off and Pareto-burst generators provide the bursty traffic whose
detection the paper attributes to the third-order derivative feature
("the third-order derivative provides information about the bursty
periods of the network traffic").
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.packet import Packet
from repro.simnet.engine import Simulator

__all__ = [
    "FlowGenerator",
    "OnOffFlowGenerator",
    "ParetoBurstGenerator",
    "PoissonFlowGenerator",
]

#: Callback signature a generator delivers packets into.
PacketSink = Callable[[Packet], None]


class FlowGenerator(Protocol):
    """Anything that can be attached to a simulator and emit packets."""

    def attach(self, sim: Simulator, sink: PacketSink) -> None:
        """Start emitting packets into ``sink`` on the simulator."""
        ...


class PoissonFlowGenerator:
    """Poisson arrivals: exponential inter-arrival times at a mean rate.

    Parameters
    ----------
    rate_pps:
        Mean packet arrival rate [packets/s].
    packet_size_bytes:
        Fixed wire size of generated packets.
    flow_id, priority:
        Stamped onto every packet.
    rng:
        Seeded generator for reproducible arrival processes.
    stop_at:
        Optional simulation time after which the flow goes silent.
    rate_fn:
        Optional time-varying rate multiplier ``f(t) -> factor``; used
        to create the overload phases of the Figure 8 experiment.
    """

    def __init__(self, rate_pps: float, packet_size_bytes: int = 1000,
                 flow_id: int = 0, priority: int = 0,
                 rng: np.random.Generator | None = None,
                 stop_at: float | None = None,
                 rate_fn: Callable[[float], float] | None = None) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive: {rate_pps!r}")
        self.rate_pps = rate_pps
        self.packet_size_bytes = packet_size_bytes
        self.flow_id = flow_id
        self.priority = priority
        self.stop_at = stop_at
        self.rate_fn = rate_fn
        self._rng = rng or np.random.default_rng()
        self.generated = 0

    def _current_rate(self, now: float) -> float:
        if self.rate_fn is None:
            return self.rate_pps
        factor = self.rate_fn(now)
        if factor < 0:
            raise ValueError(f"rate factor must be >= 0: {factor!r}")
        return self.rate_pps * factor

    def attach(self, sim: Simulator, sink: PacketSink) -> None:
        """Start emitting packets into ``sink``."""

        def emit() -> None:
            if self.stop_at is not None and sim.now >= self.stop_at:
                return
            packet = Packet(size_bytes=self.packet_size_bytes,
                            flow_id=self.flow_id,
                            priority=self.priority,
                            created_at=sim.now)
            self.generated += 1
            sink(packet)
            self._schedule_next(sim, emit)

        self._schedule_next(sim, emit)

    def _schedule_next(self, sim: Simulator,
                       emit: Callable[[], None]) -> None:
        rate = self._current_rate(sim.now)
        if rate <= 0.0:
            # Silent phase: poll again shortly for the rate to return.
            sim.schedule(1.0 / self.rate_pps, lambda: self._resume(sim, emit))
            return
        sim.schedule(float(self._rng.exponential(1.0 / rate)), emit)

    def _resume(self, sim: Simulator, emit: Callable[[], None]) -> None:
        self._schedule_next(sim, emit)


class OnOffFlowGenerator:
    """Markov-modulated on-off source (exponential on/off periods).

    During ON periods packets arrive as Poisson at ``peak_rate_pps``;
    OFF periods are silent.
    """

    def __init__(self, peak_rate_pps: float, mean_on_s: float,
                 mean_off_s: float, packet_size_bytes: int = 1000,
                 flow_id: int = 0, priority: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        if peak_rate_pps <= 0:
            raise ValueError(f"rate must be positive: {peak_rate_pps!r}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("on/off periods must be positive")
        self.peak_rate_pps = peak_rate_pps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.packet_size_bytes = packet_size_bytes
        self.flow_id = flow_id
        self.priority = priority
        self._rng = rng or np.random.default_rng()
        self.generated = 0
        self._on = False
        self._phase_ends = 0.0

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time the source is ON."""
        return self.mean_on_s / (self.mean_on_s + self.mean_off_s)

    @property
    def mean_rate_pps(self) -> float:
        """Long-run average arrival rate."""
        return self.peak_rate_pps * self.duty_cycle

    def attach(self, sim: Simulator, sink: PacketSink) -> None:
        """Start emitting packets into ``sink`` on the simulator."""
        def start_on() -> None:
            self._on = True
            self._phase_ends = sim.now + float(
                self._rng.exponential(self.mean_on_s))
            sim.schedule_at(self._phase_ends, start_off)
            emit()

        def start_off() -> None:
            self._on = False
            sim.schedule(float(self._rng.exponential(self.mean_off_s)),
                         start_on)

        def emit() -> None:
            if not self._on or sim.now >= self._phase_ends:
                return
            packet = Packet(size_bytes=self.packet_size_bytes,
                            flow_id=self.flow_id,
                            priority=self.priority,
                            created_at=sim.now)
            self.generated += 1
            sink(packet)
            sim.schedule(
                float(self._rng.exponential(1.0 / self.peak_rate_pps)),
                emit)

        sim.schedule(float(self._rng.exponential(self.mean_off_s)),
                     start_on)


class ParetoBurstGenerator:
    """Heavy-tailed burst trains (Pareto burst sizes, Poisson epochs).

    Burst epochs arrive as Poisson; each epoch injects a back-to-back
    train of packets whose count is Pareto distributed — the classic
    self-similar traffic model and the stressor for the third-order
    derivative feature of the analog AQM.
    """

    def __init__(self, burst_rate_hz: float, mean_burst_packets: float,
                 pareto_alpha: float = 1.5,
                 packet_size_bytes: int = 1000,
                 packet_spacing_s: float = 1e-5,
                 flow_id: int = 0, priority: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        if burst_rate_hz <= 0:
            raise ValueError(f"burst rate must be positive: {burst_rate_hz!r}")
        if mean_burst_packets < 1:
            raise ValueError("mean burst size must be >= 1 packet")
        if pareto_alpha <= 1.0:
            raise ValueError(
                f"alpha must exceed 1 for a finite mean: {pareto_alpha!r}")
        self.burst_rate_hz = burst_rate_hz
        self.mean_burst_packets = mean_burst_packets
        self.pareto_alpha = pareto_alpha
        self.packet_size_bytes = packet_size_bytes
        self.packet_spacing_s = packet_spacing_s
        self.flow_id = flow_id
        self.priority = priority
        self._rng = rng or np.random.default_rng()
        self.generated = 0
        # Scale so the Pareto mean equals mean_burst_packets:
        # mean = xm * alpha / (alpha - 1).
        self._x_m = mean_burst_packets * (pareto_alpha - 1) / pareto_alpha

    def _burst_size(self) -> int:
        size = self._x_m * (1.0 + self._rng.pareto(self.pareto_alpha))
        return max(1, int(round(size)))

    def attach(self, sim: Simulator, sink: PacketSink) -> None:
        """Start emitting packets into ``sink`` on the simulator."""
        def burst() -> None:
            count = self._burst_size()
            for index in range(count):
                delay = index * self.packet_spacing_s

                def emit_one() -> None:
                    packet = Packet(size_bytes=self.packet_size_bytes,
                                    flow_id=self.flow_id,
                                    priority=self.priority,
                                    created_at=sim.now)
                    self.generated += 1
                    sink(packet)

                sim.schedule(delay, emit_one)
            sim.schedule(float(self._rng.exponential(
                1.0 / self.burst_rate_hz)), burst)

        sim.schedule(float(self._rng.exponential(1.0 / self.burst_rate_hz)),
                     burst)
