"""Multi-bottleneck paths: chained queues with propagation delay.

The paper's bufferbloat citation (Ye et al., "Combating Bufferbloat
in Multi-Bottleneck Networks" [60]) concerns exactly this topology:
congestion can form at *several* hops, and per-hop AQM must keep the
end-to-end delay bounded.  This module chains
:class:`~repro.simnet.queue_sim.BottleneckQueue` instances through
propagation-delay links and records end-to-end statistics.

Two path flavours live here:

* :func:`build_path` / :class:`MultiBottleneckExperiment` — abstract
  bottleneck queues inside the event simulator (AQM research rig);
* :func:`run_switch_path` — a chain of *full cognitive switches*
  (``build_switch`` products or whole
  :class:`~repro.fabric.fabric.SwitchFabric` instances), admission
  slices riding hop to hop through line-rate drains and link delays,
  so a topology of sharded switches is one scenario call.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.netfunc.aqm.base import AQMAlgorithm, TailDropAQM
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.flows import PoissonFlowGenerator
from repro.simnet.metrics import DelayRecorder
from repro.simnet.queue_sim import BottleneckQueue

__all__ = ["MultiBottleneckExperiment", "PathResult", "SwitchHopStats",
           "SwitchPathResult", "build_path", "run_switch_path"]


@dataclass(frozen=True)
class PathResult:
    """End-to-end outcome of one multi-hop run."""

    end_to_end_delays_s: np.ndarray
    delivered: int
    dropped: int
    per_hop_recorders: tuple[DelayRecorder, ...]
    queues: tuple[BottleneckQueue, ...]

    @property
    def mean_delay_s(self) -> float:
        """Mean end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(self.end_to_end_delays_s.mean())

    @property
    def p95_delay_s(self) -> float:
        """95th-percentile end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(np.percentile(self.end_to_end_delays_s, 95))


def build_path(sim: Simulator,
               hop_rates_bps: Sequence[float],
               propagation_delays_s: Sequence[float],
               aqm_factory: Callable[[], AQMAlgorithm],
               capacity_packets: int = 2000,
               on_delivery: Callable[[Packet], None] | None = None
               ) -> list[BottleneckQueue]:
    """Chain bottleneck queues into a path.

    ``propagation_delays_s`` has one entry per hop: the latency of the
    link *after* that hop (the last entry is the final link to the
    receiver).  The returned list's first queue is the path entry
    point.
    """
    if len(hop_rates_bps) != len(propagation_delays_s):
        raise ValueError("need one propagation delay per hop")
    if not hop_rates_bps:
        raise ValueError("path needs at least one hop")
    queues: list[BottleneckQueue] = []
    for rate in hop_rates_bps:
        queues.append(BottleneckQueue(sim, service_rate_bps=rate,
                                      capacity_packets=capacity_packets,
                                      aqm=aqm_factory()))

    def make_forwarder(next_queue: BottleneckQueue,
                       delay: float) -> Callable[[Packet], None]:
        def forward(packet: Packet) -> None:
            sim.schedule(delay, lambda p=packet: next_queue.enqueue(p))
        return forward

    for index in range(len(queues) - 1):
        queues[index].delivery_listener = make_forwarder(
            queues[index + 1], float(propagation_delays_s[index]))

    if on_delivery is not None:
        final_delay = float(propagation_delays_s[-1])

        def deliver(packet: Packet) -> None:
            sim.schedule(final_delay, lambda p=packet: on_delivery(p))

        queues[-1].delivery_listener = deliver
    return queues


@dataclass
class MultiBottleneckExperiment:
    """Poisson sources through a two-bottleneck path.

    The second hop is the tighter one by default, so congestion forms
    downstream — the regime where end-to-end delay control needs AQM
    at *both* hops.
    """

    n_flows: int = 6
    load: float = 1.2
    hop_rates_bps: tuple[float, ...] = (60e6, 40e6)
    propagation_delays_s: tuple[float, ...] = (0.002, 0.002)
    packet_size_bytes: int = 1000
    capacity_packets: int = 2000
    duration_s: float = 6.0
    seed: int = 21

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(f"need at least one flow: {self.n_flows!r}")
        if len(self.hop_rates_bps) != len(self.propagation_delays_s):
            raise ValueError("need one propagation delay per hop")

    @property
    def bottleneck_rate_bps(self) -> float:
        """The tightest hop's rate [bits/s]."""
        return min(self.hop_rates_bps)

    def run(self, aqm_factory: Callable[[], AQMAlgorithm] | None = None
            ) -> PathResult:
        """Execute one run with the given per-hop AQM factory."""
        sim = Simulator()
        end_to_end: list[float] = []

        def on_delivery(packet: Packet) -> None:
            end_to_end.append(sim.now - packet.created_at)

        queues = build_path(
            sim, self.hop_rates_bps, self.propagation_delays_s,
            aqm_factory or TailDropAQM,
            capacity_packets=self.capacity_packets,
            on_delivery=on_delivery)

        total_pps = (self.load * self.bottleneck_rate_bps
                     / (8.0 * self.packet_size_bytes))
        rng = np.random.default_rng(self.seed)
        for index in range(self.n_flows):
            PoissonFlowGenerator(
                rate_pps=total_pps / self.n_flows,
                packet_size_bytes=self.packet_size_bytes,
                flow_id=index,
                rng=np.random.default_rng(rng.integers(2 ** 63))
            ).attach(sim, queues[0].enqueue)
        sim.run_until(self.duration_s)

        dropped = sum(queue.aqm_drops + queue.overflow_drops
                      for queue in queues)
        return PathResult(
            end_to_end_delays_s=np.asarray(end_to_end),
            delivered=len(end_to_end),
            dropped=dropped,
            per_hop_recorders=tuple(queue.recorder for queue in queues),
            queues=tuple(queues))


# ----------------------------------------------------------------------
# Cognitive-switch paths (single switches or whole fabrics per hop)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SwitchHopStats:
    """What one hop of a switch path did to the traffic."""

    admitted: int
    verdict_counts: dict[str, int]
    energy_total_j: float


@dataclass(frozen=True)
class SwitchPathResult:
    """End-to-end outcome of one cognitive-switch path run."""

    delivered: int
    end_to_end_delays_s: np.ndarray
    hops: tuple[SwitchHopStats, ...]

    @property
    def mean_delay_s(self) -> float:
        """Mean end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(self.end_to_end_delays_s.mean())

    @property
    def p95_delay_s(self) -> float:
        """95th-percentile end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(np.percentile(self.end_to_end_delays_s, 95))

    @property
    def energy_total_j(self) -> float:
        """Total energy across every hop (all shards of all hops) [J]."""
        return sum(hop.energy_total_j for hop in self.hops)


def _manager_of(processor):
    """A processor's egress surface: itself, or its traffic manager.

    A :class:`~repro.fabric.fabric.SwitchFabric` serves ``n_ports`` /
    ``dequeue`` directly; a single ``build_switch`` product exposes
    them through its traffic manager.  Duck-typing here is what lets
    one path mix single switches and whole fabrics hop by hop.
    """
    return getattr(processor, "traffic_manager", processor)


def run_switch_path(processors: Sequence, stream, *,
                    link_delays_s: Sequence[float],
                    port_rate_bps: float = 200e6,
                    admission_chunk: int = 256,
                    drain_step_s: float = 0.01,
                    max_drain_steps: int = 10_000) -> SwitchPathResult:
    """Drive a traffic stream through a chain of cognitive switches.

    ``processors`` are duck-typed hops — single switches or whole
    fabrics.  ``stream`` yields
    :class:`~repro.simnet.workloads.ChunkColumns` (a scenario stream)
    or plain packet sequences.  ``link_delays_s`` has one entry per
    hop: the propagation latency of the link *after* that hop (the
    last entry leads to the receiver).

    Time advances at admission-slice granularity exactly like
    :func:`~repro.simnet.scenarios.run_scenario`: before each slice,
    every hop's egress drains at line rate up to the slice time and
    the drained packets ride their links to the next hop's ingress;
    then each hop admits whatever has arrived.  After the stream
    ends, drains continue in ``drain_step_s`` steps until the path is
    empty.
    """
    if len(processors) != len(link_delays_s):
        raise ValueError("need one link delay per hop")
    if not processors:
        raise ValueError("path needs at least one hop")
    if admission_chunk < 1:
        raise ValueError(
            f"admission chunk must be >= 1: {admission_chunk!r}")

    n_hops = len(processors)
    delays = [float(d) for d in link_delays_s]
    # Per-hop ingress: (ready_time, seq, packet) min-heaps; the seq
    # breaks ties so heapq never compares packets.
    ingress: list[list] = [[] for _ in range(n_hops)]
    seq = itertools.count()
    admitted = [0] * n_hops
    verdicts: list[Counter] = [Counter() for _ in range(n_hops)]
    credits = [[0.0] * _manager_of(p).n_ports for p in processors]
    delivered: list[float] = []

    def drain_hop(hop: int, t_from: float, t_until: float) -> None:
        if t_until <= t_from:
            return
        manager = _manager_of(processors[hop])
        budget = (t_until - t_from) * port_rate_bps / 8.0
        for port in range(manager.n_ports):
            credits[hop][port] += budget
            while credits[hop][port] > 0.0:
                packet = manager.dequeue(port, now=t_until)
                if packet is None:
                    credits[hop][port] = 0.0
                    break
                credits[hop][port] -= packet.size_bytes
                ready = t_until + delays[hop]
                if hop + 1 < n_hops:
                    heapq.heappush(ingress[hop + 1],
                                   (ready, next(seq), packet))
                else:
                    delivered.append(ready - packet.created_at)

    def admit_hop(hop: int, t_now: float) -> None:
        batch = []
        heap = ingress[hop]
        while heap and heap[0][0] <= t_now:
            batch.append(heapq.heappop(heap)[2])
        if not batch:
            return
        results = processors[hop].process_batch(
            batch, now=t_now, chunk_size=len(batch))
        admitted[hop] += len(batch)
        verdicts[hop].update(r.verdict.value for r in results)

    def step(t_from: float, t_until: float) -> None:
        for hop in range(n_hops):
            drain_hop(hop, t_from, t_until)
        for hop in range(1, n_hops):
            admit_hop(hop, t_until)

    t_prev = 0.0
    t_last = 0.0
    for chunk in stream:
        packets = chunk.to_packets() if hasattr(chunk, "to_packets") \
            else list(chunk)
        for start in range(0, len(packets), admission_chunk):
            piece = packets[start:start + admission_chunk]
            t_now = max(t_prev, float(piece[0].created_at))
            step(t_prev, t_now)
            results = processors[0].process_batch(
                piece, now=t_now, chunk_size=len(piece))
            admitted[0] += len(piece)
            verdicts[0].update(r.verdict.value for r in results)
            t_prev = t_now
            t_last = max(t_last, float(piece[-1].created_at))

    # Tail: keep draining until the whole path is empty.
    t_now = max(t_prev, t_last)
    for _ in range(max_drain_steps):
        before = len(delivered)
        t_next = t_now + drain_step_s
        step(t_now, t_next)
        t_now = t_next
        if len(delivered) == before and not any(ingress):
            break

    return SwitchPathResult(
        delivered=len(delivered),
        end_to_end_delays_s=np.asarray(delivered),
        hops=tuple(SwitchHopStats(
            admitted=admitted[hop],
            verdict_counts=dict(verdicts[hop]),
            energy_total_j=float(processors[hop].energy_total_j()))
            for hop in range(n_hops)))
