"""Multi-bottleneck paths: chained queues with propagation delay.

The paper's bufferbloat citation (Ye et al., "Combating Bufferbloat
in Multi-Bottleneck Networks" [60]) concerns exactly this topology:
congestion can form at *several* hops, and per-hop AQM must keep the
end-to-end delay bounded.  This module chains
:class:`~repro.simnet.queue_sim.BottleneckQueue` instances through
propagation-delay links and records end-to-end statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.netfunc.aqm.base import AQMAlgorithm, TailDropAQM
from repro.packet import Packet
from repro.simnet.engine import Simulator
from repro.simnet.flows import PoissonFlowGenerator
from repro.simnet.metrics import DelayRecorder
from repro.simnet.queue_sim import BottleneckQueue

__all__ = ["MultiBottleneckExperiment", "PathResult", "build_path"]


@dataclass(frozen=True)
class PathResult:
    """End-to-end outcome of one multi-hop run."""

    end_to_end_delays_s: np.ndarray
    delivered: int
    dropped: int
    per_hop_recorders: tuple[DelayRecorder, ...]
    queues: tuple[BottleneckQueue, ...]

    @property
    def mean_delay_s(self) -> float:
        """Mean end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(self.end_to_end_delays_s.mean())

    @property
    def p95_delay_s(self) -> float:
        """95th-percentile end-to-end delay [s]."""
        if self.end_to_end_delays_s.size == 0:
            return 0.0
        return float(np.percentile(self.end_to_end_delays_s, 95))


def build_path(sim: Simulator,
               hop_rates_bps: Sequence[float],
               propagation_delays_s: Sequence[float],
               aqm_factory: Callable[[], AQMAlgorithm],
               capacity_packets: int = 2000,
               on_delivery: Callable[[Packet], None] | None = None
               ) -> list[BottleneckQueue]:
    """Chain bottleneck queues into a path.

    ``propagation_delays_s`` has one entry per hop: the latency of the
    link *after* that hop (the last entry is the final link to the
    receiver).  The returned list's first queue is the path entry
    point.
    """
    if len(hop_rates_bps) != len(propagation_delays_s):
        raise ValueError("need one propagation delay per hop")
    if not hop_rates_bps:
        raise ValueError("path needs at least one hop")
    queues: list[BottleneckQueue] = []
    for rate in hop_rates_bps:
        queues.append(BottleneckQueue(sim, service_rate_bps=rate,
                                      capacity_packets=capacity_packets,
                                      aqm=aqm_factory()))

    def make_forwarder(next_queue: BottleneckQueue,
                       delay: float) -> Callable[[Packet], None]:
        def forward(packet: Packet) -> None:
            sim.schedule(delay, lambda p=packet: next_queue.enqueue(p))
        return forward

    for index in range(len(queues) - 1):
        queues[index].delivery_listener = make_forwarder(
            queues[index + 1], float(propagation_delays_s[index]))

    if on_delivery is not None:
        final_delay = float(propagation_delays_s[-1])

        def deliver(packet: Packet) -> None:
            sim.schedule(final_delay, lambda p=packet: on_delivery(p))

        queues[-1].delivery_listener = deliver
    return queues


@dataclass
class MultiBottleneckExperiment:
    """Poisson sources through a two-bottleneck path.

    The second hop is the tighter one by default, so congestion forms
    downstream — the regime where end-to-end delay control needs AQM
    at *both* hops.
    """

    n_flows: int = 6
    load: float = 1.2
    hop_rates_bps: tuple[float, ...] = (60e6, 40e6)
    propagation_delays_s: tuple[float, ...] = (0.002, 0.002)
    packet_size_bytes: int = 1000
    capacity_packets: int = 2000
    duration_s: float = 6.0
    seed: int = 21

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(f"need at least one flow: {self.n_flows!r}")
        if len(self.hop_rates_bps) != len(self.propagation_delays_s):
            raise ValueError("need one propagation delay per hop")

    @property
    def bottleneck_rate_bps(self) -> float:
        """The tightest hop's rate [bits/s]."""
        return min(self.hop_rates_bps)

    def run(self, aqm_factory: Callable[[], AQMAlgorithm] | None = None
            ) -> PathResult:
        """Execute one run with the given per-hop AQM factory."""
        sim = Simulator()
        end_to_end: list[float] = []

        def on_delivery(packet: Packet) -> None:
            end_to_end.append(sim.now - packet.created_at)

        queues = build_path(
            sim, self.hop_rates_bps, self.propagation_delays_s,
            aqm_factory or TailDropAQM,
            capacity_packets=self.capacity_packets,
            on_delivery=on_delivery)

        total_pps = (self.load * self.bottleneck_rate_bps
                     / (8.0 * self.packet_size_bytes))
        rng = np.random.default_rng(self.seed)
        for index in range(self.n_flows):
            PoissonFlowGenerator(
                rate_pps=total_pps / self.n_flows,
                packet_size_bytes=self.packet_size_bytes,
                flow_id=index,
                rng=np.random.default_rng(rng.integers(2 ** 63))
            ).attach(sim, queues[0].enqueue)
        sim.run_until(self.duration_s)

        dropped = sum(queue.aqm_drops + queue.overflow_drops
                      for queue in queues)
        return PathResult(
            end_to_end_delays_s=np.asarray(end_to_end),
            delivered=len(end_to_end),
            dropped=dropped,
            per_hop_recorders=tuple(queue.recorder for queue in queues),
            queues=tuple(queues))
