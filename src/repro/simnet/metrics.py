"""Measurement instruments for queue experiments.

The Figure 8 plot needs per-packet delays over time with and without
AQM; the ablations additionally need drop counts, throughput and
queue-occupancy series.  :class:`DelayRecorder` collects the raw
events; the free functions summarise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DelayRecorder",
    "SummaryStatistics",
    "time_binned_mean",
]


@dataclass
class DelayRecorder:
    """Accumulates per-packet outcomes during a run."""

    departure_times: list[float] = field(default_factory=list)
    sojourn_times: list[float] = field(default_factory=list)
    drop_times: list[float] = field(default_factory=list)
    drop_priorities: list[int] = field(default_factory=list)
    sample_times: list[float] = field(default_factory=list)
    queue_lengths: list[int] = field(default_factory=list)
    queue_bytes: list[int] = field(default_factory=list)
    delivered_priorities: list[int] = field(default_factory=list)

    def record_departure(self, time: float, sojourn: float,
                         priority: int = 0) -> None:
        """Log one served packet (time, sojourn, priority)."""
        self.departure_times.append(time)
        self.sojourn_times.append(sojourn)
        self.delivered_priorities.append(priority)

    def record_drop(self, time: float, priority: int = 0) -> None:
        """Log one dropped packet."""
        self.drop_times.append(time)
        self.drop_priorities.append(priority)

    def record_queue_sample(self, time: float, packets: int,
                            bytes_: int) -> None:
        """Log one periodic queue-occupancy sample."""
        self.sample_times.append(time)
        self.queue_lengths.append(packets)
        self.queue_bytes.append(bytes_)

    @property
    def delivered(self) -> int:
        """Packets served so far."""
        return len(self.sojourn_times)

    @property
    def dropped(self) -> int:
        """Packets dropped so far."""
        return len(self.drop_times)

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of all observed packets."""
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0

    def summary(self) -> "SummaryStatistics":
        """Headline statistics of the run so far."""
        return SummaryStatistics.from_recorder(self)


@dataclass(frozen=True)
class SummaryStatistics:
    """Headline numbers of one queue run."""

    delivered: int
    dropped: int
    drop_rate: float
    mean_delay_s: float
    median_delay_s: float
    p95_delay_s: float
    p99_delay_s: float
    max_delay_s: float

    @classmethod
    def from_recorder(cls, recorder: DelayRecorder) -> "SummaryStatistics":
        """Summarise a recorder's accumulated events."""
        delays = np.asarray(recorder.sojourn_times)
        if delays.size == 0:
            return cls(delivered=0, dropped=recorder.dropped,
                       drop_rate=recorder.drop_rate, mean_delay_s=0.0,
                       median_delay_s=0.0, p95_delay_s=0.0,
                       p99_delay_s=0.0, max_delay_s=0.0)
        return cls(
            delivered=recorder.delivered,
            dropped=recorder.dropped,
            drop_rate=recorder.drop_rate,
            mean_delay_s=float(delays.mean()),
            median_delay_s=float(np.median(delays)),
            p95_delay_s=float(np.percentile(delays, 95)),
            p99_delay_s=float(np.percentile(delays, 99)),
            max_delay_s=float(delays.max()),
        )


def time_binned_mean(times: list[float] | np.ndarray,
                     values: list[float] | np.ndarray,
                     bin_width_s: float,
                     end_time_s: float | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Mean of ``values`` in fixed time bins -> (bin centres, means).

    Empty bins yield NaN so plots show gaps rather than fabricated
    zeros.  This produces the delay-vs-time series of Figure 8.
    """
    if bin_width_s <= 0:
        raise ValueError(f"bin width must be positive: {bin_width_s!r}")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError("times and values must align")
    if t.size == 0:
        return np.zeros(0), np.zeros(0)
    horizon = float(t.max()) if end_time_s is None else end_time_s
    n_bins = max(1, int(np.ceil(horizon / bin_width_s)))
    edges = np.linspace(0.0, n_bins * bin_width_s, n_bins + 1)
    indices = np.clip(np.digitize(t, edges) - 1, 0, n_bins - 1)
    sums = np.bincount(indices, weights=v, minlength=n_bins)
    counts = np.bincount(indices, minlength=n_bins)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, means
