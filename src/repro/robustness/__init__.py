"""Robustness under device non-idealities (the reliability face of RQ2).

The paper's value proposition rests on analog memristor hardware that
keeps working — with *measured, bounded* degradation — when devices
drift, stick, or read noisily.  This package quantifies that claim:

* :mod:`repro.robustness.models` — parameterised, seedable, composable
  fault models (stuck-at-LRS/HRS, conductance drift, programming-pulse
  variance, DAC/ADC quantisation, transient read noise);
* :mod:`repro.robustness.injector` — applies materialised faults to
  pipelines, arrays, and AQMs through the cell-level injection hooks;
* :mod:`repro.robustness.oracle` — the differential test oracle that
  compares faulty-analog vs ideal-scalar vs batch outputs and checks
  degradation against a declared envelope;
* :mod:`repro.robustness.degradation` — graceful degradation: a shadow
  digital oracle watches the analog AQM and falls back to a digital
  baseline, with reprogram-retry backoff;
* :mod:`repro.robustness.campaign` — the :class:`FaultCampaign` runner
  that sweeps fault models across the device / crossbar / pCAM-array /
  AQM layers and records deviation, PDP bias, and energy deltas.
"""

from repro.robustness.campaign import (
    CampaignConfig,
    CampaignRecord,
    CampaignResult,
    FaultCampaign,
    default_fault_models,
    run_campaign,
)
from repro.robustness.degradation import DegradingAQM, ShadowOracle
from repro.robustness.injector import FaultInjector, InjectionReport
from repro.robustness.models import (
    CellFault,
    CompositeFaultModel,
    ConductanceDrift,
    ConverterQuantization,
    FaultModel,
    ProgrammingVariance,
    StuckAtFault,
    TransientReadNoise,
)
from repro.robustness.oracle import (
    DegradationEnvelope,
    DeviationReport,
    DifferentialOracle,
    EnvelopeViolation,
)

__all__ = [
    "CampaignConfig",
    "CampaignRecord",
    "CampaignResult",
    "CellFault",
    "CompositeFaultModel",
    "ConductanceDrift",
    "ConverterQuantization",
    "DegradationEnvelope",
    "DegradingAQM",
    "DeviationReport",
    "DifferentialOracle",
    "EnvelopeViolation",
    "FaultCampaign",
    "FaultInjector",
    "FaultModel",
    "InjectionReport",
    "ProgrammingVariance",
    "ShadowOracle",
    "StuckAtFault",
    "TransientReadNoise",
    "default_fault_models",
    "run_campaign",
]
