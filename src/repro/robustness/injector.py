"""Seeded application of fault models to pipelines, arrays, and AQMs.

The :class:`FaultInjector` walks a structure's injection surface —
pipeline stages, array words, an AQM's pipeline — flips a seeded coin
per cell against ``cell_fraction``, and attaches a freshly
materialised :class:`~repro.robustness.models.CellFault` to each
selected cell.  Everything is drawn from one generator, so a campaign
seed reproduces the exact defect population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pcam_array import PCAMArray
from repro.core.pcam_cell import PCAMCell
from repro.core.pcam_pipeline import PCAMPipeline
from repro.robustness.models import FaultModel

__all__ = ["FaultInjector", "InjectionReport"]


@dataclass
class InjectionReport:
    """Which cells an injection pass touched."""

    model: str
    #: Pipeline stage names that received a fault.
    stages: list[str] = field(default_factory=list)
    #: (word_index, field) pairs of faulted array cells.
    array_cells: list[tuple[int, str]] = field(default_factory=list)

    @property
    def n_injected(self) -> int:
        """Total number of cells faulted by the pass."""
        return len(self.stages) + len(self.array_cells)


class FaultInjector:
    """Applies one fault model to analog structures, seeded.

    Parameters
    ----------
    model:
        The fault distribution to sample per selected cell.
    cell_fraction:
        Probability that any given cell is selected.  1.0 faults every
        cell (the worst case the envelope must bound); small fractions
        model sparse manufacturing defects.
    rng:
        Seeded generator; both cell selection and fault materialisation
        draw from it, in cell-iteration order, so injection is a pure
        function of (structure, model, seed).
    """

    def __init__(self, model: FaultModel, *, cell_fraction: float = 1.0,
                 rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= cell_fraction <= 1.0:
            raise ValueError(
                f"cell fraction must be in [0, 1]: {cell_fraction!r}")
        self.model = model
        self.cell_fraction = cell_fraction
        self._rng = rng or np.random.default_rng()

    def _maybe_inject(self, cell: PCAMCell) -> bool:
        selected = (self.cell_fraction >= 1.0
                    or self._rng.random() < self.cell_fraction)
        if selected:
            cell.inject_fault(
                self.model.materialise(cell.intended_params, self._rng))
        return selected

    def inject_cell(self, cell: PCAMCell) -> None:
        """Fault one cell unconditionally."""
        cell.inject_fault(
            self.model.materialise(cell.intended_params, self._rng))

    def inject_pipeline(self, pipeline: PCAMPipeline) -> InjectionReport:
        """Fault a pipeline's stages; returns which stages were hit.

        Only functional (ideal) cells carry the injection hook;
        device-realised stages model their own physics-level noise and
        are skipped.
        """
        report = InjectionReport(model=self.model.name)
        for name in pipeline.stage_names:
            stage = pipeline.stage(name)
            if isinstance(stage, PCAMCell) and self._maybe_inject(stage):
                report.stages.append(name)
        return report

    def inject_array(self, array: PCAMArray) -> InjectionReport:
        """Fault an array's stored words, cell by cell."""
        report = InjectionReport(model=self.model.name)
        for index, word in enumerate(array.words):
            for fieldname, cell in word.cells.items():
                if self._maybe_inject(cell):
                    report.array_cells.append((index, fieldname))
        return report

    def inject_aqm(self, aqm) -> InjectionReport:
        """Fault an analog AQM through its pipeline hook."""
        return self.inject_pipeline(aqm.pipeline)

    @staticmethod
    def clear_pipeline(pipeline: PCAMPipeline) -> None:
        """Detach every fault and restore the intended programs."""
        for name in pipeline.stage_names:
            stage = pipeline.stage(name)
            if isinstance(stage, PCAMCell):
                stage.clear_fault()

    @staticmethod
    def clear_array(array: PCAMArray) -> None:
        """Detach every fault from an array's cells."""
        for word in array.words:
            for cell in word.cells.values():
                cell.clear_fault()
