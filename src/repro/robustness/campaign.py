"""The fault-injection campaign runner.

A :class:`FaultCampaign` sweeps parameterised fault models across the
stack the paper's Figure 6 pipeline rests on:

* **device/crossbar layer** — stuck-at populations sampled as
  :class:`~repro.device.faults.CrossbarFaultPlan` pins, measured as
  relative analog matvec error;
* **pCAM array layer** — the same model injected into a stored-word
  array, measured as match-probability error against an ideal clone;
* **AQM pipeline layer** — the model injected into a Figure-6
  :class:`~repro.netfunc.aqm.pcam_aqm.PCAMAQM`, measured by the
  :class:`~repro.robustness.oracle.DifferentialOracle` (probability
  error, PDP bias) and exercised under synthetic congestion through
  the graceful-degradation wrapper, with energy recorded in the
  existing :class:`~repro.energy.ledger.EnergyLedger` and fallback
  events in the :class:`~repro.dataplane.telemetry.TelemetryCollector`.

Everything derives from one :class:`numpy.random.SeedSequence`, so a
campaign is a pure function of its config: same seed, same records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.pcam_array import PCAMArray
from repro.core.pcam_cell import PCAMParams
from repro.crossbar.array import Crossbar
from repro.crossbar.losses import LineLossModel
from repro.dataplane.telemetry import TelemetryCollector
from repro.dataplane.traffic_manager import CognitiveTrafficManager
from repro.device.faults import CrossbarFaultPlan
from repro.device.variability import VariabilityModel
from repro.energy.ledger import EnergyLedger
from repro.netfunc.aqm.pcam_aqm import (
    DEFAULT_MAX_DEVIATION_S,
    DEFAULT_TARGET_DELAY_S,
    PCAMAQM,
)
from repro.packet import Packet
from repro.robustness.degradation import DegradingAQM
from repro.robustness.injector import FaultInjector
from repro.robustness.models import (
    ConductanceDrift,
    ConverterQuantization,
    FaultModel,
    ProgrammingVariance,
    StuckAtFault,
    TransientReadNoise,
)
from repro.robustness.oracle import (
    DegradationEnvelope,
    DeviationReport,
    DifferentialOracle,
)

__all__ = ["CampaignConfig", "CampaignRecord", "CampaignResult",
           "FaultCampaign", "default_fault_models"]


def default_fault_models() -> tuple[FaultModel, ...]:
    """The standard five-model sweep (one per paper non-ideality)."""
    return (
        StuckAtFault(state="lrs"),
        StuckAtFault(state="hrs"),
        ConductanceDrift(scale=0.25),
        ProgrammingVariance(sigma=0.08),
        ConverterQuantization(dac_bits=6, adc_bits=6),
        TransientReadNoise(sigma=0.03),
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign run depends on (seed included)."""

    fault_models: tuple[FaultModel, ...] = field(
        default_factory=default_fault_models)
    seed: int = 0
    #: Probes per fault model for the differential oracle.
    n_probes: int = 128
    #: Probability each pipeline cell receives the fault.
    cell_fraction: float = 1.0
    envelope: DegradationEnvelope = field(
        default_factory=DegradationEnvelope)
    # Figure-6 AQM build knobs.
    target_delay_s: float = DEFAULT_TARGET_DELAY_S
    max_deviation_s: float = DEFAULT_MAX_DEVIATION_S
    order: int = 3
    use_buffer: bool = True
    # Graceful-degradation knobs for the traffic phase.
    pdp_envelope: float = 0.10
    check_interval: int = 4
    trip_after: int = 2
    # Synthetic congestion workload.
    include_traffic: bool = True
    n_steps: int = 48
    chunk_size: int = 16
    step_s: float = 0.005
    port_rate_bps: float = 1e7
    queue_capacity: int = 512

    def __post_init__(self) -> None:
        if not self.fault_models:
            raise ValueError("campaign needs at least one fault model")
        if self.n_probes < 1:
            raise ValueError(f"need probes: {self.n_probes!r}")
        if not 0.0 <= self.cell_fraction <= 1.0:
            raise ValueError(
                f"cell fraction must be in [0, 1]: {self.cell_fraction!r}")


@dataclass(frozen=True)
class CampaignRecord:
    """Measured degradation of one fault model across the layers."""

    model: str
    n_injected: int
    #: Differential-oracle reduction at the AQM pipeline layer.
    deviation: DeviationReport
    within_envelope: bool
    #: Match-probability error at the pCAM array layer.
    array_mean_abs_error: float
    #: Relative matvec error at the crossbar layer (stuck models only).
    crossbar_relative_error: float | None
    # Traffic-phase outcome (zeros when traffic is disabled).
    fallback_engaged: bool
    retries: int
    recoveries: int
    aqm_drops: int
    #: Total energy charged during the model's traffic run [J].
    energy_j: float
    #: Energy relative to the clean baseline run [J].
    energy_delta_j: float
    events: dict[str, int]


@dataclass(frozen=True)
class CampaignResult:
    """All records of one campaign plus the clean baseline."""

    config: CampaignConfig
    baseline_energy_j: float
    records: tuple[CampaignRecord, ...]

    def record(self, model: str) -> CampaignRecord:
        """One model's record by name."""
        for item in self.records:
            if item.model == model:
                return item
        raise KeyError(f"no record for model {model!r}; have "
                       f"{[r.model for r in self.records]}")

    def summary_lines(self) -> list[str]:
        """Human-readable per-model summary."""
        lines = [f"fault campaign: seed={self.config.seed}, "
                 f"{len(self.records)} models, "
                 f"{self.config.n_probes} probes, baseline energy "
                 f"{self.baseline_energy_j:.3e} J"]
        for r in self.records:
            status = "OK " if r.within_envelope else "OUT"
            fallback = " fallback" if r.fallback_engaged else ""
            lines.append(
                f"  [{status}] {r.model:<32} "
                f"err={r.deviation.mean_abs_error:.4f} "
                f"bias={r.deviation.bias:+.4f} "
                f"max={r.deviation.max_abs_error:.4f} "
                f"dE={r.energy_delta_j:+.3e} J{fallback}")
        return lines

    def as_dict(self) -> dict:
        """Serialisable view (used by determinism tests and exports)."""
        return {
            "seed": self.config.seed,
            "baseline_energy_j": self.baseline_energy_j,
            "records": [
                {
                    "model": r.model,
                    "n_injected": r.n_injected,
                    "mean_abs_error": r.deviation.mean_abs_error,
                    "bias": r.deviation.bias,
                    "max_abs_error": r.deviation.max_abs_error,
                    "rmse": r.deviation.rmse,
                    "within_envelope": r.within_envelope,
                    "array_mean_abs_error": r.array_mean_abs_error,
                    "crossbar_relative_error": r.crossbar_relative_error,
                    "fallback_engaged": r.fallback_engaged,
                    "retries": r.retries,
                    "recoveries": r.recoveries,
                    "aqm_drops": r.aqm_drops,
                    "energy_j": r.energy_j,
                    "energy_delta_j": r.energy_delta_j,
                    "events": dict(sorted(r.events.items())),
                }
                for r in self.records
            ],
        }


class FaultCampaign:
    """Deterministic sweep of fault models over the analog stack."""

    def __init__(self, config: CampaignConfig | None = None,
                 **overrides) -> None:
        if config is None:
            config = CampaignConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _build_aqm(self, rng: np.random.Generator,
                   ledger: EnergyLedger) -> PCAMAQM:
        cfg = self.config
        # Adaptation is disabled so every measured deviation is
        # attributable to the injected fault, not controller retuning.
        return PCAMAQM(target_delay_s=cfg.target_delay_s,
                       max_deviation_s=cfg.max_deviation_s,
                       order=cfg.order, use_buffer=cfg.use_buffer,
                       adaptation=False, ledger=ledger, rng=rng)

    @staticmethod
    def _build_array() -> PCAMArray:
        """A small stored-policy array probed at the array layer."""
        array = PCAMArray(["delay", "load"])
        array.add({"delay": PCAMParams.canonical(0.1, 0.3, 0.6, 0.9),
                   "load": PCAMParams.canonical(0.0, 0.2, 0.5, 0.8)})
        array.add({"delay": PCAMParams.canonical(0.2, 0.4, 0.5, 0.7),
                   "load": PCAMParams.canonical(0.1, 0.3, 0.6, 0.9)})
        array.add({"delay": PCAMParams.canonical(-0.5, 0.0, 0.1, 0.6),
                   "load": PCAMParams.canonical(0.4, 0.6, 0.7, 1.0)})
        array.add({"delay": PCAMParams.canonical(0.0, 0.5, 0.6, 1.0),
                   "load": PCAMParams.canonical(0.2, 0.4, 0.8, 1.0)})
        return array

    # ------------------------------------------------------------------
    # Layer probes
    # ------------------------------------------------------------------
    def _array_layer_error(self, model: FaultModel,
                           rng: np.random.Generator) -> float:
        array = self._build_array()
        clean = array.clone_ideal()
        FaultInjector(model, cell_fraction=self.config.cell_fraction,
                      rng=rng).inject_array(array)
        queries = {"delay": rng.uniform(-0.6, 1.2, 64),
                   "load": rng.uniform(-0.2, 1.2, 64)}
        faulty = array.match_batch(queries)
        ideal = clean.match_batch(queries)
        return float(np.mean(np.abs(faulty - ideal)))

    def _crossbar_layer_error(self, model: FaultModel,
                              rng: np.random.Generator) -> float | None:
        if not isinstance(model, StuckAtFault):
            return None
        bar = Crossbar(8, 8, losses=LineLossModel.ideal(),
                       variability=VariabilityModel.ideal())
        weights = rng.uniform(0.2, 0.8, size=(8, 8))
        bar.program_normalised(weights)
        voltages = rng.uniform(0.5, 1.5, size=8)
        ideal = bar.ideal_matvec(voltages)
        plan = CrossbarFaultPlan.sample(
            (8, 8), fault_rate=0.1, rng=rng,
            conductance_bounds=bar.conductance_bounds,
            stuck_on_fraction=1.0 if model.state == "lrs" else 0.0)
        bar.install_fault_plan(plan)
        faulty = bar.matvec(voltages, noisy=False).currents_a
        norm = float(np.linalg.norm(ideal))
        if norm == 0.0:
            return 0.0
        return float(np.linalg.norm(faulty - ideal) / norm)

    # ------------------------------------------------------------------
    # Traffic phase
    # ------------------------------------------------------------------
    def _run_traffic(self, aqm: PCAMAQM, telemetry: TelemetryCollector,
                     rng: np.random.Generator) -> DegradingAQM:
        """Push synthetic congestion through the degradation wrapper."""
        cfg = self.config
        degrader = DegradingAQM(
            aqm, pdp_envelope=cfg.pdp_envelope,
            check_interval=cfg.check_interval, trip_after=cfg.trip_after,
            backoff_initial_s=4 * cfg.step_s,
            backoff_max_s=64 * cfg.step_s, telemetry=telemetry)
        manager = CognitiveTrafficManager(
            n_ports=1, aqm_factory=lambda: degrader,
            queue_capacity=cfg.queue_capacity,
            port_rate_bps=cfg.port_rate_bps, telemetry=telemetry)
        now = 0.0
        service_per_step = max(1, cfg.chunk_size // 2)
        for _ in range(cfg.n_steps):
            packets = [Packet(size_bytes=1500,
                              flow_id=int(rng.integers(8)),
                              priority=int(rng.integers(2)),
                              created_at=now)
                       for _ in range(cfg.chunk_size)]
            manager.enqueue_batch(0, packets, now)
            for _ in range(service_per_step):
                manager.dequeue(0, now)
            now += cfg.step_s
        return degrader

    # ------------------------------------------------------------------
    # The campaign
    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Sweep every fault model; deterministic in the config seed."""
        cfg = self.config
        root = np.random.SeedSequence(cfg.seed)
        baseline_seq, *model_seqs = root.spawn(1 + len(cfg.fault_models))

        baseline_energy = self._baseline_energy(baseline_seq)
        records = []
        for model, seq in zip(cfg.fault_models, model_seqs):
            records.append(self._run_model(model, seq, baseline_energy))
        return CampaignResult(config=cfg,
                              baseline_energy_j=baseline_energy,
                              records=tuple(records))

    def _baseline_energy(self, seq: np.random.SeedSequence) -> float:
        """Energy of the clean (fault-free) traffic run."""
        if not self.config.include_traffic:
            return 0.0
        aqm_rng, traffic_rng = (np.random.default_rng(s)
                                for s in seq.spawn(2))
        ledger = EnergyLedger()
        aqm = self._build_aqm(aqm_rng, ledger)
        self._run_traffic(aqm, TelemetryCollector(), traffic_rng)
        return ledger.total

    def _run_model(self, model: FaultModel, seq: np.random.SeedSequence,
                   baseline_energy: float) -> CampaignRecord:
        cfg = self.config
        (aqm_rng, inject_rng, probe_rng, traffic_rng, array_rng,
         crossbar_rng) = (np.random.default_rng(s) for s in seq.spawn(6))

        ledger = EnergyLedger()
        telemetry = TelemetryCollector()
        aqm = self._build_aqm(aqm_rng, ledger)

        # Oracle phase: reference from intent, then inject, then probe.
        oracle = DifferentialOracle.from_intended(aqm.pipeline,
                                                  cfg.envelope)
        probes = oracle.probe_grid(cfg.n_probes, probe_rng)
        injection = FaultInjector(
            model, cell_fraction=cfg.cell_fraction,
            rng=inject_rng).inject_aqm(aqm)
        deviation = oracle.compare(aqm.pipeline, probes)

        # Sibling layers.
        array_error = self._array_layer_error(model, array_rng)
        crossbar_error = self._crossbar_layer_error(model, crossbar_rng)

        # Traffic phase through the graceful-degradation wrapper.
        fallback_engaged = False
        retries = recoveries = aqm_drops = 0
        energy = 0.0
        if cfg.include_traffic:
            degrader = self._run_traffic(aqm, telemetry, traffic_rng)
            fallback_engaged = degrader.fallback_events > 0
            retries = degrader.retries
            recoveries = degrader.recoveries
            aqm_drops = telemetry.event_count("port0.aqm_drop")
            energy = ledger.total

        return CampaignRecord(
            model=model.name,
            n_injected=injection.n_injected,
            deviation=deviation,
            within_envelope=deviation.within(cfg.envelope),
            array_mean_abs_error=array_error,
            crossbar_relative_error=crossbar_error,
            fallback_engaged=fallback_engaged,
            retries=retries,
            recoveries=recoveries,
            aqm_drops=aqm_drops,
            energy_j=energy,
            energy_delta_j=energy - baseline_energy,
            events=dict(telemetry.snapshot()["events"]))


def run_campaign(models: Iterable[FaultModel] | None = None,
                 seed: int = 0, **config_kwargs) -> CampaignResult:
    """One-call convenience entry point used by the example script."""
    if models is not None:
        config_kwargs["fault_models"] = tuple(models)
    return FaultCampaign(
        CampaignConfig(seed=seed, **config_kwargs)).run()
