"""Graceful degradation: shadow oracle, digital fallback, retry backoff.

The analog pCAM AQM is fast and cheap but can silently mis-rank drop
probabilities when its devices fault.  :class:`DegradingAQM` wraps it
with the safety net Figure 5's cognitive controller implies:

* a :class:`ShadowOracle` — a cheap digital twin built from each
  stage's *intended* parameters — spot-checks the analog PDP every
  ``check_interval`` evaluations;
* after ``trip_after`` consecutive out-of-envelope checks the port
  falls back to a digital AQM baseline (CoDel by default) and the
  event is recorded in telemetry;
* the retry path reprograms the analog pipeline (a refresh scrub that
  clears transient faults) under exponential backoff, driven either
  internally at enqueue time or externally by
  :meth:`repro.control.cognitive.CognitiveNetworkController.tick`.

The wrapper is itself an :class:`~repro.netfunc.aqm.base.AQMAlgorithm`,
so it drops into :class:`~repro.dataplane.traffic_manager.CognitiveTrafficManager`
unchanged — degradation is a per-table (per-port) decision.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.pcam_cell import PCAMCell, PCAMParams
from repro.core.pcam_pipeline import BATCH_COMPOSITIONS, PCAMPipeline
from repro.dataplane.telemetry import TelemetryCollector
from repro.netfunc.aqm.base import AQMAlgorithm, QueueView
from repro.netfunc.aqm.codel import CoDelAqm
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.packet import Packet

__all__ = ["DegradingAQM", "ShadowOracle"]


class ShadowOracle:
    """A digital twin of an analog pipeline, built from intent.

    Evaluates the composition over fresh ideal cells programmed with
    each stage's :attr:`~repro.core.pcam_cell.PCAMCell.intended_params`
    (cached until the intent changes), so injected faults never leak
    into the shadow.  This is the "cheap shadow digital oracle" the
    traffic manager uses to detect out-of-envelope analog outputs.
    """

    def __init__(self, pipeline: PCAMPipeline) -> None:
        self.pipeline = pipeline
        self._cache: dict[str, tuple[PCAMParams, PCAMCell]] = {}
        self.checks = 0

    def _shadow_cell(self, name: str) -> PCAMCell:
        stage = self.pipeline.stage(name)
        intended = getattr(stage, "intended_params", stage.params)
        cached = self._cache.get(name)
        if cached is None or cached[0] != intended:
            cached = (intended, PCAMCell(intended))
            self._cache[name] = cached
        return cached[1]

    def evaluate(self, features: Mapping[str, np.ndarray]) -> np.ndarray:
        """Digital composite probabilities for a voltage-domain batch."""
        rows = [self._shadow_cell(name).response_array(
            np.atleast_1d(np.asarray(features[name], dtype=float)))
            for name in self.pipeline.stage_names]
        self.checks += 1
        return BATCH_COMPOSITIONS[self.pipeline.composition](np.stack(rows))

    def deviation(self, features: Mapping[str, np.ndarray],
                  outputs: np.ndarray) -> float:
        """Largest |analog - shadow| over one observed batch."""
        shadow = self.evaluate(features)
        return float(np.max(np.abs(np.atleast_1d(outputs) - shadow),
                            initial=0.0))


class DegradingAQM(AQMAlgorithm):
    """Analog pCAM AQM with a monitored digital fallback per table.

    Parameters
    ----------
    analog:
        The pCAM AQM to protect.  Its ``output_monitor`` hook is
        claimed by this wrapper.
    fallback:
        The digital path used while degraded (CoDel by default — the
        same role the digital TCAM path plays for match tables).
    pdp_envelope:
        Largest |analog - shadow| PDP deviation tolerated per check.
    check_interval:
        Shadow-check every Nth pipeline evaluation (the oracle costs
        one digital pipeline pass, so checking every call would double
        the evaluation cost).
    trip_after:
        Consecutive out-of-envelope checks before falling back.
    backoff_initial_s / backoff_max_s:
        Reprogram-retry backoff window; doubles per failed retry, and
        resets once the analog path proves healthy again.
    recover_after:
        Consecutive clean checks after a retry before the table is
        declared recovered (and the backoff resets).
    table:
        Telemetry namespace for events and gauges.
    telemetry:
        Collector receiving fallback/retry/recovery events; optional.
    """

    name = "degrading-pcam-aqm"

    def __init__(self, analog: PCAMAQM,
                 fallback: AQMAlgorithm | None = None, *,
                 pdp_envelope: float = 0.10,
                 check_interval: int = 8,
                 trip_after: int = 3,
                 backoff_initial_s: float = 0.5,
                 backoff_max_s: float = 8.0,
                 recover_after: int = 2,
                 table: str = "pcam_aqm",
                 telemetry: TelemetryCollector | None = None) -> None:
        if pdp_envelope <= 0:
            raise ValueError(
                f"PDP envelope must be positive: {pdp_envelope!r}")
        if check_interval < 1:
            raise ValueError(
                f"check interval must be >= 1: {check_interval!r}")
        if trip_after < 1:
            raise ValueError(f"trip_after must be >= 1: {trip_after!r}")
        if backoff_initial_s <= 0 or backoff_max_s < backoff_initial_s:
            raise ValueError(
                f"need 0 < backoff_initial_s <= backoff_max_s: "
                f"{backoff_initial_s!r}, {backoff_max_s!r}")
        self.analog = analog
        self.fallback = fallback if fallback is not None else CoDelAqm()
        self.pdp_envelope = pdp_envelope
        self.check_interval = check_interval
        self.trip_after = trip_after
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self.recover_after = recover_after
        self.table = table
        self.telemetry = telemetry
        self.shadow = ShadowOracle(analog.pipeline)
        analog.output_monitor = self._monitor
        self._reset_monitor_state()

    def _reset_monitor_state(self) -> None:
        self._mode = "analog"
        self._now = 0.0
        self._calls_since_check = 0
        self._violation_streak = 0
        self._clean_streak = 0
        self._probation = False
        self._backoff_s = self.backoff_initial_s
        self._next_retry_s: float | None = None
        self.last_deviation = 0.0
        self.fallback_events = 0
        self.retries = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"analog"`` or ``"fallback"``."""
        return self._mode

    @property
    def degraded(self) -> bool:
        """True while serving from the digital fallback path."""
        return self._mode == "fallback"

    @property
    def pipeline(self) -> PCAMPipeline:
        """The protected analog pipeline (tracer/profiler attach here).

        Forwarded from the wrapped AQM so callers wiring observability
        need one attribute whether or not a table is wrapped.
        """
        return self.analog.pipeline

    @property
    def next_retry_s(self) -> float | None:
        """When the next reprogram retry is due (None when healthy)."""
        return self._next_retry_s

    def _record(self, event: str) -> None:
        if self.telemetry is not None:
            self.telemetry.record_event(f"{self.table}.{event}")

    def _gauges(self) -> None:
        if self.telemetry is not None:
            self.telemetry.set_gauge(f"{self.table}.degraded",
                                     1.0 if self.degraded else 0.0)
            self.telemetry.set_gauge(f"{self.table}.shadow_deviation",
                                     self.last_deviation)

    # ------------------------------------------------------------------
    # Shadow monitoring (runs inside the analog evaluation)
    # ------------------------------------------------------------------
    def _monitor(self, features: dict[str, np.ndarray],
                 outputs: np.ndarray) -> None:
        self._calls_since_check += 1
        if self._calls_since_check < self.check_interval:
            return
        self._calls_since_check = 0
        self.last_deviation = self.shadow.deviation(features, outputs)
        if self.last_deviation > self.pdp_envelope:
            self._violation_streak += 1
            self._clean_streak = 0
            if self._violation_streak >= self.trip_after:
                self._trip()
        else:
            self._violation_streak = 0
            self._clean_streak += 1
            if self._probation and self._clean_streak >= self.recover_after:
                self._probation = False
                self._backoff_s = self.backoff_initial_s
                self._next_retry_s = None
                self.recoveries += 1
                self._record("recovered")
        self._gauges()

    def _trip(self) -> None:
        self._mode = "fallback"
        self._violation_streak = 0
        self._clean_streak = 0
        self.fallback_events += 1
        self._next_retry_s = self._now + self._backoff_s
        self._record("fallback_engaged")
        self._gauges()

    # ------------------------------------------------------------------
    # Retry / reprogram backoff
    # ------------------------------------------------------------------
    def maybe_retry(self, now: float) -> bool:
        """Attempt an analog recovery if the backoff window elapsed.

        Reprograms every stage with its intended parameters (scrubbing
        transient faults), moves the table back to the analog path on
        probation, and doubles the backoff so a persistently faulty
        table settles into the digital fallback.  Returns True when a
        retry was performed — the controller counts these as
        ``update_pCAM`` reprogram events.
        """
        if not self.degraded:
            return False
        if self._next_retry_s is not None and now < self._next_retry_s:
            return False
        self.analog.reprogram_intended()
        self._mode = "analog"
        self._probation = True
        self._clean_streak = 0
        self._violation_streak = 0
        self._calls_since_check = self.check_interval - 1  # check soon
        self._backoff_s = min(self._backoff_s * 2.0, self.backoff_max_s)
        self._next_retry_s = None
        self.retries += 1
        self._record("retry")
        self._gauges()
        return True

    # ------------------------------------------------------------------
    # AQM hooks
    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet, queue: QueueView,
                   now: float) -> bool:
        return bool(self.on_enqueue_batch([packet], queue, now)[0])

    def on_enqueue_batch(self, packets: Sequence[Packet],
                         queue: QueueView, now: float) -> np.ndarray:
        self._now = now
        if self.degraded:
            self.maybe_retry(now)
        if self.degraded:
            return self.fallback.on_enqueue_batch(packets, queue, now)
        return self.analog.on_enqueue_batch(packets, queue, now)

    def on_dequeue(self, packet: Packet, queue: QueueView,
                   now: float, sojourn_s: float) -> bool:
        self._now = now
        if self.degraded:
            return self.fallback.on_dequeue(packet, queue, now, sojourn_s)
        return self.analog.on_dequeue(packet, queue, now, sojourn_s)

    def reset(self) -> None:
        """Reset both paths and return to analog service."""
        self.analog.reset()
        self.fallback.reset()
        self._reset_monitor_state()
