"""Parameterised fault models and their per-cell materialisations.

A :class:`FaultModel` is a *distribution* over defects: calling
:meth:`FaultModel.materialise` with a cell's intended parameters and a
seeded :class:`numpy.random.Generator` samples one concrete
:class:`CellFault` instance.  The split mirrors how real arrays fail —
the defect *class* is a property of the technology, the defect
*instance* is a property of one cell — and keeps every sample on the
caller's seeded stream (the RNG discipline PR 1 established).

Materialised faults plug into :meth:`repro.core.pcam_cell.PCAMCell.inject_fault`
and act through three hooks:

* ``faulted_params`` — a static perturbation of the programmed
  parameters (drift, programming variance);
* ``transform_input`` / ``transform_response`` — per-read signal-path
  perturbations (DAC/ADC quantisation, read noise, stuck match lines);
* ``on_program`` — what reprogramming does to the fault: scrubs it
  (drift), resamples it (programming variance), or leaves it in place
  (stuck cells, converter resolution).

Models compose: :class:`CompositeFaultModel` chains several models on
one cell, applying parameter perturbations and signal transforms in
declaration order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.pcam_cell import PCAMParams

__all__ = [
    "CellFault",
    "CompositeCellFault",
    "CompositeFaultModel",
    "ConductanceDrift",
    "ConverterQuantization",
    "FaultModel",
    "ProgrammingVariance",
    "StuckAtFault",
    "TransientReadNoise",
]


class CellFault:
    """One materialised defect attached to a single pCAM cell.

    The base class is the identity fault; subclasses override the
    hooks they need.  ``active`` turns False when a reprogramming pass
    clears the defect, at which point the cell drops the fault.
    """

    def __init__(self) -> None:
        self.active = True

    def faulted_params(self, intended: PCAMParams) -> PCAMParams:
        """The parameters the hardware actually realises."""
        return intended

    def on_program(self, intended: PCAMParams) -> PCAMParams:
        """Effect of a reprogramming pass; default: the fault survives."""
        return self.faulted_params(intended)

    def transform_input(self, values: np.ndarray) -> np.ndarray:
        """Perturb the applied search voltages (DAC side)."""
        return values

    def transform_response(self, values: np.ndarray,
                           response: np.ndarray) -> np.ndarray:
        """Perturb the sensed match probabilities (ADC side)."""
        return response


class _StuckCell(CellFault):
    """Match line pinned at one rail regardless of the input."""

    def __init__(self, level: float) -> None:
        super().__init__()
        self.level = float(level)

    def transform_response(self, values: np.ndarray,
                           response: np.ndarray) -> np.ndarray:
        return np.full_like(response, self.level)


class _ThresholdDrift(CellFault):
    """All four thresholds translated by an accumulated drift delta.

    A reprogramming pass (refresh scrub) restores the intended state
    and clears the fault — drift is transient under program-and-verify.
    """

    def __init__(self, delta: float) -> None:
        super().__init__()
        self.delta = float(delta)

    def faulted_params(self, intended: PCAMParams) -> PCAMParams:
        return intended.shifted(self.delta)

    def on_program(self, intended: PCAMParams) -> PCAMParams:
        self.active = False
        return intended


class _ProgrammingJitter(CellFault):
    """Each threshold lands off-target; every program resamples.

    The jittered thresholds are sorted so the M1 <= M2 <= M3 <= M4
    invariant survives arbitrarily large variance; programmed slopes
    are preserved.
    """

    def __init__(self, sigma: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.sigma = float(sigma)
        self._rng = rng
        self._deltas = self._sample()

    def _sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self.sigma, size=4)

    def faulted_params(self, intended: PCAMParams) -> PCAMParams:
        thresholds = np.sort(np.array(
            [intended.m1, intended.m2, intended.m3, intended.m4])
            + self._deltas)
        return PCAMParams(m1=float(thresholds[0]), m2=float(thresholds[1]),
                          m3=float(thresholds[2]), m4=float(thresholds[3]),
                          sa=intended.sa, sb=intended.sb,
                          pmax=intended.pmax, pmin=intended.pmin)

    def on_program(self, intended: PCAMParams) -> PCAMParams:
        self._deltas = self._sample()
        return self.faulted_params(intended)


class _Quantizer(CellFault):
    """Finite DAC/ADC resolution at the analog boundary.

    Inputs are clamped into the converter range and snapped to the
    nearest of ``2**dac_bits`` levels; responses are snapped to the
    nearest of ``2**adc_bits`` levels over [0, 1].  Deterministic, and
    a property of the conversion circuit — reprogramming the cell does
    not remove it.
    """

    def __init__(self, dac_bits: int, adc_bits: int,
                 v_lo: float, v_hi: float) -> None:
        super().__init__()
        self.dac_bits = int(dac_bits)
        self.adc_bits = int(adc_bits)
        self.v_lo = float(v_lo)
        self.v_hi = float(v_hi)

    def _snap(self, x: np.ndarray, lo: float, hi: float,
              bits: int) -> np.ndarray:
        levels = (1 << bits) - 1
        t = np.clip((x - lo) / (hi - lo), 0.0, 1.0)
        return lo + np.round(t * levels) / levels * (hi - lo)

    def transform_input(self, values: np.ndarray) -> np.ndarray:
        return self._snap(values, self.v_lo, self.v_hi, self.dac_bits)

    def transform_response(self, values: np.ndarray,
                           response: np.ndarray) -> np.ndarray:
        return self._snap(response, 0.0, 1.0, self.adc_bits)


class _ReadNoise(CellFault):
    """Zero-mean Gaussian noise on every sensed response.

    Draws exactly one variate per evaluated element, in element order,
    so a batch read reproduces the stream a scalar loop would consume.
    """

    def __init__(self, sigma: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.sigma = float(sigma)
        self._rng = rng

    def transform_response(self, values: np.ndarray,
                           response: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return response
        return response + self._rng.normal(0.0, self.sigma,
                                           size=response.shape)


class CompositeCellFault(CellFault):
    """Several materialised defects on one cell, applied in order."""

    def __init__(self, faults: list[CellFault]) -> None:
        super().__init__()
        self.faults = list(faults)

    def faulted_params(self, intended: PCAMParams) -> PCAMParams:
        params = intended
        for fault in self.faults:
            params = fault.faulted_params(params)
        return params

    def on_program(self, intended: PCAMParams) -> PCAMParams:
        params = intended
        survivors = []
        for fault in self.faults:
            params = fault.on_program(params)
            if fault.active:
                survivors.append(fault)
        self.faults = survivors
        self.active = bool(survivors)
        return params

    def transform_input(self, values: np.ndarray) -> np.ndarray:
        for fault in self.faults:
            values = fault.transform_input(values)
        return values

    def transform_response(self, values: np.ndarray,
                           response: np.ndarray) -> np.ndarray:
        for fault in self.faults:
            response = fault.transform_response(values, response)
        return response


# ----------------------------------------------------------------------
# Fault model distributions
# ----------------------------------------------------------------------
class FaultModel(abc.ABC):
    """A parameterised distribution over cell defects."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier used in campaign records and telemetry."""

    @abc.abstractmethod
    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        """Sample one concrete defect for a cell programmed with
        ``intended``, drawing only from ``rng``."""


@dataclass(frozen=True)
class StuckAtFault(FaultModel):
    """Cell permanently at one rail.

    ``state="lrs"`` models a forming failure into the low-resistance
    state: the match line always conducts, so the cell reads as a full
    match (``pmax``).  ``state="hrs"`` pins it at ``pmin``.
    """

    state: str = "lrs"

    def __post_init__(self) -> None:
        if self.state not in ("lrs", "hrs"):
            raise ValueError(
                f"state must be 'lrs' or 'hrs': {self.state!r}")

    @property
    def name(self) -> str:
        return f"stuck_at_{self.state}"

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        level = intended.pmax if self.state == "lrs" else intended.pmin
        return _StuckCell(level)


@dataclass(frozen=True)
class ConductanceDrift(FaultModel):
    """Retention drift accumulated since the last programming pass.

    The drift delta is drawn once per cell from N(bias, scale) in
    threshold-voltage units; a reprogram (refresh scrub) clears it.
    """

    scale: float = 0.1
    bias: float = 0.0

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError(f"scale must be >= 0: {self.scale!r}")

    @property
    def name(self) -> str:
        return "conductance_drift"

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        return _ThresholdDrift(rng.normal(self.bias, self.scale)
                               if self.scale > 0 else self.bias)


@dataclass(frozen=True)
class ProgrammingVariance(FaultModel):
    """Programming-pulse variance: thresholds land off-target.

    Every reprogram resamples the landing error, so the fault persists
    across refresh scrubs but its realisation changes.
    """

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0: {self.sigma!r}")

    @property
    def name(self) -> str:
        return "programming_variance"

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        # Give the fault its own child stream so later draws do not
        # perturb the caller's injection stream.
        return _ProgrammingJitter(self.sigma,
                                  np.random.default_rng(rng.integers(2**63)))


@dataclass(frozen=True)
class ConverterQuantization(FaultModel):
    """DAC/ADC quantisation error at the analog-digital boundary."""

    dac_bits: int = 6
    adc_bits: int = 6
    v_lo: float = -2.0
    v_hi: float = 4.0

    def __post_init__(self) -> None:
        if self.dac_bits < 1 or self.adc_bits < 1:
            raise ValueError("converter resolution must be >= 1 bit")
        if self.v_lo >= self.v_hi:
            raise ValueError(
                f"empty converter range: [{self.v_lo}, {self.v_hi}]")

    @property
    def name(self) -> str:
        return f"quantization_{self.dac_bits}b_dac_{self.adc_bits}b_adc"

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        return _Quantizer(self.dac_bits, self.adc_bits,
                          self.v_lo, self.v_hi)


@dataclass(frozen=True)
class TransientReadNoise(FaultModel):
    """Cycle-to-cycle sensing noise, fresh on every read."""

    sigma: float = 0.02

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0: {self.sigma!r}")

    @property
    def name(self) -> str:
        return "transient_read_noise"

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        return _ReadNoise(self.sigma,
                          np.random.default_rng(rng.integers(2**63)))


class CompositeFaultModel(FaultModel):
    """Several fault models striking the same cell together."""

    def __init__(self, models: "list[FaultModel] | tuple[FaultModel, ...]",
                 label: str | None = None) -> None:
        if not models:
            raise ValueError("composite needs at least one model")
        self.models = tuple(models)
        self._label = label

    @property
    def name(self) -> str:
        if self._label is not None:
            return self._label
        return "+".join(model.name for model in self.models)

    def materialise(self, intended: PCAMParams,
                    rng: np.random.Generator) -> CellFault:
        return CompositeCellFault(
            [model.materialise(intended, rng) for model in self.models])
