"""The differential test oracle: faulty-analog vs ideal-scalar vs batch.

Three evaluation legs are compared over one probe grid:

1. **ideal-scalar** — the clean reference pipeline evaluated through
   the scalar entry point, probe by probe (the slowest, most-trusted
   leg);
2. **ideal-batch** — the same clean pipeline through
   ``evaluate_batch``; any disagreement with leg 1 beyond float
   round-off is a vectorisation bug, reported separately from device
   degradation;
3. **faulty-analog** — the injected pipeline through its batch path.

The oracle reduces leg 3 − leg 1 into a :class:`DeviationReport`
(match-probability error, PDP bias, worst-case probe) and checks it
against a declared :class:`DegradationEnvelope`.  Campaign code and
the robustness test suites both build on this one comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.pcam_cell import PCAMCell
from repro.core.pcam_pipeline import PCAMPipeline

__all__ = ["DegradationEnvelope", "DeviationReport", "DifferentialOracle",
           "EnvelopeViolation"]

#: Tolerance for the scalar-vs-batch equivalence leg (vectorisation
#: must be a pure re-expression of the scalar reference).
EQUIVALENCE_RTOL = 1e-9


class EnvelopeViolation(AssertionError):
    """Degradation exceeded the declared envelope."""

    def __init__(self, report: "DeviationReport",
                 violations: list[str]) -> None:
        self.report = report
        self.violations = violations
        super().__init__(
            "degradation outside the declared envelope: "
            + "; ".join(violations))


@dataclass(frozen=True)
class DegradationEnvelope:
    """Declared bounds on acceptable degradation under faults.

    All quantities are in match-probability units (the pipeline output
    is a probability, so 1.0 is the largest possible deviation).
    """

    #: Bound on the mean absolute match-probability error.
    max_mean_abs_error: float = 0.05
    #: Bound on the absolute PDP bias (signed mean deviation).
    max_abs_bias: float = 0.02
    #: Bound on the single worst probe's deviation.
    max_abs_error: float = 1.0

    def __post_init__(self) -> None:
        for name in ("max_mean_abs_error", "max_abs_bias",
                     "max_abs_error"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class DeviationReport:
    """Reduced comparison of the faulty leg against the ideal legs."""

    n_probes: int
    #: Mean |faulty - ideal| — the match-probability error.
    mean_abs_error: float
    #: Mean (faulty - ideal) — the PDP bias.
    bias: float
    #: Largest single-probe |faulty - ideal|.
    max_abs_error: float
    #: Root-mean-square deviation.
    rmse: float
    #: Largest |ideal-batch - ideal-scalar| (vectorisation check leg).
    scalar_batch_max_diff: float

    def violations(self, envelope: DegradationEnvelope) -> list[str]:
        """Human-readable list of envelope bounds this report breaks."""
        found = []
        if self.mean_abs_error > envelope.max_mean_abs_error:
            found.append(
                f"mean abs error {self.mean_abs_error:.4f} > "
                f"{envelope.max_mean_abs_error:.4f}")
        if abs(self.bias) > envelope.max_abs_bias:
            found.append(f"|bias| {abs(self.bias):.4f} > "
                         f"{envelope.max_abs_bias:.4f}")
        if self.max_abs_error > envelope.max_abs_error:
            found.append(f"max abs error {self.max_abs_error:.4f} > "
                         f"{envelope.max_abs_error:.4f}")
        return found

    def within(self, envelope: DegradationEnvelope) -> bool:
        """True when every envelope bound holds."""
        return not self.violations(envelope)


class DifferentialOracle:
    """Compares a (possibly faulted) pipeline against its clean self.

    Parameters
    ----------
    reference:
        The clean pipeline.  Use :meth:`from_intended` to derive it
        from a faulted pipeline's remembered intent.
    envelope:
        Default envelope for :meth:`check`.
    """

    def __init__(self, reference: PCAMPipeline,
                 envelope: DegradationEnvelope | None = None) -> None:
        self.reference = reference
        self.envelope = envelope or DegradationEnvelope()

    @classmethod
    def from_intended(cls, pipeline: PCAMPipeline,
                      envelope: DegradationEnvelope | None = None
                      ) -> "DifferentialOracle":
        """Build the clean reference from each stage's intended params.

        Works on faulted pipelines because the injection hook keeps
        :attr:`~repro.core.pcam_cell.PCAMCell.intended_params` clean;
        device-realised stages fall back to their programmed params.
        """
        params = {}
        for name in pipeline.stage_names:
            stage = pipeline.stage(name)
            params[name] = (stage.intended_params
                            if isinstance(stage, PCAMCell)
                            else stage.params)
        return cls(PCAMPipeline.from_params(
            params, composition=pipeline.composition), envelope)

    def compare(self, faulty: PCAMPipeline,
                probes: Mapping[str, np.ndarray]) -> DeviationReport:
        """Run all three legs over the probe grid and reduce."""
        ideal_batch = self.reference.evaluate_batch(probes)
        n = int(ideal_batch.shape[0])
        columns = {name: np.broadcast_to(
            np.atleast_1d(np.asarray(probes[name], dtype=float)), (n,))
            for name in self.reference.stage_names}
        ideal_scalar = np.array([
            self.reference.evaluate(
                {name: float(columns[name][i]) for name in columns})
            for i in range(n)])
        scalar_batch_max_diff = float(
            np.max(np.abs(ideal_batch - ideal_scalar), initial=0.0))
        if not np.allclose(ideal_batch, ideal_scalar,
                           rtol=EQUIVALENCE_RTOL, atol=0.0):
            raise AssertionError(
                f"batch evaluation diverged from the scalar reference "
                f"by {scalar_batch_max_diff:.3e} — vectorisation bug, "
                f"not device degradation")
        faulty_batch = faulty.evaluate_batch(probes)
        deviation = faulty_batch - ideal_scalar
        return DeviationReport(
            n_probes=n,
            mean_abs_error=float(np.mean(np.abs(deviation))),
            bias=float(np.mean(deviation)),
            max_abs_error=float(np.max(np.abs(deviation), initial=0.0)),
            rmse=float(np.sqrt(np.mean(deviation ** 2))),
            scalar_batch_max_diff=scalar_batch_max_diff)

    def check(self, faulty: PCAMPipeline,
              probes: Mapping[str, np.ndarray],
              envelope: DegradationEnvelope | None = None
              ) -> DeviationReport:
        """:meth:`compare`, then assert the envelope holds.

        Raises :class:`EnvelopeViolation` carrying the report when the
        measured degradation exceeds the declared bounds.
        """
        envelope = envelope or self.envelope
        report = self.compare(faulty, probes)
        violations = report.violations(envelope)
        if violations:
            raise EnvelopeViolation(report, violations)
        return report

    def probe_grid(self, n_probes: int, rng: np.random.Generator,
                   margin: float = 0.25) -> dict[str, np.ndarray]:
        """Seeded probe features covering each stage's active region.

        Samples uniformly over ``[M1, M4]`` widened by ``margin`` of
        its span on each side, so both deterministic plateaus, both
        ramps and the surrounding mismatch regions are exercised.
        """
        if n_probes < 1:
            raise ValueError(f"need at least one probe: {n_probes!r}")
        probes = {}
        for name in self.reference.stage_names:
            p = self.reference.stage(name).params
            span = max(p.m4 - p.m1, 1e-6)
            probes[name] = rng.uniform(p.m1 - margin * span,
                                       p.m4 + margin * span, n_probes)
        return probes
