"""Analysis helpers: figure-series builders and statistics."""

from repro.analysis.figures import (
    FIGURE7_PANELS,
    FIGURE7_RANGES,
    Figure8Series,
    figure1_series,
    figure2_series,
    figure4_series,
    figure7_series,
    figure8_series,
)
from repro.analysis.export import (
    export_all,
    export_series_csv,
    export_table1_csv,
)
from repro.analysis.report import ReproductionReport, run_report
from repro.analysis.stats import banded_fraction, describe, monotone_fraction

__all__ = [
    "FIGURE7_PANELS",
    "FIGURE7_RANGES",
    "Figure8Series",
    "ReproductionReport",
    "banded_fraction",
    "run_report",
    "describe",
    "export_all",
    "export_series_csv",
    "export_table1_csv",
    "figure1_series",
    "figure2_series",
    "figure4_series",
    "figure7_series",
    "figure8_series",
    "monotone_fraction",
]
