"""Small statistical helpers shared by the benchmark harnesses."""

from __future__ import annotations

import numpy as np

__all__ = ["banded_fraction", "describe", "monotone_fraction"]


def describe(values: np.ndarray | list[float]) -> dict[str, float]:
    """Summary statistics of a sample as a plain dict."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot describe an empty sample")
    return {
        "count": float(array.size),
        "mean": float(array.mean()),
        "std": float(array.std()),
        "min": float(array.min()),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
        "p99": float(np.percentile(array, 99)),
        "max": float(array.max()),
    }


def banded_fraction(values: np.ndarray | list[float],
                    lower: float, upper: float) -> float:
    """Fraction of samples inside [lower, upper].

    Used to check the Figure 8 objective: how much of the time the
    delay stayed within the programmed 20 +- 10 ms band.
    """
    if lower > upper:
        raise ValueError(f"empty band: [{lower}, {upper}]")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    inside = np.count_nonzero((array >= lower) & (array <= upper))
    return inside / array.size


def monotone_fraction(values: np.ndarray | list[float]) -> float:
    """Fraction of consecutive steps that are non-decreasing.

    1.0 means the series never decreases — the signature of the
    unmanaged (no-AQM) delay curve during overload.
    """
    array = np.asarray(values, dtype=float)
    if array.size < 2:
        return 1.0
    steps = np.diff(array)
    return float(np.count_nonzero(steps >= 0) / steps.size)
