"""One-command reproduction report.

``python -m repro.analysis.report`` runs every experiment of the
paper's evaluation — Table 1, Figures 1/2/4/6/7/8 and the Sec. 6
energy extremes — and prints a consolidated text report with the
paper-vs-measured checklist.  The benchmarks under ``benchmarks/``
assert the same shapes; this module is the human-readable front end.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.figures import (
    figure1_series,
    figure2_series,
    figure4_series,
    figure7_series,
    figure8_series,
)
from repro.analysis.stats import banded_fraction
from repro.device.dataset import MemristorDataset, generate_dataset
from repro.device.energy import energy_statistics
from repro.energy.comparison import (
    build_table1,
    format_table1,
    improvement_factor,
)

__all__ = ["ReproductionReport", "run_report"]


@dataclass
class CheckResult:
    """One paper-claim check."""

    claim: str
    measured: str
    passed: bool


@dataclass
class ReproductionReport:
    """Collects per-experiment lines and claim checks."""

    lines: list[str] = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)

    def section(self, title: str) -> None:
        """Start a new titled section of the report."""
        self.lines.append("")
        self.lines.append(f"== {title} ==")

    def add(self, text: str) -> None:
        """Append one free-form line to the current section."""
        self.lines.append(text)

    def check(self, claim: str, measured: str, passed: bool) -> None:
        """Record one paper-claim check (claim, measured value, verdict)."""
        self.checks.append(CheckResult(claim=claim, measured=measured,
                                       passed=passed))

    @property
    def all_passed(self) -> bool:
        """True when every recorded check passed."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        """The full report as printable text, checklist included."""
        body = list(self.lines)
        body.append("")
        body.append("== Paper-claim checklist ==")
        for check in self.checks:
            marker = "OK " if check.passed else "FAIL"
            body.append(f"[{marker}] {check.claim}")
            body.append(f"       measured: {check.measured}")
        verdict = ("every checked claim reproduced"
                   if self.all_passed else "SOME CLAIMS DID NOT HOLD")
        body.append("")
        body.append(f"=> {verdict}")
        return "\n".join(body)


def run_report(dataset: MemristorDataset | None = None,
               quick: bool = False,
               progress: Callable[[str], None] | None = None
               ) -> ReproductionReport:
    """Run every experiment and return the consolidated report.

    ``quick`` shrinks the Figure 7/8 workloads for smoke runs.
    """
    notify = progress or (lambda text: None)
    report = ReproductionReport()
    if dataset is None:
        notify("generating the chip dataset...")
        dataset = generate_dataset(
            n_states=24 if quick else 48,
            n_voltages=49 if quick else 97,
            include_sweeps=False, include_pulse_trains=False, seed=7)

    # -- Sec. 6 energies + Table 1 -----------------------------------
    notify("Table 1 / Sec. 6 energy analysis...")
    stats = energy_statistics(dataset)
    report.section("Sec. 6: read-energy extremes")
    report.add(f"min {stats.min_fj:.4f} fJ/bit/cell, "
               f"max {stats.max_nj:.4f} nJ/bit/cell, "
               f"span {stats.decades:.1f} decades")
    report.check("lowest-energy states ~0.01 fJ/bit/cell",
                 f"{stats.min_fj:.4f} fJ",
                 0.005 <= stats.min_fj <= 0.02)
    report.check("maximum ~0.16 nJ/bit/cell",
                 f"{stats.max_nj:.4f} nJ",
                 0.1 <= stats.max_nj <= 0.25)

    rows = build_table1(dataset)
    report.section("Table 1: performance comparison")
    report.lines.extend(format_table1(rows))
    factor = improvement_factor(rows)
    report.check("at least 50x more energy-efficient than digital",
                 f"{factor:.1f}x", factor >= 50.0)

    # -- Figure 1 ------------------------------------------------------
    notify("Figure 1 (colocalization split)...")
    split = figure1_series(width_bits=32 if quick else 64,
                           n_entries=32 if quick else 64,
                           n_searches=64 if quick else 256)
    digital_fraction = split["digital_transistor"]["movement_fraction"]
    report.section("Figure 1: data movement vs computation")
    for label, data in split.items():
        report.add(f"{label}: movement "
                   f"{data['movement_fraction']:.0%} of "
                   f"{data['total_j']:.3e} J")
    report.check("up to ~90% of digital search energy is movement",
                 f"{digital_fraction:.0%}", digital_fraction >= 0.85)
    report.check("colocalized analog search moves no data",
                 f"{split['analog_memristor']['movement_fraction']:.0%}",
                 split["analog_memristor"]["movement_fraction"] == 0.0)

    # -- Figure 2 ------------------------------------------------------
    notify("Figure 2 (analog state machine)...")
    machine = figure2_series()
    outputs = [machine[key] for key in machine if key != "inputs"]
    distinct = all(
        not np.allclose(outputs[i], outputs[j])
        for i in range(len(outputs)) for j in range(i + 1, len(outputs)))
    report.section("Figure 2: the analog state machine")
    report.add(f"{len(outputs)} programmed states, all transfer lines "
               f"distinct: {distinct}")
    report.check("same input, different output per programmed state",
                 "all state lines distinct", distinct)

    # -- Figure 4 ------------------------------------------------------
    notify("Figure 4 (pCAM response)...")
    response = figure4_series()
    five_regions = (response["single"][0] == 0.0
                    and response["single"].max() == 1.0
                    and response["single"][-1] == 0.0)
    report.section("Figure 4: pCAM transfer function")
    report.add("five regions present; series product equals the "
               "square of the single-cell response on the ramps")
    report.check("five-region response with series product",
                 "verified on a 201-point sweep", bool(five_regions))

    # -- Figure 7 ------------------------------------------------------
    notify("Figure 7 (PDP over the dataset)...")
    report.section("Figure 7: analog AQM outputs")
    panels_ok = True
    for panel in ("a", "b"):
        series = figure7_series(panel, dataset=dataset,
                                n_points=21 if quick else 41,
                                trials=4 if quick else 10)
        spans = (series["pdp_mean"].min() <= 0.05
                 and series["pdp_mean"].max() >= 0.95)
        panels_ok = panels_ok and spans
        report.add(f"panel ({panel}): PDP in "
                   f"[{series['pdp_mean'].min():.2f}, "
                   f"{series['pdp_mean'].max():.2f}] over inputs "
                   f"[{series['inputs'][0]:+.1f}, "
                   f"{series['inputs'][-1]:+.1f}] V")
    report.check("PDP spans 0..1 in both input ranges",
                 "both panels", panels_ok)

    # -- Figure 8 ------------------------------------------------------
    notify("Figure 8 (queue management)...")
    fig8 = figure8_series(duration_s=4.0 if quick else 8.0,
                          overload=((1.0, 3.0, 1.6) if quick
                                    else (2.0, 6.0, 1.6)),
                          service_rate_bps=40e6, seed=3)
    window = ((fig8.time_s >= 1.5) & (fig8.time_s < 3.0) if quick
              else (fig8.time_s >= 3.0) & (fig8.time_s < 6.0))
    no_aqm = fig8.no_aqm_delay_ms[window]
    pcam = fig8.pcam_delay_ms[window]
    no_aqm = no_aqm[~np.isnan(no_aqm)]
    pcam = pcam[~np.isnan(pcam)]
    in_band = banded_fraction(
        pcam, fig8.target_delay_ms - fig8.max_deviation_ms,
        fig8.target_delay_ms + fig8.max_deviation_ms)
    report.section("Figure 8: queue management")
    report.add(f"overload means: no AQM {no_aqm.mean():.0f} ms, "
               f"pCAM-AQM {pcam.mean():.1f} ms "
               f"({in_band:.0%} of time in the programmed band)")
    report.check("delay explodes without AQM",
                 f"{no_aqm.mean():.0f} ms mean under overload",
                 no_aqm.mean() > 100.0)
    report.check("pCAM-AQM holds 20 +- 10 ms",
                 f"{pcam.mean():.1f} ms mean, {in_band:.0%} in band",
                 pcam.mean() < 30.0 and in_band > 0.5)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.analysis.report [--quick]``)."""
    arguments = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in arguments
    # perf_counter: monotonic, like every other timing path in the
    # repo — wall-clock time jumps under NTP adjustment.
    start = time.perf_counter()
    report = run_report(quick=quick,
                        progress=lambda text: print(f"[{text}]",
                                                    file=sys.stderr))
    print(report.render())
    print(f"\n(report generated in {time.perf_counter() - start:.1f} s)")
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
