"""Series builders for every figure of the paper.

Each ``figureN_series`` function runs the corresponding experiment
and returns plain arrays/dicts — the benchmarks print them, the tests
assert their shape properties, and users can plot them with any tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.calibration import noise_band
from repro.core.device_cell import DevicePCAMCell
from repro.core.pcam_cell import PCAMCell, PCAMParams, prog_pcam
from repro.core.pcam_pipeline import PCAMPipeline
from repro.device.dataset import MemristorDataset, generate_dataset
from repro.device.memristor import MemristorParams
from repro.device.state_machine import AnalogStateMachine, DeviceStateMachine
from repro.device.variability import VariabilityModel
from repro.energy.ledger import ACCOUNT_COMPUTE, ACCOUNT_MOVEMENT, EnergyLedger
from repro.netfunc.aqm.base import TailDropAQM
from repro.netfunc.aqm.pcam_aqm import PCAMAQM
from repro.simnet.metrics import time_binned_mean
from repro.simnet.topology import DumbbellExperiment, overload_profile
from repro.tcam.mtcam import MemristorTCAM
from repro.tcam.tcam import TCAM

__all__ = [
    "figure1_series",
    "figure2_series",
    "figure4_series",
    "figure7_series",
    "figure8_series",
]

#: pCAM programs used for the two Figure 7 panels, expressed directly
#: in the hardware voltage domain of the chip dataset.
FIGURE7_PANELS: Mapping[str, PCAMParams] = {
    "a": prog_pcam(m1=1.5, m2=2.2, m3=2.8, m4=3.5),      # input [1, 4] V
    "b": prog_pcam(m1=-1.5, m2=-0.8, m3=0.0, m4=0.7),    # input [-2, 1] V
}
FIGURE7_RANGES: Mapping[str, tuple[float, float]] = {
    "a": (1.0, 4.0),
    "b": (-2.0, 1.0),
}


def figure1_series(width_bits: int = 64, n_entries: int = 64,
                   n_searches: int = 256, seed: int = 11
                   ) -> dict[str, dict[str, float]]:
    """Energy split: digital TCAM vs colocalized memristor search.

    Returns, per technology, the total energy and the fraction
    attributed to data movement — the paper's Figure 1 argument that
    separate storage/compute wastes up to 90% of the energy while
    colocalized analog computation wastes none.
    """
    rng = np.random.default_rng(seed)
    patterns = ["".join(rng.choice(list("01x"), size=width_bits))
                for _ in range(n_entries)]
    keys = [int(rng.integers(0, 2 ** 63)) % (2 ** width_bits)
            for _ in range(n_searches)]

    results: dict[str, dict[str, float]] = {}
    for label, cam in (
            ("digital_transistor", TCAM(width_bits, ledger=EnergyLedger())),
            ("analog_memristor", MemristorTCAM(width_bits,
                                               ledger=EnergyLedger()))):
        for pattern in patterns:
            cam.add(pattern)
        for key in keys:
            cam.search(key)
        ledger = cam.ledger
        total = ledger.total
        results[label] = {
            "total_j": total,
            "movement_j": ledger.account(ACCOUNT_MOVEMENT),
            "compute_j": ledger.account(ACCOUNT_COMPUTE),
            "movement_fraction": (ledger.account(ACCOUNT_MOVEMENT) / total
                                  if total else 0.0),
        }
    return results


def figure2_series(inputs: np.ndarray | None = None,
                   state_table: np.ndarray | None = None,
                   device_backed: bool = False,
                   seed: int = 5) -> dict[str, np.ndarray]:
    """The analog state machine: output vs input per programmed state.

    Returns ``inputs`` plus one output row per (machine, state) pair,
    demonstrating distinct outputs for the same input and run-time
    reprogrammability.
    """
    if inputs is None:
        inputs = np.linspace(0.25, 4.0, 16)
    if state_table is None:
        state_table = np.array([[0.2, 0.4, 0.8],     # Computation-1
                                [0.3, 0.5, 0.9]])    # Computation-n
    outputs: dict[str, np.ndarray] = {"inputs": np.asarray(inputs)}
    if device_backed:
        machine = DeviceStateMachine(state_table,
                                     rng=np.random.default_rng(seed))
        for y in range(machine.n_machines):
            for x in range(machine.n_states):
                machine.select(y, x)
                outputs[f"S_{y}_{x}"] = np.array(
                    [machine.compute(float(v)).output for v in inputs])
    else:
        machine = AnalogStateMachine(state_table)
        for y in range(machine.n_machines):
            for x in range(machine.n_states):
                machine.select(y, x)
                outputs[f"S_{y}_{x}"] = machine.transfer(inputs)
    return outputs


def figure4_series(params: PCAMParams | None = None,
                   n_points: int = 201) -> dict[str, np.ndarray]:
    """The pCAM transfer function and its two-stage series product."""
    cell_params = params or prog_pcam(m1=1.5, m2=2.4, m3=2.6, m4=3.5)
    margin = 0.25 * (cell_params.m4 - cell_params.m1)
    inputs = np.linspace(cell_params.m1 - margin,
                         cell_params.m4 + margin, n_points)
    cell = PCAMCell(cell_params)
    single = cell.response_array(inputs)
    pipeline = PCAMPipeline.from_params(
        {"stage1": cell_params, "stage2": cell_params})
    series = np.array([pipeline.evaluate([float(v), float(v)])
                       for v in inputs])
    return {"inputs": inputs, "single": single, "series_product": series}


def figure7_series(panel: str = "a",
                   dataset: MemristorDataset | None = None,
                   n_points: int = 61, trials: int = 12,
                   seed: int = 7) -> dict[str, np.ndarray]:
    """Analog AQM output (PDP) vs input voltage over the chip dataset.

    Panel "a" sweeps [1, 4] V, panel "b" sweeps [-2, 1] V — the two
    input ranges of the paper's Figure 7.  The response is measured
    on a device-realised cell with the dataset's device parameters and
    realistic read noise, so the returned band reflects the chip.
    """
    if panel not in FIGURE7_PANELS:
        raise ValueError(f"panel must be one of "
                         f"{sorted(FIGURE7_PANELS)}: {panel!r}")
    device_params = (dataset.params if dataset is not None
                     else MemristorParams())
    cell = DevicePCAMCell(
        FIGURE7_PANELS[panel],
        v_range=(-2.0, 4.0),
        device_params=device_params,
        variability=VariabilityModel(read_sigma=0.03, device_sigma=0.0),
        rng=np.random.default_rng(seed))
    lo, hi = FIGURE7_RANGES[panel]
    inputs = np.linspace(lo, hi, n_points)
    mean, std = noise_band(cell, inputs, trials=trials)
    ideal = cell.ideal_response_array(inputs)
    energies = np.array([cell.evaluate(float(v)).energy_j
                         for v in inputs])
    return {"inputs": inputs, "pdp_mean": mean, "pdp_std": std,
            "pdp_ideal": ideal, "read_energy_j": energies}


@dataclass(frozen=True)
class Figure8Series:
    """Delay-vs-time curves with and without the analog AQM."""

    time_s: np.ndarray
    no_aqm_delay_ms: np.ndarray
    pcam_delay_ms: np.ndarray
    no_aqm_drops: int
    pcam_drops: int
    target_delay_ms: float
    max_deviation_ms: float


def figure8_series(duration_s: float = 8.0,
                   overload: tuple[float, float, float] = (2.0, 6.0, 1.6),
                   service_rate_bps: float = 40e6,
                   bin_width_s: float = 0.1,
                   seed: int = 3) -> Figure8Series:
    """Queue management by the analog AQM (paper Figure 8).

    Runs the Poisson dumbbell twice — tail drop vs pCAM-AQM — through
    an overload episode and returns the binned delay series.
    """
    start, end, factor = overload
    experiment = DumbbellExperiment(
        n_flows=6, load=0.9, service_rate_bps=service_rate_bps,
        capacity_packets=1500, duration_s=duration_s,
        rate_fn=overload_profile(start, end, factor), seed=seed)

    def run(aqm) -> tuple[np.ndarray, np.ndarray, int]:
        result = experiment.run(aqm)
        recorder = result.recorder
        times, delays = time_binned_mean(
            recorder.departure_times, recorder.sojourn_times,
            bin_width_s, end_time_s=duration_s)
        return times, delays * 1e3, recorder.dropped

    times, no_aqm_ms, no_aqm_drops = run(TailDropAQM())
    aqm = PCAMAQM(rng=np.random.default_rng(seed + 1))
    _, pcam_ms, pcam_drops = run(aqm)
    return Figure8Series(
        time_s=times,
        no_aqm_delay_ms=no_aqm_ms,
        pcam_delay_ms=pcam_ms,
        no_aqm_drops=no_aqm_drops,
        pcam_drops=pcam_drops,
        target_delay_ms=aqm.target_delay_s * 1e3,
        max_deviation_ms=aqm.max_deviation_s * 1e3)
