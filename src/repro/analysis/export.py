"""CSV exporters for every figure's data series.

The benchmarks print the series; this module writes them as plain CSV
so they can be plotted with any tool (gnuplot, matplotlib, a
spreadsheet) without rerunning the experiments::

    from repro.analysis.export import export_all
    export_all("out/")            # fig1.csv ... fig8.csv, table1.csv
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.analysis.figures import (
    figure1_series,
    figure2_series,
    figure4_series,
    figure7_series,
    figure8_series,
)
from repro.device.dataset import MemristorDataset, generate_dataset
from repro.energy.comparison import build_table1

__all__ = ["export_all", "export_series_csv", "export_table1_csv"]


def export_series_csv(columns: Mapping[str, np.ndarray],
                      path: str | Path) -> Path:
    """Write aligned column arrays as one CSV file.

    Scalar-valued entries are broadcast; shorter columns are padded
    with empty cells.
    """
    if not columns:
        raise ValueError("nothing to export")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.atleast_1d(np.asarray(values))
              for name, values in columns.items()}
    length = max(array.shape[0] for array in arrays.values())
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(arrays.keys())
        for row in range(length):
            writer.writerow([
                (f"{array[row]!r}" if isinstance(array[row], str)
                 else array[row]) if row < array.shape[0] else ""
                for array in arrays.values()])
    return target


def export_table1_csv(path: str | Path,
                      dataset: MemristorDataset | None = None) -> Path:
    """Write Table 1 (with the measured pCAM row) as CSV."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    rows = build_table1(dataset)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["design", "reference", "computation",
                         "technology", "latency_ns",
                         "energy_fj_per_bit", "measured"])
        for row in rows:
            writer.writerow([row.name, row.reference,
                             row.computation.value,
                             row.technology.value, row.latency_ns,
                             row.energy_fj_per_bit, row.measured])
    return target


def export_all(directory: str | Path, *, quick: bool = True,
               dataset: MemristorDataset | None = None) -> list[Path]:
    """Regenerate every figure's series and write one CSV each."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    if dataset is None:
        dataset = generate_dataset(
            n_states=24 if quick else 48,
            n_voltages=49 if quick else 97,
            include_sweeps=False, include_pulse_trains=False, seed=7)
    written: list[Path] = []

    split = figure1_series(width_bits=32 if quick else 64,
                           n_entries=32 if quick else 64,
                           n_searches=64 if quick else 256)
    written.append(export_series_csv(
        {"technology": np.array(list(split)),
         "total_j": np.array([split[k]["total_j"] for k in split]),
         "movement_fraction": np.array(
             [split[k]["movement_fraction"] for k in split])},
        out / "fig1_colocalization.csv"))

    written.append(export_series_csv(figure2_series(),
                                     out / "fig2_state_machine.csv"))
    written.append(export_series_csv(figure4_series(),
                                     out / "fig4_pcam_response.csv"))
    for panel in ("a", "b"):
        series = figure7_series(panel, dataset=dataset,
                                n_points=21 if quick else 61,
                                trials=4 if quick else 12)
        written.append(export_series_csv(
            series, out / f"fig7{panel}_aqm_output.csv"))

    fig8 = figure8_series(duration_s=4.0 if quick else 8.0,
                          overload=((1.0, 3.0, 1.6) if quick
                                    else (2.0, 6.0, 1.6)),
                          service_rate_bps=40e6, seed=3)
    written.append(export_series_csv(
        {"time_s": fig8.time_s,
         "no_aqm_delay_ms": fig8.no_aqm_delay_ms,
         "pcam_delay_ms": fig8.pcam_delay_ms},
        out / "fig8_queue_management.csv"))

    written.append(export_table1_csv(out / "table1_comparison.csv",
                                     dataset=dataset))
    return written
