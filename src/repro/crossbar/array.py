"""Memristive crossbar array simulator.

A crossbar is the canonical in-memory-computing structure: memristors
sit at every wordline/bitline crossing, input voltages drive the
wordlines, and each bitline collects the Ohm's-law sum of its column —
an analog multiply-accumulate with computation colocalized in storage
(paper Figure 1).

The simulator is behavioural: conductances are held as a matrix, the
ideal operation is ``I = G^T V``, and the non-idealities of
:class:`~repro.crossbar.losses.LineLossModel` (IR drop, sneak paths,
crosstalk) plus per-read device noise degrade it.  Energy per operation
is the Joule dissipation of every active cell over the read pulse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crossbar.losses import LineLossModel
from repro.device.memristor import MemristorParams
from repro.device.variability import VariabilityModel
from repro.observability.profiling import profiled
from repro.observability.tracing import maybe_span


@dataclass(frozen=True)
class MatVecResult:
    """Result of one analog matrix-vector operation."""

    currents_a: np.ndarray
    energy_j: float
    duration_s: float


class Crossbar:
    """An n_rows x n_cols conductance crossbar.

    Parameters
    ----------
    n_rows, n_cols:
        Array geometry (rows = wordlines / inputs, cols = bitlines /
        outputs).
    params:
        Device parameters bounding the programmable conductance window.
    losses:
        Interconnect loss model; defaults to ideal wires.
    variability:
        Per-read multiplicative noise on each cell's current.
    rng:
        Random generator for noise.
    """

    def __init__(self, n_rows: int, n_cols: int,
                 params: MemristorParams | None = None,
                 losses: LineLossModel | None = None,
                 variability: VariabilityModel | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError(f"geometry must be positive: {n_rows}x{n_cols}")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.params = params or MemristorParams()
        self.losses = losses or LineLossModel.ideal()
        self.variability = variability or VariabilityModel.ideal()
        self._rng = rng or np.random.default_rng()
        # All cells start in the HRS.
        g_off = 1.0 / self.params.r_off
        self._conductances = self._freeze(np.full((n_rows, n_cols), g_off))
        self._write_energy = 0.0
        self._operations = 0
        self._fault_plan = None
        #: Monotonic matrix version: bumps whenever the conductances
        #: change (program, fault-plan install), so derived state — the
        #: IR-drop attenuation matrix, sensing thresholds — can be
        #: cached with a dirty bit instead of recomputed per read.
        self._version = 0
        self._attenuation_cache: tuple[int, np.ndarray] | None = None
        #: Optional observability hooks: a tracer spanning each batched
        #: read and a profiler timing the ``@profiled`` kernel.
        self.tracer = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    @staticmethod
    def _freeze(matrix: np.ndarray) -> np.ndarray:
        """Mark a conductance matrix read-only before adopting it."""
        matrix.setflags(write=False)
        return matrix

    @property
    def conductances(self) -> np.ndarray:
        """Read-only view of the programmed conductance matrix [S].

        The array is shared, not copied — mutating it raises.  Callers
        that want a scratch matrix to modify and re-program take
        :meth:`conductances_copy` instead.
        """
        return self._conductances

    def conductances_copy(self) -> np.ndarray:
        """Writable copy of the conductance matrix (mutation intent)."""
        return self._conductances.copy()

    @property
    def version(self) -> int:
        """Monotonic counter of conductance-matrix changes."""
        return self._version

    @property
    def conductance_bounds(self) -> tuple[float, float]:
        """(g_min, g_max) programmable window [S]."""
        return 1.0 / self.params.r_off, 1.0 / self.params.r_on

    def program(self, conductances: np.ndarray,
                write_energy_per_cell_j: float = 1e-12) -> float:
        """Program the whole array; returns the write energy [J].

        Conductances outside the device window are a caller error —
        the compiler is responsible for scaling into the window.
        """
        target = np.asarray(conductances, dtype=float)
        if target.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"shape {target.shape} != ({self.n_rows}, {self.n_cols})")
        g_min, g_max = self.conductance_bounds
        if target.min() < g_min * (1 - 1e-9) or target.max() > g_max * (1 + 1e-9):
            raise ValueError(
                f"conductances outside device window "
                f"[{g_min:.3e}, {g_max:.3e}] S")
        if self._fault_plan is not None:
            target = self._fault_plan.pin(target)
        changed = int(np.count_nonzero(
            ~np.isclose(target, self._conductances)))
        self._conductances = self._freeze(target.copy())
        self._version += 1
        energy = changed * write_energy_per_cell_j
        self._write_energy += energy
        return energy

    def program_normalised(self, weights: np.ndarray,
                           write_energy_per_cell_j: float = 1e-12) -> float:
        """Program weights in [0, 1] mapped linearly onto the window."""
        w = np.asarray(weights, dtype=float)
        if w.min() < 0.0 or w.max() > 1.0:
            raise ValueError("normalised weights must lie in [0, 1]")
        g_min, g_max = self.conductance_bounds
        return self.program(g_min + w * (g_max - g_min),
                            write_energy_per_cell_j)

    @property
    def write_energy_j(self) -> float:
        """Cumulative programming energy [J]."""
        return self._write_energy

    @property
    def fault_plan(self):
        """The installed stuck-cell plan, or None when healthy."""
        return self._fault_plan

    def install_fault_plan(self, plan) -> None:
        """Pin cells per a :class:`repro.device.faults.CrossbarFaultPlan`.

        The pins are applied immediately and re-applied inside every
        subsequent :meth:`program` call, so program-and-verify passes
        can never revive a stuck cell.
        """
        if plan.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"plan shape {plan.shape} != "
                f"({self.n_rows}, {self.n_cols})")
        self._fault_plan = plan
        self._conductances = self._freeze(plan.pin(self._conductances))
        self._version += 1

    def clear_fault_plan(self) -> None:
        """Remove the stuck-cell plan (pinned values stay until the
        next :meth:`program`)."""
        self._fault_plan = None

    @property
    def operations(self) -> int:
        """Number of analog matrix-vector operations performed."""
        return self._operations

    # ------------------------------------------------------------------
    # Analog compute
    # ------------------------------------------------------------------
    def matvec(self, voltages: np.ndarray, duration_s: float = 1e-9, *,
               noisy: bool = True) -> MatVecResult:
        """One analog matrix-vector multiply ``I = G^T V``.

        Applies IR-drop attenuation per cell, optional multiplicative
        read noise, sneak-path leakage per column, and crosstalk
        between adjacent bitlines.  Energy is the sum of per-cell Joule
        dissipation plus sneak losses over the read pulse.

        Delegates to :meth:`matvec_batch` with a batch of one, so the
        scalar and batched sensing paths are a single kernel (and a
        shared RNG draws the same noise stream either way).
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.n_rows,):
            raise ValueError(f"expected {self.n_rows} voltages, got {v.shape}")
        result = self.matvec_batch(v[None, :], duration_s, noisy=noisy)
        return MatVecResult(currents_a=result.currents_a[0],
                            energy_j=result.energy_j,
                            duration_s=duration_s)

    @profiled("crossbar.matvec_batch")
    def matvec_batch(self, voltages: np.ndarray,
                     duration_s: float = 1e-9, *,
                     noisy: bool = True) -> MatVecResult:
        """A burst of analog matrix-vector multiplies in one NumPy pass.

        ``voltages`` has shape (batch, n_rows); the result's
        ``currents_a`` has shape (batch, n_cols) and ``energy_j`` is
        the total dissipation of the whole burst.  Each batch item
        models one read cycle, so noise is drawn independently per
        item and ``operations`` advances by the batch size.
        """
        vb = np.asarray(voltages, dtype=float)
        if vb.ndim != 2 or vb.shape[1] != self.n_rows:
            raise ValueError(
                f"expected (batch, {self.n_rows}) voltages, "
                f"got {vb.shape}")
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s!r}")
        with maybe_span(self.tracer, "crossbar.matvec_batch",
                        batch=int(vb.shape[0]), rows=self.n_rows,
                        cols=self.n_cols):
            return self._matvec_batch_kernel(vb, duration_s, noisy)

    def _attenuation(self) -> np.ndarray:
        """The IR-drop attenuation matrix, cached against the dirty bit.

        Recomputed only when the conductance matrix version moved
        (program / fault-plan install); loss models are immutable, so
        the version is the complete cache key.
        """
        cache = self._attenuation_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        attenuation = self.losses.attenuation_matrix(
            self.n_rows, self.n_cols, self._conductances)
        self._attenuation_cache = (self._version, attenuation)
        return attenuation

    def _matvec_batch_kernel(self, vb: np.ndarray, duration_s: float,
                             noisy: bool) -> MatVecResult:
        attenuation = self._attenuation()
        effective_v = vb[:, :, None] * attenuation[None, :, :]
        cell_currents = effective_v * self._conductances[None, :, :]
        if noisy and self.variability.read_sigma > 0.0:
            noise = self._rng.lognormal(
                mean=0.0, sigma=self.variability.read_sigma,
                size=cell_currents.shape)
            cell_currents = cell_currents * noise

        column_currents = cell_currents.sum(axis=1)
        # Sneak leakage: every driven row leaks into each column via
        # unselected paths.
        sneak_per_column = self.losses.sneak_current(
            np.abs(vb).sum(axis=1), self.n_rows - 1)
        column_currents = column_currents + sneak_per_column[:, None]
        column_currents = self.losses.apply_crosstalk(column_currents)

        cell_energy = float(
            np.abs(effective_v * cell_currents).sum() * duration_s)
        sneak_energy = float(
            (sneak_per_column * self.n_cols
             * np.abs(vb).max(axis=1, initial=0.0)).sum() * duration_s)
        self._operations += vb.shape[0]
        return MatVecResult(currents_a=column_currents,
                            energy_j=cell_energy + sneak_energy,
                            duration_s=duration_s)

    def ideal_matvec(self, voltages: np.ndarray) -> np.ndarray:
        """Lossless, noiseless ``G^T V`` for error analysis."""
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.n_rows,):
            raise ValueError(f"expected {self.n_rows} voltages, got {v.shape}")
        return self._conductances.T @ v

    def ideal_matvec_batch(self, voltages: np.ndarray) -> np.ndarray:
        """Lossless, noiseless ``V G`` over a (batch, n_rows) matrix."""
        vb = np.asarray(voltages, dtype=float)
        if vb.ndim != 2 or vb.shape[1] != self.n_rows:
            raise ValueError(
                f"expected (batch, {self.n_rows}) voltages, "
                f"got {vb.shape}")
        return vb @ self._conductances

    def relative_error(self, voltages: np.ndarray,
                       trials: int = 8) -> float:
        """Mean relative L2 error of noisy vs ideal matvec outputs.

        The compiler uses this to decide whether a function's precision
        class can be met by an analog placement (RQ2).
        """
        ideal = self.ideal_matvec(voltages)
        norm = np.linalg.norm(ideal)
        if norm == 0.0:
            return 0.0
        errors = []
        for _ in range(trials):
            measured = self.matvec(voltages).currents_a
            errors.append(np.linalg.norm(measured - ideal) / norm)
        return float(np.mean(errors))
