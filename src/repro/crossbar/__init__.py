"""Analog circuit substrate: crossbar arrays, converters, sensing, losses."""

from repro.crossbar.array import Crossbar, MatVecResult
from repro.crossbar.converters import ADC, DAC
from repro.crossbar.losses import LineLossModel
from repro.crossbar.sensing import SenseAmplifier

__all__ = [
    "ADC",
    "Crossbar",
    "DAC",
    "LineLossModel",
    "MatVecResult",
    "SenseAmplifier",
]
