"""Analog signal-integrity loss models (RQ2).

The paper's second research question notes that "the match output can
lose its precision depending upon the line losses, signal strength and
interference from the neighboring components", and that this dictates
which network functions may be mapped to the analog domain.

This module provides first-order behavioural models for those effects:

* **IR drop** along word/bit lines: a cell far from the drivers sees a
  reduced effective voltage.
* **Crosstalk** from neighbouring active lines.
* **Sneak-path leakage** through unselected cells.

Each model exposes the attenuation/perturbation it applies so the
compiler (:mod:`repro.core.compiler`) can bound the worst-case match
error of a placement before committing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LineLossModel:
    """First-order wire parasitics for a crossbar of a given geometry.

    Parameters
    ----------
    wire_resistance_per_cell_ohm:
        Series resistance contributed by each cell pitch of wire.
    sneak_conductance_s:
        Aggregate leakage conductance of unselected cells per line.
    crosstalk_fraction:
        Fraction of a neighbouring line's signal that couples in.
    """

    wire_resistance_per_cell_ohm: float = 1.0
    sneak_conductance_s: float = 1e-9
    crosstalk_fraction: float = 0.002

    def __post_init__(self) -> None:
        if self.wire_resistance_per_cell_ohm < 0:
            raise ValueError("wire resistance must be non-negative")
        if self.sneak_conductance_s < 0:
            raise ValueError("sneak conductance must be non-negative")
        if not 0 <= self.crosstalk_fraction < 1:
            raise ValueError("crosstalk fraction must be in [0, 1)")

    @classmethod
    def ideal(cls) -> "LineLossModel":
        """A lossless interconnect (for reference calculations)."""
        return cls(wire_resistance_per_cell_ohm=0.0,
                   sneak_conductance_s=0.0, crosstalk_fraction=0.0)

    def voltage_at_cell(self, drive_voltage: float, distance_cells: int,
                        cell_conductance_s: float) -> float:
        """Effective voltage at a cell ``distance_cells`` from the driver.

        First-order divider: the wire up to the cell forms a series
        resistance ``d * r_wire`` against the cell's own resistance.
        """
        if distance_cells < 0:
            raise ValueError("distance must be non-negative")
        series = distance_cells * self.wire_resistance_per_cell_ohm
        if cell_conductance_s <= 0:
            return drive_voltage
        cell_resistance = 1.0 / cell_conductance_s
        return drive_voltage * cell_resistance / (cell_resistance + series)

    def attenuation_matrix(self, n_rows: int, n_cols: int,
                           conductances: np.ndarray) -> np.ndarray:
        """Per-cell voltage attenuation factors for a whole array.

        The distance of cell (i, j) from the drivers is ``i + j`` cell
        pitches (row driver on the left, column sense on the bottom).
        """
        if conductances.shape != (n_rows, n_cols):
            raise ValueError(
                f"conductances shape {conductances.shape} != "
                f"({n_rows}, {n_cols})")
        rows = np.arange(n_rows)[:, None]
        cols = np.arange(n_cols)[None, :]
        series = (rows + cols) * self.wire_resistance_per_cell_ohm
        with np.errstate(divide="ignore"):
            cell_resistance = np.where(conductances > 0,
                                       1.0 / np.maximum(conductances, 1e-30),
                                       np.inf)
        return cell_resistance / (cell_resistance + series)

    def sneak_current(self, drive_voltage: float, n_unselected: int) -> float:
        """Aggregate sneak-path current for one driven line [A]."""
        if n_unselected < 0:
            raise ValueError("n_unselected must be non-negative")
        return drive_voltage * self.sneak_conductance_s * n_unselected

    def apply_crosstalk(self, signals: np.ndarray) -> np.ndarray:
        """Mix each line's signal with its immediate neighbours.

        Operates along the last axis, so a (batch, n_lines) matrix of
        sensed column currents is mixed row-by-row in one pass.
        """
        values = np.asarray(signals, dtype=float)
        if self.crosstalk_fraction == 0.0 or values.shape[-1] < 2:
            return values.copy()
        mixed = values * (1.0 - 2.0 * self.crosstalk_fraction)
        mixed[..., 0] += values[..., 0] * self.crosstalk_fraction
        mixed[..., -1] += values[..., -1] * self.crosstalk_fraction
        mixed[..., 1:] += values[..., :-1] * self.crosstalk_fraction
        mixed[..., :-1] += values[..., 1:] * self.crosstalk_fraction
        return mixed
