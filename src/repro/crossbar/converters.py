"""Digital/analog boundary converters (DACs and ADCs).

The analog match-action tables live behind a digital parser and in
front of a digital traffic manager, so every query crosses a DAC on
the way in and (optionally) an ADC on the way out — Figure 7's inputs
are "sojourn time and buffer size mapped to hardware voltages (DACs)".

Converters are the precision bottleneck of the analog pipeline (RQ2):
their resolution bounds how finely a feature can be expressed as a
voltage, and their conversion energy is charged to the
``conversion`` account of the energy ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DAC:
    """An ideal-linear digital-to-analog converter with quantization.

    Parameters
    ----------
    bits:
        Resolution.  The output voltage grid has ``2**bits`` levels.
    v_min, v_max:
        Output range endpoints [V].
    energy_per_conversion_j:
        Energy charged per conversion.  Default is a representative
        figure for an embedded ~GHz DAC (~50 fJ/conversion).
    inl_lsb:
        Integral nonlinearity amplitude in LSBs; models a smooth bow
        in the transfer characteristic.
    """

    bits: int = 8
    v_min: float = 0.0
    v_max: float = 4.0
    energy_per_conversion_j: float = 50e-15
    inl_lsb: float = 0.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1: {self.bits!r}")
        if self.v_max <= self.v_min:
            raise ValueError(
                f"v_max must exceed v_min: {self.v_min}, {self.v_max}")
        if self.energy_per_conversion_j < 0:
            raise ValueError("conversion energy must be non-negative")

    @property
    def levels(self) -> int:
        """Number of output levels."""
        return 2 ** self.bits

    @property
    def lsb_v(self) -> float:
        """Voltage step between adjacent codes [V]."""
        return (self.v_max - self.v_min) / (self.levels - 1)

    def encode(self, value: float) -> int:
        """Map a normalised value in [0, 1] to the nearest code."""
        clamped = min(1.0, max(0.0, value))
        return int(round(clamped * (self.levels - 1)))

    def convert(self, code: int) -> float:
        """Output voltage for a digital code."""
        if not 0 <= code < self.levels:
            raise ValueError(f"code {code} out of range [0, {self.levels})")
        ideal = self.v_min + code * self.lsb_v
        if self.inl_lsb == 0.0:
            return ideal
        # Smooth sinusoidal bow, the textbook INL shape.
        bow = self.inl_lsb * self.lsb_v * np.sin(
            np.pi * code / (self.levels - 1))
        return float(ideal + bow)

    def quantize(self, value: float) -> float:
        """Round-trip a normalised value through the converter.

        Returns the *voltage* actually presented to the analog array
        for a desired normalised input.
        """
        return self.convert(self.encode(value))

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize`."""
        clamped = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
        codes = np.round(clamped * (self.levels - 1))
        ideal = self.v_min + codes * self.lsb_v
        if self.inl_lsb == 0.0:
            return ideal
        bow = self.inl_lsb * self.lsb_v * np.sin(
            np.pi * codes / (self.levels - 1))
        return ideal + bow


@dataclass(frozen=True)
class ADC:
    """An analog-to-digital converter with quantization noise.

    Used when an analog match output must re-enter the digital domain
    (e.g. the controller sampling a pCAM output to adapt parameters).
    """

    bits: int = 8
    v_min: float = 0.0
    v_max: float = 1.0
    energy_per_conversion_j: float = 100e-15

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1: {self.bits!r}")
        if self.v_max <= self.v_min:
            raise ValueError(
                f"v_max must exceed v_min: {self.v_min}, {self.v_max}")
        if self.energy_per_conversion_j < 0:
            raise ValueError("conversion energy must be non-negative")

    @property
    def levels(self) -> int:
        """Number of quantization levels."""
        return 2 ** self.bits

    @property
    def lsb_v(self) -> float:
        """Voltage step between adjacent codes [V]."""
        return (self.v_max - self.v_min) / (self.levels - 1)

    def sample(self, voltage: float) -> int:
        """Digitise a voltage to a code (clamped at the rails)."""
        clamped = min(self.v_max, max(self.v_min, voltage))
        return int(round((clamped - self.v_min) / self.lsb_v))

    def reconstruct(self, code: int) -> float:
        """Voltage corresponding to a code."""
        if not 0 <= code < self.levels:
            raise ValueError(f"code {code} out of range [0, {self.levels})")
        return self.v_min + code * self.lsb_v

    def quantize(self, voltage: float) -> float:
        """Round-trip a voltage through the converter."""
        return self.reconstruct(self.sample(voltage))

    def quantize_array(self, voltages: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize`."""
        clamped = np.clip(np.asarray(voltages, dtype=float),
                          self.v_min, self.v_max)
        codes = np.round((clamped - self.v_min) / self.lsb_v)
        return self.v_min + codes * self.lsb_v
