"""Match-line sensing: converting analog currents to match outputs.

A CAM match line carries a current that encodes match quality; the
sense amplifier turns it into either a digital decision (TCAM) or a
normalised analog level (pCAM).  The amplifier contributes gain error,
offset, and input-referred noise — the last analog stage where
precision can be lost before the output re-enters the digital domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SenseAmplifier:
    """A behavioural current-input sense amplifier.

    Parameters
    ----------
    gain_error:
        Multiplicative gain deviation from unity (0.01 = +1%).
    offset_a:
        Input-referred current offset [A].
    noise_a_rms:
        RMS input-referred current noise [A].
    energy_per_sense_j:
        Energy per sense operation.
    """

    gain_error: float = 0.0
    offset_a: float = 0.0
    noise_a_rms: float = 0.0
    energy_per_sense_j: float = 10e-15

    def __post_init__(self) -> None:
        if self.noise_a_rms < 0:
            raise ValueError("noise must be non-negative")
        if self.energy_per_sense_j < 0:
            raise ValueError("sense energy must be non-negative")

    @classmethod
    def ideal(cls) -> "SenseAmplifier":
        """A noiseless, offset-free, zero-energy amplifier."""
        return cls(gain_error=0.0, offset_a=0.0, noise_a_rms=0.0,
                   energy_per_sense_j=0.0)

    def sense(self, current_a: float,
              rng: np.random.Generator | None = None) -> float:
        """Apply gain/offset/noise to a match-line current [A]."""
        value = current_a * (1.0 + self.gain_error) + self.offset_a
        if self.noise_a_rms > 0.0:
            generator = rng or np.random.default_rng()
            value += generator.normal(0.0, self.noise_a_rms)
        return value

    def normalise(self, current_a: float, full_scale_a: float,
                  rng: np.random.Generator | None = None) -> float:
        """Sense and normalise to [0, 1] of a full-scale current.

        This is how a pCAM match-line current becomes a probability:
        the full-scale current corresponds to a perfect deterministic
        match (p = pmax).
        """
        if full_scale_a <= 0:
            raise ValueError(
                f"full-scale current must be positive: {full_scale_a!r}")
        sensed = self.sense(current_a, rng)
        return min(1.0, max(0.0, sensed / full_scale_a))

    def threshold(self, current_a: float, threshold_a: float,
                  rng: np.random.Generator | None = None) -> bool:
        """Digital comparison against a reference (TCAM-style)."""
        return self.sense(current_a, rng) >= threshold_a
