"""Adapters folding existing telemetry sources onto the shared registry.

The code base already keeps run-time state in three places: the
data-plane :class:`~repro.dataplane.telemetry.TelemetryCollector`
(table hit/miss counters, gauges, events), the
:class:`~repro.energy.ledger.EnergyLedger` (per-account joules), and
the graceful-degradation wrappers
(:class:`~repro.robustness.degradation.DegradingAQM` fallback/retry
counts).  Each ``bind_*`` function registers a *pull collector* on the
registry: at snapshot/export time the source's current totals are
mirrored into registry instruments, so the controller polls one
surface and the sources' hot paths stay untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataplane.telemetry import TelemetryCollector
    from repro.energy.ledger import EnergyLedger

__all__ = ["bind_degradation", "bind_ledger", "bind_runtime",
           "bind_telemetry"]


def bind_telemetry(registry: MetricsRegistry,
                   collector: "TelemetryCollector",
                   namespace: str = "dataplane") -> None:
    """Mirror a telemetry collector's tables/gauges/events.

    Exports, per table, ``{ns}_table_lookups_total``,
    ``{ns}_table_hits_total`` and ``{ns}_table_misses_total`` labelled
    ``table=...``; every collector gauge as ``{ns}_gauge{name=...}``;
    and every counted event as ``{ns}_events_total{event=...}``.
    """

    def collect(reg: MetricsRegistry) -> None:
        snapshot = collector.snapshot()
        for table, stats in snapshot["tables"].items():
            labels = {"table": table}
            reg.counter(f"{namespace}_table_lookups_total",
                        "Match-action table lookups.",
                        labels).set_total(stats["lookups"])
            reg.counter(f"{namespace}_table_hits_total",
                        "Match-action table hits.",
                        labels).set_total(stats["hits"])
            reg.counter(f"{namespace}_table_misses_total",
                        "Match-action table misses.",
                        labels).set_total(
                stats["lookups"] - stats["hits"])
        for name, value in snapshot["gauges"].items():
            reg.gauge(f"{namespace}_gauge",
                      "Latest sample of a named data-plane signal.",
                      {"name": name}).set(value)
        for event, count in snapshot["events"].items():
            reg.counter(f"{namespace}_events_total",
                        "Counted data-plane events.",
                        {"event": event}).set_total(count)

    registry.register_collector(collect)


def bind_ledger(registry: MetricsRegistry, ledger: "EnergyLedger",
                namespace: str = "energy") -> None:
    """Mirror an energy ledger's accounts onto the registry.

    Exports ``{ns}_account_joules_total{account=...}`` per account,
    plus ``{ns}_joules_total`` and ``{ns}_charge_events_total``.
    """

    def collect(reg: MetricsRegistry) -> None:
        total = 0.0
        for account, joules in ledger:
            reg.counter(f"{namespace}_account_joules_total",
                        "Energy charged per ledger account.",
                        {"account": account}).set_total(joules)
            total += joules
        reg.counter(f"{namespace}_joules_total",
                    "Total energy across all ledger accounts."
                    ).set_total(total)
        reg.counter(f"{namespace}_charge_events_total",
                    "Number of ledger charge events."
                    ).set_total(ledger.events)

    registry.register_collector(collect)


def bind_runtime(registry: MetricsRegistry, runtime,
                 namespace: str = "runtime") -> None:
    """Mirror a staged pipeline runtime's execution counters.

    ``runtime`` is a :class:`repro.runtime.PipelineRuntime` (duck
    typed: ``chunks``, ``stage_runs`` and ``energy_attribution()``).
    Exports ``{ns}_chunks_total``, per-stage
    ``{ns}_stage_runs_total{stage=...}`` and — when an energy
    attribution middleware is registered —
    ``{ns}_stage_joules_total{stage=...}``.
    """

    def collect(reg: MetricsRegistry) -> None:
        reg.counter(f"{namespace}_chunks_total",
                    "Chunks executed by the staged runtime."
                    ).set_total(runtime.chunks)
        for stage, runs in runtime.stage_runs.items():
            reg.counter(f"{namespace}_stage_runs_total",
                        "Stage invocations by the staged runtime.",
                        {"stage": stage}).set_total(runs)
        for stage, joules in runtime.energy_attribution().items():
            reg.counter(f"{namespace}_stage_joules_total",
                        "Ledger energy attributed per runtime stage.",
                        {"stage": stage}).set_total(joules)

    registry.register_collector(collect)


def bind_degradation(registry: MetricsRegistry, degrader,
                     table: str | None = None,
                     namespace: str = "degradation") -> None:
    """Mirror a degradable table's fallback/retry state.

    ``degrader`` is anything with the
    :class:`~repro.robustness.degradation.DegradingAQM` counters
    (``fallback_events``, ``retries``, ``recoveries``, ``degraded``,
    ``last_deviation``).  ``table`` defaults to the degrader's own
    ``table`` attribute.
    """
    label = table if table is not None else getattr(
        degrader, "table", "unnamed")

    def collect(reg: MetricsRegistry) -> None:
        labels = {"table": label}
        reg.counter(f"{namespace}_fallback_total",
                    "Analog->digital fallback engagements.",
                    labels).set_total(degrader.fallback_events)
        reg.counter(f"{namespace}_retries_total",
                    "Reprogram-retry attempts on degraded tables.",
                    labels).set_total(degrader.retries)
        reg.counter(f"{namespace}_recoveries_total",
                    "Tables recovered to the analog path.",
                    labels).set_total(degrader.recoveries)
        reg.gauge(f"{namespace}_degraded",
                  "1 while the table serves from its fallback path.",
                  labels).set(1.0 if degrader.degraded else 0.0)
        reg.gauge(f"{namespace}_shadow_deviation",
                  "Latest |analog - shadow| PDP deviation.",
                  labels).set(degrader.last_deviation)

    registry.register_collector(collect)
