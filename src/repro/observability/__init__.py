"""Unified observability: metrics registry, tracing, profiling hooks.

The cognitive controller adapts the analog tables from run-time
observations (paper Sec. 5), which requires a data plane observable
end-to-end.  This package is that layer:

* :mod:`~repro.observability.registry` — counters, gauges and
  fixed-bucket histograms behind one :class:`MetricsRegistry`;
* :mod:`~repro.observability.tracing` — :class:`Tracer`/:class:`Span`
  context managers with sim-clock timestamps, threaded through the
  data-plane stages, :meth:`PCAMPipeline.evaluate_batch` and
  :meth:`Crossbar.matvec_batch`;
* :mod:`~repro.observability.profiling` — the ``@profiled`` decorator
  feeding per-site wall-time histograms;
* :mod:`~repro.observability.adapters` — pull collectors folding the
  existing :class:`TelemetryCollector`, :class:`EnergyLedger` and
  degradation telemetry onto the shared registry;
* :mod:`~repro.observability.export` — Prometheus text and JSON
  exports (both round-trip), plus the exposition lint CI gates on;
* :mod:`~repro.observability.hub` — :class:`Observability`, the one
  handle the data plane and the controller share.
"""

from repro.observability.adapters import (
    bind_degradation,
    bind_ledger,
    bind_telemetry,
)
from repro.observability.export import (
    lint_prometheus,
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
)
from repro.observability.hub import Observability
from repro.observability.profiling import (
    Profiler,
    get_default_profiler,
    profiled,
    set_default_profiler,
)
from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import SimClock, Span, Tracer, maybe_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "SimClock",
    "Span",
    "Tracer",
    "bind_degradation",
    "bind_ledger",
    "bind_telemetry",
    "get_default_profiler",
    "lint_prometheus",
    "maybe_span",
    "parse_prometheus_text",
    "profiled",
    "set_default_profiler",
    "to_json",
    "to_prometheus_text",
]
